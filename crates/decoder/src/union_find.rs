//! Weighted union-find decoder.
//!
//! An implementation of the Delfosse–Nickerson union-find decoder with
//! weighted cluster growth and peeling:
//!
//! 1. every fired detector seeds a cluster;
//! 2. clusters with odd defect parity (and no boundary contact) grow their
//!    frontier edges one unit at a time, where each edge's length is its
//!    (discretised) log-likelihood weight;
//! 3. when an edge is fully grown its endpoint clusters merge;
//! 4. once every cluster is neutral (even parity or touching the boundary),
//!    a spanning forest of the grown edges is peeled from the leaves inward
//!    to produce a correction, and the parity of logical-observable flips
//!    along the correction is returned.
//!
//! The decoder is near-linear in the number of grown edges, which below
//! threshold is proportional to the number of detection events, so millions
//! of shots can be decoded in seconds. All working state (union-find arrays,
//! frontiers, the peeling forest) lives in the shared [`DecodeScratch`] and
//! is recycled between shots with O(1) epoch-stamped resets; the peeling
//! phase walks only the grown subgraph rather than the full decoding graph,
//! so quiet shots cost almost nothing.
//!
//! For *dense* lanes (defect count above the sparse memo cap) the decoder
//! overrides [`Decoder::decode_dense_shot`] with a cluster matcher: the
//! lane's defects are split into connected components of the decoding graph
//! and decoded one component at a time in a single shared scratch epoch
//! (components can be answered straight from the dense LRU tier), with a
//! post-hoc claim check and an O(touched) undo-log rollback to a whole-lane
//! decode when components turn out to interact. Every path is bit-identical
//! to [`Decoder::decode_shot`] of the same lane — see the `batch` module
//! docs for the full triage ladder.

use std::num::NonZeroU64;

use crate::batch::{pack_prediction, UnionFindScratch};
use crate::memo::next_memo_token;
use crate::{DecodeScratch, Decoder, DecodingGraph, DenseTier};

/// `find` with path compression over the tiny per-lane component DSU (plain
/// indices, no epoch stamps — the array is re-initialised per dense lane).
fn comp_find(dsu: &mut [u32], index: usize) -> usize {
    let mut root = index;
    while dsu[root] as usize != root {
        root = dsu[root] as usize;
    }
    let mut cur = index;
    while cur != root {
        let next = dsu[cur] as usize;
        dsu[cur] = root as u32;
        cur = next;
    }
    root
}

/// Unions two component-DSU entries, keeping the *smaller* index as root so
/// every component's root is its first member (components then enumerate in
/// first-member order).
fn comp_union(dsu: &mut [u32], a: usize, b: usize) {
    let ra = comp_find(dsu, a);
    let rb = comp_find(dsu, b);
    if ra != rb {
        dsu[ra.max(rb)] = ra.min(rb) as u32;
    }
}

/// Union-find decoder over a decoding graph.
#[derive(Debug, Clone)]
pub struct UnionFindDecoder {
    graph: DecodingGraph,
    /// Discretised edge lengths (growth units).
    lengths: Vec<u32>,
    /// Index of the virtual boundary node (== number of detectors).
    boundary: usize,
    /// Syndrome-memo ownership token (see [`crate::memo`]).
    memo_token: NonZeroU64,
}

impl UnionFindDecoder {
    /// Creates a decoder for the given decoding graph.
    pub fn new(graph: DecodingGraph) -> Self {
        let boundary = graph.num_detectors();
        let lengths = graph
            .edges()
            .iter()
            .map(|e| ((2.0 * e.weight).round() as u32).clamp(1, 100))
            .collect();
        UnionFindDecoder {
            graph,
            lengths,
            boundary,
            memo_token: next_memo_token(),
        }
    }

    /// Access to the underlying graph.
    pub fn graph(&self) -> &DecodingGraph {
        &self.graph
    }

    fn edge_endpoints(&self, edge: usize) -> (usize, usize) {
        let e = &self.graph.edges()[edge];
        (e.a, e.b.unwrap_or(self.boundary))
    }

    /// Growth phase: grow active clusters until all are neutral. Fully-grown
    /// edges are recorded in `s.grown` / `s.grown_edges`.
    fn grow(&self, fired_detectors: &[usize], s: &mut UnionFindScratch) {
        for &d in fired_detectors {
            let root = s.find(d);
            if s.is_active(root) {
                s.active.push(root);
            }
        }
        s.active.sort_unstable();
        s.active.dedup();

        // Each round grows every active cluster's frontier in lock-step, by
        // the largest uniform amount that completes at least one edge
        // (fast-forwarding the unit-growth schedule: an edge grown by `k`
        // active clusters advances `k` units per unit round, and rounds in
        // which nothing completes are skipped wholesale, so the merge
        // schedule is identical to unit growth at a fraction of the cost).
        // The loop terminates because every round either grows an edge or
        // merges clusters; a stall guard handles pathological graphs with
        // unreachable defects.
        loop {
            let mut active = std::mem::take(&mut s.active);
            active.retain_mut(|root| {
                let r = *root;
                s.find(r) == r && s.is_active(r)
            });
            if active.is_empty() {
                s.active = active;
                break;
            }
            // Pass 1: prune each active frontier (grown / internal /
            // duplicate edges drop out) and count how many clusters grow
            // each edge. The round stamp invalidates the previous round's
            // multiplicities; `last_root` deduplicates repeated entries of
            // one cluster's frontier without sorting it.
            s.round += 1;
            s.growth_candidates.clear();
            for &root in &active {
                let mut frontier = s.frontier.take(root);
                let mut kept = 0usize;
                for index in 0..frontier.len() {
                    let edge = frontier[index];
                    let mut state = s.edges.get(edge);
                    if state.grown {
                        continue;
                    }
                    if state.round == s.round && state.last_root == root as u32 {
                        // Duplicate frontier entry within this cluster.
                        continue;
                    }
                    let (a, b) = self.edge_endpoints(edge);
                    let ra = s.find(a);
                    let rb = s.find(b);
                    if ra == rb {
                        // Internal edge; no longer part of the frontier.
                        continue;
                    }
                    let count = s.edge_multiplicity(state);
                    if count == 0 {
                        s.growth_candidates.push(edge);
                    }
                    state.multiplicity = count + 1;
                    state.round = s.round;
                    state.last_root = root as u32;
                    s.edges.set(edge, state);
                    frontier[kept] = edge;
                    kept += 1;
                }
                frontier.truncate(kept);
                // Return the surviving frontier to the root's slot.
                s.frontier.restore(root, frontier);
            }
            if s.growth_candidates.is_empty() {
                // No edge can grow: remaining defects are unmatchable
                // (disconnected detectors). Give up on them.
                s.active = active;
                break;
            }
            // Pass 2: number of unit rounds until the first edge completes.
            let mut rounds = u32::MAX;
            for index in 0..s.growth_candidates.len() {
                let edge = s.growth_candidates[index];
                let state = s.edges.get(edge);
                let gap = self.lengths[edge] - state.support;
                rounds = rounds.min(gap.div_ceil(u32::from(state.multiplicity)));
            }
            // Pass 3: fast-forward every frontier edge by that many rounds.
            s.merges.clear();
            for index in 0..s.growth_candidates.len() {
                let edge = s.growth_candidates[index];
                let mut state = s.edges.get(edge);
                state.support += u32::from(state.multiplicity) * rounds;
                if state.support >= self.lengths[edge] {
                    state.grown = true;
                    s.grown_edges.push(edge);
                    s.merges.push(edge);
                }
                s.edges.set(edge, state);
            }
            let mut merges = std::mem::take(&mut s.merges);
            // Canonical merge order regardless of frontier traversal order.
            merges.sort_unstable();
            for &edge in &merges {
                let (a, b) = self.edge_endpoints(edge);
                // Record the grown edge in the peeling adjacency (cycle
                // edges included: they are valid non-tree edges).
                s.peel_adjacency.get_mut(a).push(edge);
                if b != a {
                    s.peel_adjacency.get_mut(b).push(edge);
                }
                let ra = s.find(a);
                let rb = s.find(b);
                if ra != rb {
                    // Adopt the other endpoint's incident edges into the
                    // merged frontier the first time a lone node is absorbed.
                    for node in [a, b] {
                        let r = s.find(node);
                        if s.frontier.get_mut(r).is_empty()
                            && !s.defect.get(node)
                            && node != self.boundary
                        {
                            let incident = self.graph.incident_edges(node);
                            s.frontier.get_mut(r).extend_from_slice(incident);
                        }
                    }
                    let new_root = s.union(a, b);
                    // Make sure the merged cluster also sees the absorbed
                    // node's incident edges.
                    for node in [a, b] {
                        if node != self.boundary {
                            let incident = self.graph.incident_edges(node);
                            s.frontier.get_mut(new_root).extend_from_slice(incident);
                        }
                    }
                    active.push(new_root);
                }
            }
            s.merges = merges;
            active.sort_unstable();
            active.dedup();
            s.active = active;
        }
    }

    /// Peeling phase: build a spanning forest of the grown edges recorded
    /// since `grown_start` (rooted at the boundary where possible) and peel
    /// defects from the leaves inward, XOR-ing edge observables into
    /// `prediction`.
    ///
    /// Only the grown subgraph is visited, so the cost is proportional to
    /// the clusters actually built this shot, not to the graph size. A
    /// whole-shot decode passes `grown_start == 0`; the dense path's
    /// cluster matcher peels each component with the marker it recorded
    /// before growing, so earlier components' forests are left in place.
    fn peel_from(&self, s: &mut UnionFindScratch, grown_start: usize, prediction: &mut [bool]) {
        // Roots: the boundary first (so it can absorb defects), then the
        // grown edges' endpoints in ascending order (`peel_roots` is sorted
        // below, so the grown-edge list itself needs no ordering).
        s.peel_roots.clear();
        for index in grown_start..s.grown_edges.len() {
            let (a, b) = self.edge_endpoints(s.grown_edges[index]);
            s.peel_roots.push(a);
            s.peel_roots.push(b);
        }
        s.peel_roots.sort_unstable();
        s.peel_roots.dedup();

        s.order.clear();
        let bfs = |start: usize, force: bool, s: &mut UnionFindScratch| {
            if s.peel.written(start) {
                // `force` re-expands a node that is already part of an
                // earlier component's forest (only ever the boundary, which
                // is always a forest root): its adjacency has gained the
                // new component's grown edges, and the old neighbors are
                // blocked by their visited flags.
                if !force {
                    return;
                }
            } else {
                // A written slot doubles as the visited flag; roots keep
                // the "no incoming edge" sentinels.
                s.peel.set(
                    start,
                    crate::batch::PeelState {
                        parent_edge: u32::MAX,
                        parent_node: u32::MAX,
                    },
                );
            }
            s.queue.clear();
            s.queue.push_back(start);
            while let Some(v) = s.queue.pop_front() {
                s.order.push(v);
                // Only the grown subgraph's adjacency is walked, in the
                // (deterministic) order the edges completed.
                let incident = s.peel_adjacency.take(v);
                for &edge in &incident {
                    let (a, b) = self.edge_endpoints(edge);
                    let next = if a == v { b } else { a };
                    if !s.peel.written(next) {
                        s.peel.set(
                            next,
                            crate::batch::PeelState {
                                parent_edge: edge as u32,
                                parent_node: v as u32,
                            },
                        );
                        s.queue.push_back(next);
                    }
                }
                s.peel_adjacency.restore(v, incident);
            }
        };

        // Root the forest at the boundary first so it can absorb defects.
        // The new grown edges touch the boundary exactly when it appears in
        // `peel_roots`; force the walk in case an earlier component already
        // rooted the boundary.
        if s.peel_roots.binary_search(&self.boundary).is_ok() {
            bfs(self.boundary, true, s);
        }
        let roots = std::mem::take(&mut s.peel_roots);
        for &v in &roots {
            bfs(v, false, s);
        }
        s.peel_roots = roots;

        // Peel leaves-first (reverse BFS order).
        for index in (0..s.order.len()).rev() {
            let v = s.order[index];
            if s.defect.get(v) {
                let peel = s.peel.get(v);
                if peel.parent_edge != u32::MAX {
                    for &obs in &self.graph.edges()[peel.parent_edge as usize].observables {
                        prediction[obs as usize] ^= true;
                    }
                    s.defect.set(v, false);
                    let p = peel.parent_node as usize;
                    let flipped = !s.defect.get(p);
                    s.defect.set(p, flipped);
                }
            }
        }
        // Any defect absorbed by the boundary is fine; the boundary's defect
        // flag is ignored.
    }

    /// Seeds, grows and peels one defect set inside the scratch's *current*
    /// epoch — the shared primitive of `decode_shot` (whole shot, fresh
    /// epoch) and the dense path's cluster matcher (one component at a
    /// time, shared epoch). Untouched slots read as fresh defaults, so a
    /// later component is automatically seeded from the lane's shared
    /// quiet-detector structure; `grown_marker` scopes the peel to the
    /// edges this call grew.
    fn decode_component(
        &self,
        comp_fired: &[usize],
        s: &mut UnionFindScratch,
        prediction: &mut [bool],
        grown_marker: usize,
    ) {
        // Drop stale active roots a previous component's stall guard may
        // have left behind (the whole-shot path starts empty anyway).
        s.active.clear();
        for &d in comp_fired {
            s.defect.set(d, true);
            let mut state = s.nodes.get(d);
            state.parity = true;
            s.nodes.set(d, state);
            s.frontier
                .get_mut(d)
                .extend_from_slice(self.graph.incident_edges(d));
        }
        self.grow(comp_fired, s);
        self.peel_from(s, grown_marker, prediction);
    }

    /// Splits a dense lane's (sorted-ascending) defect list into connected
    /// components of the decoding graph, unioning defects that are direct
    /// neighbors (hop 1) *or* share an unfired neighbor detector (hop 2 —
    /// two growth steps meet in the middle, the common case for a data
    /// error straddling two rounds). Returns the component count; the
    /// grouping lives in `s.comp_dsu`, rooted at each component's first
    /// member. The split is a heuristic only — correctness comes from the
    /// claim protocol, which catches any two components that interact
    /// during growth no matter how they were grouped.
    fn decompose(&self, fired_detectors: &[usize], s: &mut UnionFindScratch) -> usize {
        let n = fired_detectors.len();
        s.comp_dsu.clear();
        s.comp_dsu.extend(0..n as u32);
        s.comp_neighbor.begin(self.graph.num_detectors());
        for (i, &d) in fired_detectors.iter().enumerate() {
            for &edge in self.graph.incident_edges(d) {
                let Some(other) = self.graph.edges()[edge].other(d) else {
                    // Boundary edges never couple components: a cluster
                    // touching the boundary stops growing there.
                    continue;
                };
                if let Ok(j) = fired_detectors.binary_search(&other) {
                    comp_union(&mut s.comp_dsu, i, j);
                } else {
                    let owner = s.comp_neighbor.get(other);
                    if owner == u32::MAX {
                        s.comp_neighbor.set(other, i as u32);
                    } else {
                        comp_union(&mut s.comp_dsu, i, owner as usize);
                    }
                }
            }
        }
        (0..n)
            .filter(|&i| comp_find(&mut s.comp_dsu, i) == i)
            .count()
    }

    /// Two-phase claim of one component's touched region (its defect and
    /// grown-endpoint nodes plus all their incident edges). Phase 1 checks
    /// every id against earlier components' claims; phase 2 *always* sets
    /// and logs them — even on conflict — so the rollback log covers this
    /// component's own writes too. The boundary node is claimed only for
    /// rollback (when touched) and is exempt from the conflict check:
    /// sharing the boundary is benign, because a boundary-merged cluster is
    /// inactive from both sides and the peel never reads union-find state.
    /// Returns whether this component conflicts with an earlier one.
    fn claim_component(
        &self,
        s: &mut UnionFindScratch,
        touched: &[u32],
        boundary_touched: bool,
    ) -> bool {
        let num_nodes = self.graph.num_nodes();
        let mut conflict = false;
        'check: for &node in touched {
            let node = node as usize;
            if s.claims.get(node) {
                conflict = true;
                break 'check;
            }
            for &edge in self.graph.incident_edges(node) {
                if s.claims.get(num_nodes + edge) {
                    conflict = true;
                    break 'check;
                }
            }
        }
        for &node in touched {
            let node = node as usize;
            s.claim_id(node);
            for &edge in self.graph.incident_edges(node) {
                s.claim_id(num_nodes + edge);
            }
        }
        if boundary_touched {
            s.claim_id(self.boundary);
        }
        conflict
    }

    /// The dense miss path: cluster decomposition with per-cluster memo
    /// probes, post-hoc conflict detection, and the O(touched) rollback +
    /// whole-lane fallback. See the `batch` module docs for the ladder this
    /// implements and the invariants it maintains.
    fn decode_dense_uncached(
        &self,
        fired_detectors: &[usize],
        scratch: &mut DecodeScratch,
        dense: &mut DenseTier<'_>,
        prediction: &mut [bool],
    ) {
        let num_nodes = self.graph.num_nodes();
        let num_edges = self.graph.edges().len();
        let s = &mut scratch.union_find;
        s.begin(num_nodes, num_edges);
        s.claims.begin(num_nodes + num_edges);
        s.claim_log.clear();
        s.lane_touched.clear();
        let mut boundary_state = s.nodes.get(self.boundary);
        boundary_state.boundary = true;
        s.nodes.set(self.boundary, boundary_state);

        let components = self.decompose(fired_detectors, s);
        let mut conflict = false;
        if components <= 1 {
            // One cluster: its key equals the lane key that just missed, so
            // a cluster probe cannot hit; decode whole-lane directly.
            self.decode_component(fired_detectors, s, prediction, 0);
        } else {
            dense.memo.note_cluster_lane(components as u64);
            let n = fired_detectors.len();
            for rep in 0..n {
                if comp_find(&mut s.comp_dsu, rep) != rep {
                    continue;
                }
                let mut comp_fired = std::mem::take(&mut s.comp_fired);
                comp_fired.clear();
                for (i, &fired) in fired_detectors.iter().enumerate().skip(rep) {
                    if comp_find(&mut s.comp_dsu, i) == rep {
                        comp_fired.push(fired);
                    }
                }
                let mut comp_key = std::mem::take(&mut s.comp_key);
                comp_key.clear();
                comp_key.extend(comp_fired.iter().map(|&d| d as u32));
                let mut comp_touched = std::mem::take(&mut s.comp_touched);
                comp_touched.clear();
                let mut boundary_touched = false;
                // Cluster probe: an entry with touched information answers
                // the component without growing anything (its claims are
                // still checked and registered, exactly as if it had been
                // decoded). Entries without touched information (inserted
                // by the generic whole-lane default) only answer whole-lane
                // probes.
                let mut answered = None;
                if let Some((flips, touched)) = dense.memo.dense_lookup(&comp_key) {
                    if !touched.is_empty() {
                        comp_touched.extend_from_slice(touched);
                        answered = Some(flips);
                    }
                }
                let flips = match answered {
                    Some(flips) => flips,
                    None => {
                        let marker = s.grown_edges.len();
                        let before = pack_prediction(prediction);
                        self.decode_component(&comp_fired, s, prediction, marker);
                        let after = pack_prediction(prediction);
                        comp_touched.extend(comp_fired.iter().map(|&d| d as u32));
                        for index in marker..s.grown_edges.len() {
                            let (a, b) = self.edge_endpoints(s.grown_edges[index]);
                            for node in [a, b] {
                                if node == self.boundary {
                                    boundary_touched = true;
                                } else {
                                    comp_touched.push(node as u32);
                                }
                            }
                        }
                        comp_touched.sort_unstable();
                        comp_touched.dedup();
                        before ^ after
                    }
                };
                let comp_conflict = self.claim_component(s, &comp_touched, boundary_touched);
                if !comp_conflict {
                    if answered.is_some() {
                        // Replay the cached component (XOR like the peel).
                        let mut bits = flips;
                        while bits != 0 {
                            prediction[bits.trailing_zeros() as usize] ^= true;
                            bits &= bits - 1;
                        }
                    } else {
                        dense.memo.dense_insert(&comp_key, flips, &comp_touched);
                    }
                    s.lane_touched.extend_from_slice(&comp_touched);
                }
                s.comp_fired = comp_fired;
                s.comp_key = comp_key;
                s.comp_touched = comp_touched;
                if comp_conflict {
                    conflict = true;
                    break;
                }
            }
        }

        if conflict {
            // Two clusters met during growth: the decomposition's isolation
            // assumption broke, so undo every touched slot (O(touched), not
            // a full reset) and decode the lane whole in the same epoch.
            dense.memo.note_cluster_conflict();
            prediction.fill(false);
            s.rollback(num_nodes);
            let mut boundary_state = s.nodes.get(self.boundary);
            boundary_state.boundary = true;
            s.nodes.set(self.boundary, boundary_state);
            self.decode_component(fired_detectors, s, prediction, 0);
        }

        if conflict || components <= 1 {
            // Whole-lane touched set, computed from the (single) decode.
            s.lane_touched.clear();
            s.lane_touched
                .extend(fired_detectors.iter().map(|&d| d as u32));
            for index in 0..s.grown_edges.len() {
                let (a, b) = self.edge_endpoints(s.grown_edges[index]);
                for node in [a, b] {
                    if node != self.boundary {
                        s.lane_touched.push(node as u32);
                    }
                }
            }
        }
        s.lane_touched.sort_unstable();
        s.lane_touched.dedup();
        let flips = pack_prediction(prediction);
        dense.insert_lane(fired_detectors, flips, &s.lane_touched);
    }
}

impl Decoder for UnionFindDecoder {
    fn decode_shot(
        &self,
        fired_detectors: &[usize],
        scratch: &mut DecodeScratch,
        prediction: &mut [bool],
    ) {
        if fired_detectors.is_empty() || self.graph.is_empty() {
            return;
        }
        let num_nodes = self.graph.num_nodes();
        let s = &mut scratch.union_find;
        s.begin(num_nodes, self.graph.edges().len());
        let mut boundary_state = s.nodes.get(self.boundary);
        boundary_state.boundary = true;
        s.nodes.set(self.boundary, boundary_state);
        self.decode_component(fired_detectors, s, prediction, 0);
    }

    fn num_observables(&self) -> usize {
        self.graph.num_observables()
    }

    fn memo_token(&self) -> Option<NonZeroU64> {
        Some(self.memo_token)
    }

    fn decode_dense_shot(
        &self,
        fired_detectors: &[usize],
        scratch: &mut DecodeScratch,
        dense: &mut DenseTier<'_>,
        prediction: &mut [bool],
    ) {
        if fired_detectors.is_empty() || self.graph.is_empty() {
            return;
        }
        if let Some(mut flips) = dense.lookup_lane(fired_detectors) {
            while flips != 0 {
                prediction[flips.trailing_zeros() as usize] = true;
                flips &= flips - 1;
            }
            return;
        }
        self.decode_dense_uncached(fired_detectors, scratch, dense, prediction);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qccd_sim::{DemError, DetectorErrorModel};

    fn err(p: f64, detectors: Vec<u32>, observables: Vec<u32>) -> DemError {
        DemError {
            probability: p,
            detectors,
            observables,
        }
    }

    /// A 1-D repetition-code-like chain: detectors 0..n in a line, boundary
    /// edges at both ends, the last boundary edge flips the observable.
    fn chain_graph(n: usize) -> DecodingGraph {
        let mut errors = vec![err(0.01, vec![0], vec![])];
        for i in 0..n - 1 {
            errors.push(err(0.01, vec![i as u32, i as u32 + 1], vec![]));
        }
        errors.push(err(0.01, vec![n as u32 - 1], vec![0]));
        let dem = DetectorErrorModel {
            num_detectors: n,
            num_observables: 1,
            errors,
        };
        DecodingGraph::from_dem(&dem)
    }

    #[test]
    fn empty_syndrome_gives_trivial_correction() {
        let decoder = UnionFindDecoder::new(chain_graph(5));
        assert_eq!(decoder.decode(&[]), vec![false]);
        assert_eq!(decoder.num_observables(), 1);
    }

    #[test]
    fn single_defect_matches_to_nearest_boundary() {
        let decoder = UnionFindDecoder::new(chain_graph(5));
        // Defect near the left boundary: corrected via the left (no
        // observable flip).
        assert_eq!(decoder.decode(&[0]), vec![false]);
        // Defect near the right boundary: corrected via the right edge which
        // carries the observable.
        assert_eq!(decoder.decode(&[4]), vec![true]);
    }

    #[test]
    fn adjacent_defect_pair_is_matched_internally() {
        let decoder = UnionFindDecoder::new(chain_graph(6));
        // Two adjacent defects in the middle: the error was a single data
        // error between them; no observable flip.
        assert_eq!(decoder.decode(&[2, 3]), vec![false]);
    }

    #[test]
    fn defect_pair_spanning_the_chain_flips_the_observable_once() {
        let decoder = UnionFindDecoder::new(chain_graph(4));
        // Defects at both ends: the most likely explanation is two separate
        // boundary errors (left one without flip, right one with flip).
        assert_eq!(decoder.decode(&[0, 3]), vec![true]);
    }

    #[test]
    fn weighted_growth_prefers_likely_edges() {
        // Detector 0 sits between a very likely boundary edge (p=0.2, no
        // flip) and a very unlikely boundary edge (p=1e-4, flip). The decoder
        // must pick the likely explanation.
        let dem = DetectorErrorModel {
            num_detectors: 1,
            num_observables: 1,
            errors: vec![err(0.2, vec![0], vec![]), err(1e-4, vec![0], vec![0])],
        };
        let decoder = UnionFindDecoder::new(DecodingGraph::from_dem(&dem));
        assert_eq!(decoder.decode(&[0]), vec![false]);
    }

    #[test]
    fn disconnected_defect_does_not_hang() {
        // Detector 1 has no incident edges at all.
        let dem = DetectorErrorModel {
            num_detectors: 2,
            num_observables: 1,
            errors: vec![err(0.01, vec![0], vec![])],
        };
        let decoder = UnionFindDecoder::new(DecodingGraph::from_dem(&dem));
        let prediction = decoder.decode(&[0, 1]);
        assert_eq!(prediction.len(), 1);
    }

    #[test]
    fn long_chain_pairs_are_resolved_locally() {
        let decoder = UnionFindDecoder::new(chain_graph(20));
        // Two well-separated internal pairs.
        assert_eq!(decoder.decode(&[3, 4, 12, 13]), vec![false]);
    }

    #[test]
    fn scratch_reuse_is_stateless_across_shots() {
        let decoder = UnionFindDecoder::new(chain_graph(8));
        let mut scratch = DecodeScratch::new();
        let syndromes: Vec<Vec<usize>> = vec![
            vec![0],
            vec![7],
            vec![2, 3],
            vec![],
            vec![0, 7],
            vec![1, 2, 6],
        ];
        for syndrome in &syndromes {
            let mut with_scratch = vec![false; 1];
            decoder.decode_shot(syndrome, &mut scratch, &mut with_scratch);
            assert_eq!(
                with_scratch,
                decoder.decode(syndrome),
                "scratch reuse changed the prediction for {syndrome:?}"
            );
        }
    }
}
