//! Golden pins for the per-point seed derivation.
//!
//! Resume bit-identity in the sweeprun tier hinges on `sweep_seed(seed,
//! index)` never changing: point files are keyed by these seeds, and a
//! reshuffle would silently mix results computed under different RNG
//! streams. Any intentional change to the derivation must bump the point
//! store's format (invalidating stored points) and update these constants.

use qccd_decoder::{sweep_seed, SweepEngine};

/// `sweep_seed(2026, 0..8)` — 2026 is `DEFAULT_SWEEP_SEED` in qccd-bench.
const GOLDEN_2026: [u64; 8] = [
    0xc437_34f3_8d71_d542,
    0x3e23_97e8_36a8_74bb,
    0x5d51_8012_bb93_1ba4,
    0xc20c_8f82_fdb9_f71b,
    0x1ba3_eb2e_b650_58df,
    0xaa90_b3cf_5230_0f42,
    0x7c06_1341_1f3c_f62e,
    0x24bc_22de_798c_ebfb,
];

/// `sweep_seed(0, 0..8)` — the all-zero engine seed must not degenerate.
const GOLDEN_0: [u64; 8] = [
    0x96dc_b1d7_126a_6eba,
    0xd745_6002_5bee_d3ea,
    0x191b_68a8_2d23_0adf,
    0x3351_c2cc_406d_daf7,
    0x046f_396c_e480_6b99,
    0xd5f7_4dbc_9e2c_8717,
    0xbae2_1531_1298_4202,
    0xc835_d1de_47dd_cca7,
];

#[test]
fn sweep_seed_values_are_pinned() {
    for (index, &expected) in GOLDEN_2026.iter().enumerate() {
        assert_eq!(
            sweep_seed(2026, index as u64),
            expected,
            "sweep_seed(2026, {index}) drifted — this breaks point-store resume bit-identity"
        );
    }
    for (index, &expected) in GOLDEN_0.iter().enumerate() {
        assert_eq!(
            sweep_seed(0, index as u64),
            expected,
            "sweep_seed(0, {index}) drifted — this breaks point-store resume bit-identity"
        );
    }
}

#[test]
fn engine_point_seed_is_exactly_sweep_seed() {
    let engine = SweepEngine::new(2026);
    for (index, &expected) in GOLDEN_2026.iter().enumerate() {
        assert_eq!(engine.point_seed(index), expected);
    }
    // Threading configuration must never leak into seed derivation.
    let threaded = SweepEngine::new(2026).with_num_threads(7);
    for index in 0..GOLDEN_2026.len() {
        assert_eq!(threaded.point_seed(index), engine.point_seed(index));
    }
}
