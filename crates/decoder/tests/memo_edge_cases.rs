//! Edge-case tests for the syndrome memo: empty syndromes, defect counts
//! above the cap, entry caps, cross-chunk scratch reuse (epoch-stamp reuse)
//! and `CacheStats` counter correctness.

use qccd_decoder::{
    CacheStats, DecodeScratch, Decoder, DecodingGraph, GreedyMatchingDecoder, MemoConfig,
    SyndromeChunk, UnionFindDecoder,
};
use qccd_sim::{DemError, DetectorErrorModel};

/// A chain decoding graph: `n` detectors in a line, boundary edges at both
/// ends; the right boundary edge flips the observable.
fn chain_graph(n: usize) -> DecodingGraph {
    let mut errors = vec![DemError {
        probability: 0.01,
        detectors: vec![0],
        observables: vec![],
    }];
    for i in 0..n - 1 {
        errors.push(DemError {
            probability: 0.01,
            detectors: vec![i as u32, i as u32 + 1],
            observables: vec![],
        });
    }
    errors.push(DemError {
        probability: 0.01,
        detectors: vec![n as u32 - 1],
        observables: vec![0],
    });
    DecodingGraph::from_dem(&DetectorErrorModel {
        num_detectors: n,
        num_observables: 1,
        errors,
    })
}

fn chunk_of(n: usize, shots: &[Vec<usize>]) -> SyndromeChunk {
    let packed: Vec<(Vec<usize>, Vec<usize>)> = shots
        .iter()
        .map(|fired| (fired.clone(), Vec::new()))
        .collect();
    SyndromeChunk::from_shots(n, 1, &packed)
}

#[test]
fn quiet_chunk_touches_neither_memo_nor_stats() {
    let decoder = UnionFindDecoder::new(chain_graph(6));
    let mut scratch = DecodeScratch::new();
    let chunk = chunk_of(6, &[vec![], vec![], vec![]]);
    let batch = decoder.decode_batch(&chunk, &mut scratch);
    for shot in 0..3 {
        assert_eq!(batch.shot_prediction(shot), vec![false]);
    }
    assert_eq!(scratch.cache_stats(), CacheStats::default());
    assert_eq!(scratch.memo_entries(), 0);
}

#[test]
fn defect_count_above_the_cap_bypasses_the_memo() {
    let decoder = UnionFindDecoder::new(chain_graph(8));
    let mut scratch = DecodeScratch::new();
    // 5 defects > default cap of 4: decoded directly, counted uncacheable.
    let big: Vec<usize> = (0..5).collect();
    let chunk = chunk_of(8, &[big.clone(), big.clone()]);
    let batch = decoder.decode_batch(&chunk, &mut scratch);
    assert_eq!(batch.shot_prediction(0), decoder.decode(&big));
    assert_eq!(batch.shot_prediction(0), batch.shot_prediction(1));
    let stats = scratch.cache_stats();
    assert_eq!(
        stats,
        CacheStats {
            hits: 0,
            misses: 0,
            uncacheable: 2
        }
    );
    assert_eq!(scratch.memo_entries(), 0, "oversized sets are never cached");
    assert_eq!(stats.hit_rate(), 0.0);
}

#[test]
fn cache_stats_count_hits_misses_and_uncacheable_exactly() {
    let decoder = UnionFindDecoder::new(chain_graph(8));
    let mut scratch = DecodeScratch::new();
    let shots = vec![
        vec![0],             // miss
        vec![0],             // hit
        vec![1, 2],          // miss
        vec![],              // quiet: not counted
        vec![0, 1, 2, 3, 4], // uncacheable (5 > cap 4)
        vec![0],             // hit
    ];
    let chunk = chunk_of(8, &shots);
    let batch = decoder.decode_batch(&chunk, &mut scratch);
    let stats = scratch.cache_stats();
    assert_eq!(
        stats,
        CacheStats {
            hits: 2,
            misses: 2,
            uncacheable: 1
        }
    );
    assert_eq!(stats.attempts(), 4);
    assert_eq!(stats.decoded(), 5);
    assert!((stats.hit_rate() - 0.4).abs() < 1e-12);
    assert_eq!(scratch.memo_entries(), 2);
    // Every shot still matches the uncached per-shot decode.
    for (shot, fired) in shots.iter().enumerate() {
        assert_eq!(batch.shot_prediction(shot), decoder.decode(fired));
    }
    // Counter reset keeps the entries.
    scratch.reset_cache_stats();
    assert_eq!(scratch.cache_stats(), CacheStats::default());
    assert_eq!(scratch.memo_entries(), 2);
}

#[test]
fn scratch_reuse_across_chunks_keeps_entries_and_accumulates_stats() {
    // The per-shot scratch buffers are invalidated between shots/chunks by
    // epoch stamping; the memo must survive those epoch bumps so later
    // chunks hit entries cached by earlier ones.
    let decoder = UnionFindDecoder::new(chain_graph(10));
    let mut warm = DecodeScratch::new();
    let first = chunk_of(10, &[vec![2], vec![3, 4], vec![2]]);
    let second = chunk_of(10, &[vec![2], vec![9], vec![3, 4], vec![2]]);

    let first_batch = decoder.decode_batch(&first, &mut warm);
    assert_eq!(
        warm.cache_stats(),
        CacheStats {
            hits: 1,
            misses: 2,
            uncacheable: 0
        }
    );
    let entries_after_first = warm.memo_entries();
    assert_eq!(entries_after_first, 2);

    let second_batch = decoder.decode_batch(&second, &mut warm);
    // [2] and [3,4] are warm from the first chunk; only [9] misses. [2]
    // recurs within the chunk for a fourth total hit.
    assert_eq!(
        warm.cache_stats(),
        CacheStats {
            hits: 4,
            misses: 3,
            uncacheable: 0
        }
    );
    assert_eq!(warm.memo_entries(), 3);

    // Bit-identical to fresh uncached decodes of both chunks.
    let mut cold = DecodeScratch::with_memo_config(MemoConfig::disabled());
    assert_eq!(first_batch, decoder.decode_batch(&first, &mut cold));
    assert_eq!(second_batch, decoder.decode_batch(&second, &mut cold));
}

#[test]
fn entry_cap_bounds_the_table_without_changing_results() {
    let decoder = UnionFindDecoder::new(chain_graph(8));
    let mut capped = DecodeScratch::with_memo_config(MemoConfig::default().with_max_entries(1));
    let shots = vec![vec![0], vec![1], vec![1], vec![0]];
    let chunk = chunk_of(8, &shots);
    let batch = decoder.decode_batch(&chunk, &mut capped);
    assert_eq!(capped.memo_entries(), 1, "cap holds");
    // [0] miss+insert, [1] miss (insert dropped), [1] miss again, [0] hit.
    assert_eq!(
        capped.cache_stats(),
        CacheStats {
            hits: 1,
            misses: 3,
            uncacheable: 0
        }
    );
    for (shot, fired) in shots.iter().enumerate() {
        assert_eq!(batch.shot_prediction(shot), decoder.decode(fired));
    }
}

#[test]
fn scratch_shared_across_decoders_serves_no_stale_predictions() {
    // The union-find and greedy decoders may disagree on some syndromes; a
    // shared scratch must re-key the memo per decoder rather than serve one
    // decoder's cached prediction to the other.
    let graph = chain_graph(9);
    let uf = UnionFindDecoder::new(graph.clone());
    let greedy = GreedyMatchingDecoder::new(graph);
    let mut shared = DecodeScratch::new();
    let chunk = chunk_of(9, &[vec![0], vec![4, 5], vec![8]]);

    let from_uf = uf.decode_batch(&chunk, &mut shared);
    assert_eq!(shared.cache_stats().misses, 3);
    let from_greedy = greedy.decode_batch(&chunk, &mut shared);
    assert_eq!(
        shared.cache_stats().misses,
        3,
        "handing the scratch to another decoder restarts the stats"
    );

    let mut cold = DecodeScratch::with_memo_config(MemoConfig::disabled());
    assert_eq!(from_uf, uf.decode_batch(&chunk, &mut cold));
    assert_eq!(from_greedy, greedy.decode_batch(&chunk, &mut cold));
}

#[test]
fn disabling_the_memo_mid_scratch_stops_consulting_it() {
    let decoder = UnionFindDecoder::new(chain_graph(6));
    let mut scratch = DecodeScratch::new();
    let chunk = chunk_of(6, &[vec![2], vec![2]]);
    decoder.decode_batch(&chunk, &mut scratch);
    assert_eq!(scratch.cache_stats().hits, 1);
    scratch.set_memo_config(MemoConfig::disabled());
    let stats_before = scratch.cache_stats();
    let batch = decoder.decode_batch(&chunk, &mut scratch);
    assert_eq!(
        scratch.cache_stats(),
        stats_before,
        "disabled memo is inert"
    );
    assert_eq!(batch.shot_prediction(0), decoder.decode(&[2]));
}
