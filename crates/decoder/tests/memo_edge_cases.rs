//! Edge-case tests for the syndrome memo: empty syndromes, defect counts
//! above the cap, entry caps, cross-chunk scratch reuse (epoch-stamp reuse),
//! the single-defect prefill pass and `CacheStats` counter correctness.

use qccd_decoder::{
    CacheStats, DecodeScratch, Decoder, DecodingGraph, GreedyMatchingDecoder, MemoConfig,
    SyndromeChunk, UnionFindDecoder,
};
use qccd_sim::{DemError, DetectorErrorModel};

/// A chain decoding graph: `n` detectors in a line, boundary edges at both
/// ends; the right boundary edge flips the observable.
fn chain_graph(n: usize) -> DecodingGraph {
    let mut errors = vec![DemError {
        probability: 0.01,
        detectors: vec![0],
        observables: vec![],
    }];
    for i in 0..n - 1 {
        errors.push(DemError {
            probability: 0.01,
            detectors: vec![i as u32, i as u32 + 1],
            observables: vec![],
        });
    }
    errors.push(DemError {
        probability: 0.01,
        detectors: vec![n as u32 - 1],
        observables: vec![0],
    });
    DecodingGraph::from_dem(&DetectorErrorModel {
        num_detectors: n,
        num_observables: 1,
        errors,
    })
}

fn chunk_of(n: usize, shots: &[Vec<usize>]) -> SyndromeChunk {
    let packed: Vec<(Vec<usize>, Vec<usize>)> = shots
        .iter()
        .map(|fired| (fired.clone(), Vec::new()))
        .collect();
    SyndromeChunk::from_shots(n, 1, &packed)
}

#[test]
fn quiet_chunk_prefills_but_decodes_nothing() {
    let decoder = UnionFindDecoder::new(chain_graph(6));
    let mut scratch = DecodeScratch::new();
    let chunk = chunk_of(6, &[vec![], vec![], vec![]]);
    let batch = decoder.decode_batch(&chunk, &mut scratch);
    for shot in 0..3 {
        assert_eq!(batch.shot_prediction(shot), vec![false]);
    }
    // The prefill pass seeds one entry per detector; no shot ever consults
    // the memo, so the hit/miss/uncacheable counters stay zero.
    assert_eq!(
        scratch.cache_stats(),
        CacheStats {
            hits: 0,
            misses: 0,
            uncacheable: 0,
            prefilled: 6,
            quiet_words: 1,
            ..CacheStats::default()
        }
    );
    assert_eq!(scratch.memo_entries(), 6);
}

#[test]
fn single_defect_shots_hit_the_prefilled_memo_immediately() {
    // The very first single-defect shot a worker decodes must be a hit —
    // that is the point of the prefill pass (no cold-start miss, hit rates
    // independent of which chunk order defects first appear in).
    let decoder = UnionFindDecoder::new(chain_graph(7));
    let mut scratch = DecodeScratch::new();
    let chunk = chunk_of(7, &[vec![3], vec![6], vec![0]]);
    let batch = decoder.decode_batch(&chunk, &mut scratch);
    let stats = scratch.cache_stats();
    assert_eq!(stats.hits, 3, "every first-seen single defect is a hit");
    assert_eq!(stats.misses, 0);
    assert_eq!(stats.prefilled, 7);
    for (shot, fired) in [vec![3], vec![6], vec![0]].iter().enumerate() {
        assert_eq!(batch.shot_prediction(shot), decoder.decode(fired));
    }
}

#[test]
fn defect_count_above_the_cap_bypasses_the_memo() {
    let decoder = UnionFindDecoder::new(chain_graph(8));
    let mut scratch = DecodeScratch::new();
    // 5 defects > default cap of 4: decoded directly, counted uncacheable.
    let big: Vec<usize> = (0..5).collect();
    let chunk = chunk_of(8, &[big.clone(), big.clone()]);
    let batch = decoder.decode_batch(&chunk, &mut scratch);
    assert_eq!(batch.shot_prediction(0), decoder.decode(&big));
    assert_eq!(batch.shot_prediction(0), batch.shot_prediction(1));
    let stats = scratch.cache_stats();
    assert_eq!(
        stats,
        CacheStats {
            hits: 0,
            misses: 0,
            uncacheable: 2,
            prefilled: 8,
            dense_words: 1,
            dense_hits: 1, // the second identical lane hits the dense LRU
            dense_misses: 1,
            ..CacheStats::default()
        }
    );
    assert_eq!(
        scratch.memo_entries(),
        8,
        "only the prefilled singles are cached; oversized sets never are"
    );
    assert_eq!(stats.hit_rate(), 0.0);
}

#[test]
fn cache_stats_count_hits_misses_and_uncacheable_exactly() {
    let decoder = UnionFindDecoder::new(chain_graph(8));
    let mut scratch = DecodeScratch::new();
    let shots = vec![
        vec![0],             // hit (prefilled)
        vec![0],             // hit
        vec![1, 2],          // miss (pairs are not prefilled)
        vec![],              // quiet: not counted
        vec![0, 1, 2, 3, 4], // uncacheable (5 > cap 4)
        vec![0],             // hit
    ];
    let chunk = chunk_of(8, &shots);
    let batch = decoder.decode_batch(&chunk, &mut scratch);
    let stats = scratch.cache_stats();
    assert_eq!(
        stats,
        CacheStats {
            hits: 3,
            misses: 1,
            uncacheable: 1,
            prefilled: 8,
            dense_words: 1,
            word_merged: 3,
            dense_misses: 1,
            ..CacheStats::default()
        }
    );
    assert_eq!(stats.attempts(), 4);
    assert_eq!(
        stats.decoded(),
        5,
        "prefilled entries are not decoded shots"
    );
    assert!((stats.hit_rate() - 0.6).abs() < 1e-12);
    assert_eq!(scratch.memo_entries(), 9);
    // Every shot still matches the uncached per-shot decode.
    for (shot, fired) in shots.iter().enumerate() {
        assert_eq!(batch.shot_prediction(shot), decoder.decode(fired));
    }
    // Counter reset keeps the entries.
    scratch.reset_cache_stats();
    assert_eq!(scratch.cache_stats(), CacheStats::default());
    assert_eq!(scratch.memo_entries(), 9);
}

#[test]
fn scratch_reuse_across_chunks_keeps_entries_and_accumulates_stats() {
    // The per-shot scratch buffers are invalidated between shots/chunks by
    // epoch stamping; the memo must survive those epoch bumps so later
    // chunks hit entries cached (or prefilled) by earlier ones, and the
    // prefill pass must run only once per owning decoder.
    let decoder = UnionFindDecoder::new(chain_graph(10));
    let mut warm = DecodeScratch::new();
    let first = chunk_of(10, &[vec![2], vec![3, 4], vec![2]]);
    let second = chunk_of(10, &[vec![2], vec![9], vec![3, 4], vec![2]]);

    let first_batch = decoder.decode_batch(&first, &mut warm);
    assert_eq!(
        warm.cache_stats(),
        CacheStats {
            hits: 2,
            misses: 1,
            uncacheable: 0,
            prefilled: 10,
            sparse_words: 1,
            word_merged: 2,
            ..CacheStats::default()
        }
    );
    assert_eq!(warm.memo_entries(), 11);

    let second_batch = decoder.decode_batch(&second, &mut warm);
    // [2] and [9] are prefilled singles, [3,4] is warm from the first
    // chunk: everything hits, and no second prefill pass runs.
    assert_eq!(
        warm.cache_stats(),
        CacheStats {
            hits: 6,
            misses: 1,
            uncacheable: 0,
            prefilled: 10,
            sparse_words: 2,
            // Chunk two: three merged singles plus [3, 4] answered from the
            // pair mirror warmed by chunk one.
            word_merged: 6,
            ..CacheStats::default()
        }
    );
    assert_eq!(warm.memo_entries(), 11);

    // Bit-identical to fresh uncached decodes of both chunks.
    let mut cold = DecodeScratch::with_memo_config(MemoConfig::disabled());
    assert_eq!(first_batch, decoder.decode_batch(&first, &mut cold));
    assert_eq!(second_batch, decoder.decode_batch(&second, &mut cold));
}

#[test]
fn entry_cap_bounds_the_table_without_changing_results() {
    let decoder = UnionFindDecoder::new(chain_graph(8));
    let mut capped = DecodeScratch::with_memo_config(MemoConfig::default().with_max_entries(1));
    let shots = vec![vec![0], vec![1], vec![1], vec![0]];
    let chunk = chunk_of(8, &shots);
    let batch = decoder.decode_batch(&chunk, &mut capped);
    assert_eq!(capped.memo_entries(), 1, "cap holds (prefill stops at it)");
    // Prefill caches [0] only; [0] hits twice, [1] misses twice (its insert
    // is dropped at the cap).
    assert_eq!(
        capped.cache_stats(),
        CacheStats {
            hits: 2,
            misses: 2,
            uncacheable: 0,
            prefilled: 1,
            sparse_words: 1,
            word_merged: 2,
            ..CacheStats::default()
        }
    );
    for (shot, fired) in shots.iter().enumerate() {
        assert_eq!(batch.shot_prediction(shot), decoder.decode(fired));
    }
}

#[test]
fn scratch_shared_across_decoders_serves_no_stale_predictions() {
    // The union-find and greedy decoders may disagree on some syndromes; a
    // shared scratch must re-key (and re-prefill) the memo per decoder
    // rather than serve one decoder's cached prediction to the other.
    let graph = chain_graph(9);
    let uf = UnionFindDecoder::new(graph.clone());
    let greedy = GreedyMatchingDecoder::new(graph);
    let mut shared = DecodeScratch::new();
    let chunk = chunk_of(9, &[vec![0], vec![4, 5], vec![8]]);

    let from_uf = uf.decode_batch(&chunk, &mut shared);
    assert_eq!(
        shared.cache_stats(),
        CacheStats {
            hits: 2,
            misses: 1,
            uncacheable: 0,
            prefilled: 9,
            sparse_words: 1,
            word_merged: 2,
            ..CacheStats::default()
        }
    );
    let from_greedy = greedy.decode_batch(&chunk, &mut shared);
    assert_eq!(
        shared.cache_stats(),
        CacheStats {
            hits: 2,
            misses: 1,
            uncacheable: 0,
            prefilled: 9,
            sparse_words: 1,
            word_merged: 2,
            ..CacheStats::default()
        },
        "handing the scratch to another decoder restarts stats and prefill"
    );

    let mut cold = DecodeScratch::with_memo_config(MemoConfig::disabled());
    assert_eq!(from_uf, uf.decode_batch(&chunk, &mut cold));
    assert_eq!(from_greedy, greedy.decode_batch(&chunk, &mut cold));
}

#[test]
fn disabling_the_memo_mid_scratch_stops_consulting_it() {
    let decoder = UnionFindDecoder::new(chain_graph(6));
    let mut scratch = DecodeScratch::new();
    let chunk = chunk_of(6, &[vec![2], vec![2]]);
    decoder.decode_batch(&chunk, &mut scratch);
    assert_eq!(scratch.cache_stats().hits, 2, "prefilled singles hit");
    scratch.set_memo_config(MemoConfig::disabled());
    let stats_before = scratch.cache_stats();
    let batch = decoder.decode_batch(&chunk, &mut scratch);
    assert_eq!(
        scratch.cache_stats(),
        stats_before,
        "disabled memo is inert"
    );
    assert_eq!(batch.shot_prediction(0), decoder.decode(&[2]));
}

#[test]
fn hit_rate_is_independent_of_chunk_order() {
    // Before prefill, whichever chunk a worker happened to decode first paid
    // the cold-start misses; with prefill the hit counts of a shot multiset
    // are order-independent.
    let decoder = UnionFindDecoder::new(chain_graph(8));
    let a = chunk_of(8, &[vec![1], vec![5]]);
    let b = chunk_of(8, &[vec![5], vec![1]]);

    let mut forward = DecodeScratch::new();
    decoder.decode_batch(&a, &mut forward);
    decoder.decode_batch(&b, &mut forward);

    let mut backward = DecodeScratch::new();
    decoder.decode_batch(&b, &mut backward);
    decoder.decode_batch(&a, &mut backward);

    assert_eq!(forward.cache_stats(), backward.cache_stats());
    assert_eq!(forward.cache_stats().hits, 4);
    assert_eq!(forward.cache_stats().misses, 0);
}
