//! Property-based tests for the batched decode path.
//!
//! The batch engine must be a pure optimisation: for every decoder and every
//! syndrome, `decode_batch` over a bit-packed chunk must reproduce the
//! per-shot `decode` adapter bit for bit, and the chunked parallel
//! logical-error-rate estimator must be invariant under chunk size and
//! thread count for a fixed seed.

use proptest::prelude::*;

use qccd_decoder::{
    estimate_logical_error_rate_with, DecodeScratch, Decoder, DecoderKind, DecodingGraph,
    EstimatorConfig, ExactMatchingDecoder, GreedyMatchingDecoder, SyndromeChunk, UnionFindDecoder,
};
use qccd_sim::{DemError, DetectorErrorModel, NoiseChannel, NoisyCircuit, CANONICAL_BLOCK_SHOTS};

/// A random mostly-graphlike DEM over `n` detectors: a connected chain for
/// matchability plus extra random edges, with random boundary edges and
/// observable crossings.
fn random_dem(
    n: usize,
    probabilities: &[f64],
    extra_edges: &[(usize, usize, bool)],
) -> DetectorErrorModel {
    let mut errors = Vec::new();
    errors.push(DemError {
        probability: probabilities[0],
        detectors: vec![0],
        observables: vec![0],
    });
    for i in 0..n - 1 {
        errors.push(DemError {
            probability: probabilities[(i + 1) % probabilities.len()],
            detectors: vec![i as u32, i as u32 + 1],
            observables: vec![],
        });
    }
    errors.push(DemError {
        probability: probabilities[n % probabilities.len()],
        detectors: vec![n as u32 - 1],
        observables: vec![],
    });
    for &(a, b, crosses) in extra_edges {
        let (a, b) = (a % n, b % n);
        if a == b {
            continue;
        }
        errors.push(DemError {
            probability: probabilities[(a + b) % probabilities.len()],
            detectors: vec![a.min(b) as u32, a.max(b) as u32],
            observables: if crosses { vec![0] } else { vec![] },
        });
    }
    DetectorErrorModel {
        num_detectors: n,
        num_observables: 1,
        errors,
    }
}

fn probabilities() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.001f64..0.3, 4..10)
}

fn extra_edges() -> impl Strategy<Value = Vec<(usize, usize, bool)>> {
    prop::collection::vec((0usize..16, 0usize..16, any::<bool>()), 0..6)
}

/// Random per-shot syndromes over `n` detectors.
fn shots(n: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
    prop::collection::vec(
        prop::collection::btree_set(0..n, 0..n.min(6)).prop_map(|s| s.into_iter().collect()),
        1..20,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn decode_batch_is_bit_identical_to_per_shot_decode(
        probabilities in probabilities(),
        extra in extra_edges(),
        syndromes in shots(8),
    ) {
        let n = 8;
        let dem = random_dem(n, &probabilities, &extra);
        let graph = DecodingGraph::from_dem(&dem);
        let packed: Vec<(Vec<usize>, Vec<usize>)> = syndromes
            .iter()
            .map(|fired| (fired.clone(), Vec::new()))
            .collect();
        let chunk = SyndromeChunk::from_shots(n, 1, &packed);

        let decoders: Vec<Box<dyn Decoder>> = vec![
            Box::new(UnionFindDecoder::new(graph.clone())),
            Box::new(GreedyMatchingDecoder::new(graph.clone())),
            Box::new(ExactMatchingDecoder::new(graph)),
        ];
        for decoder in &decoders {
            let mut scratch = DecodeScratch::new();
            let batch = decoder.decode_batch(&chunk, &mut scratch);
            for (shot, fired) in syndromes.iter().enumerate() {
                let per_shot = decoder.decode(fired);
                prop_assert_eq!(
                    batch.shot_prediction(shot),
                    per_shot,
                    "shot {} with defects {:?}",
                    shot,
                    fired
                );
            }
        }
    }

    #[test]
    fn estimator_is_invariant_under_chunking_and_threads(
        seed in 0u64..1000,
        p in 0.01f64..0.1,
    ) {
        // A small noisy parity-check circuit, enough shots for 3 blocks.
        let circuit = noisy_parity_circuit(p);
        let shots = 2 * CANONICAL_BLOCK_SHOTS + 777;
        let reference = estimate_logical_error_rate_with(
            &circuit,
            shots,
            seed,
            DecoderKind::UnionFind,
            &EstimatorConfig::default().with_chunk_shots(1).with_num_threads(1),
        )
        .expect("valid annotations");
        for (chunk_shots, threads) in [(CANONICAL_BLOCK_SHOTS, 4), (3 * CANONICAL_BLOCK_SHOTS, 2)] {
            let estimate = estimate_logical_error_rate_with(
                &circuit,
                shots,
                seed,
                DecoderKind::UnionFind,
                &EstimatorConfig::default()
                    .with_chunk_shots(chunk_shots)
                    .with_num_threads(threads),
            )
            .expect("valid annotations");
            prop_assert_eq!(estimate.shots, reference.shots);
            prop_assert_eq!(
                estimate.failures,
                reference.failures,
                "chunk_shots={} threads={}",
                chunk_shots,
                threads
            );
        }
    }
}

/// A three-qubit parity-check circuit with bit-flip noise; small enough that
/// the property test stays fast at tens of thousands of shots.
fn noisy_parity_circuit(p: f64) -> NoisyCircuit {
    use qccd_circuit::{Detector, Instruction, LogicalObservable, MeasurementRef, QubitId};
    let q = |i: u32| QubitId::new(i);
    let mref = |i: u32, occurrence: u32| MeasurementRef::new(q(i), occurrence);
    let mut c = NoisyCircuit::new();
    for i in 0..3 {
        c.push_gate(Instruction::Reset(q(i)));
    }
    for round in 0..2u32 {
        c.push_gate(Instruction::Reset(q(2)));
        c.push_noise(NoiseChannel::BitFlip { qubit: q(0), p });
        c.push_gate(Instruction::Cnot {
            control: q(0),
            target: q(2),
        });
        c.push_gate(Instruction::Cnot {
            control: q(1),
            target: q(2),
        });
        c.push_gate(Instruction::Measure(q(2)));
        if round == 0 {
            c.add_detector(Detector::new(vec![mref(2, 0)]));
        } else {
            c.add_detector(Detector::new(vec![mref(2, 0), mref(2, 1)]));
        }
    }
    c.push_gate(Instruction::Measure(q(0)));
    c.add_observable(LogicalObservable::new(vec![mref(0, 0)]));
    c
}
