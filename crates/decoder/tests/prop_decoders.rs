//! Property-based tests for the decoders.
//!
//! Random repetition-code-like decoding graphs exercise the three decoders
//! (union-find, greedy matching, exact matching) on arbitrary syndromes and
//! check the invariants any matching decoder must satisfy, plus the ordering
//! relations between them.

use proptest::prelude::*;

use qccd_decoder::{
    Decoder, DecodingGraph, ExactMatchingDecoder, GreedyMatchingDecoder, UnionFindDecoder,
};
use qccd_sim::{DemError, DetectorErrorModel};

/// A chain decoding graph: `n` detectors in a line, boundary edges at both
/// ends, with per-edge probabilities drawn from the strategy. The left
/// boundary edge crosses the logical observable.
fn chain_dem(probabilities: &[f64]) -> DetectorErrorModel {
    let n = probabilities.len() - 1;
    let mut errors = Vec::new();
    errors.push(DemError {
        probability: probabilities[0],
        detectors: vec![0],
        observables: vec![0],
    });
    for i in 0..n - 1 {
        errors.push(DemError {
            probability: probabilities[i + 1],
            detectors: vec![i as u32, i as u32 + 1],
            observables: vec![],
        });
    }
    errors.push(DemError {
        probability: probabilities[n],
        detectors: vec![n as u32 - 1],
        observables: vec![],
    });
    DetectorErrorModel {
        num_detectors: n,
        num_observables: 1,
        errors,
    }
}

/// Strategy: edge probabilities for a chain of 3–10 detectors.
fn chain_probabilities() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.001f64..0.3, 4..12)
}

/// Strategy: a subset of defects for a chain with `n` detectors.
fn defect_subset(n: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::btree_set(0..n, 0..n.min(8)).prop_map(|s| s.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn empty_syndromes_predict_no_flip(probabilities in chain_probabilities()) {
        let dem = chain_dem(&probabilities);
        let graph = DecodingGraph::from_dem(&dem);
        let decoders: Vec<Box<dyn Decoder>> = vec![
            Box::new(UnionFindDecoder::new(graph.clone())),
            Box::new(GreedyMatchingDecoder::new(graph.clone())),
            Box::new(ExactMatchingDecoder::new(graph)),
        ];
        for decoder in &decoders {
            prop_assert_eq!(decoder.decode(&[]), vec![false]);
        }
    }

    #[test]
    fn predictions_have_one_entry_per_observable(probabilities in chain_probabilities()) {
        let dem = chain_dem(&probabilities);
        let n = dem.num_detectors;
        let graph = DecodingGraph::from_dem(&dem);
        let decoders: Vec<Box<dyn Decoder>> = vec![
            Box::new(UnionFindDecoder::new(graph.clone())),
            Box::new(GreedyMatchingDecoder::new(graph.clone())),
            Box::new(ExactMatchingDecoder::new(graph)),
        ];
        // Exhaustively small syndromes on this chain.
        for defect in 0..n {
            for decoder in &decoders {
                prop_assert_eq!(decoder.decode(&[defect]).len(), 1);
                prop_assert_eq!(decoder.num_observables(), 1);
            }
        }
    }

    #[test]
    fn greedy_and_exact_agree_on_single_defects(probabilities in chain_probabilities()) {
        // With one defect the matching is a single shortest path to the
        // boundary, which both matching decoders compute identically.
        let dem = chain_dem(&probabilities);
        let n = dem.num_detectors;
        let graph = DecodingGraph::from_dem(&dem);
        let greedy = GreedyMatchingDecoder::new(graph.clone());
        let exact = ExactMatchingDecoder::new(graph);
        for defect in 0..n {
            prop_assert_eq!(greedy.decode(&[defect]), exact.decode(&[defect]));
        }
    }

    #[test]
    fn exact_matching_weight_is_bounded_by_the_all_boundary_solution(
        probabilities in chain_probabilities(),
        defects in defect_subset(3),
    ) {
        // Cheap but universal optimality bound: matching everything to the
        // boundary is one feasible solution, so the optimum can never exceed
        // it. (Defect indices are clamped to the chain length.)
        let dem = chain_dem(&probabilities);
        let n = dem.num_detectors;
        let defects: Vec<usize> = defects.into_iter().map(|d| d % n).collect();
        let mut defects = defects;
        defects.sort_unstable();
        defects.dedup();
        let graph = DecodingGraph::from_dem(&dem);
        let exact = ExactMatchingDecoder::new(graph.clone());
        let Some(weight) = exact.matching_weight(&defects) else {
            return Ok(());
        };

        // All-boundary cost: for each defect, its cheapest boundary edge
        // reached by walking left or right along the chain.
        let edge_weight = |p: f64| ((1.0 - p.clamp(1e-12, 0.5)) / p.clamp(1e-12, 0.5)).ln().max(0.0);
        let weights: Vec<f64> = probabilities.iter().map(|&p| edge_weight(p)).collect();
        let mut all_boundary = 0.0;
        for &d in &defects {
            let left: f64 = weights[..=d].iter().sum();
            let right: f64 = weights[d + 1..].iter().sum();
            all_boundary += left.min(right);
        }
        prop_assert!(
            weight <= all_boundary + 1e-6,
            "exact weight {weight} exceeds all-boundary bound {all_boundary}"
        );
    }

    #[test]
    fn decoders_are_deterministic(
        probabilities in chain_probabilities(),
        defects in defect_subset(3),
    ) {
        let dem = chain_dem(&probabilities);
        let n = dem.num_detectors;
        let mut defects: Vec<usize> = defects.into_iter().map(|d| d % n).collect();
        defects.sort_unstable();
        defects.dedup();
        let graph = DecodingGraph::from_dem(&dem);
        let uf = UnionFindDecoder::new(graph.clone());
        let exact = ExactMatchingDecoder::new(graph);
        prop_assert_eq!(uf.decode(&defects), uf.decode(&defects));
        prop_assert_eq!(exact.decode(&defects), exact.decode(&defects));
    }

    #[test]
    fn adjacent_defect_pairs_never_cross_the_logical(
        probabilities in chain_probabilities(),
        start in 0usize..6,
    ) {
        // Two adjacent defects in the bulk are explained by the single edge
        // between them, which never crosses the logical observable in this
        // graph family. All decoders must agree on "no flip" whenever the
        // internal edge is at least as cheap as the two boundary paths.
        let dem = chain_dem(&probabilities);
        let n = dem.num_detectors;
        if n < 4 {
            return Ok(());
        }
        let a = start % (n - 1);
        let b = a + 1;
        // Only assert for bulk pairs, where the internal edge is obviously
        // the cheapest explanation.
        if a == 0 || b == n - 1 {
            return Ok(());
        }
        let graph = DecodingGraph::from_dem(&dem);
        let exact = ExactMatchingDecoder::new(graph);
        let weights: Vec<f64> = probabilities
            .iter()
            .map(|&p| ((1.0 - p.clamp(1e-12, 0.5)) / p.clamp(1e-12, 0.5)).ln().max(0.0))
            .collect();
        let internal = weights[a + 1];
        let left_boundary: f64 = weights[..=a].iter().sum();
        let right_boundary: f64 = weights[b + 1..].iter().sum();
        if internal < left_boundary + right_boundary {
            prop_assert_eq!(exact.decode(&[a, b]), vec![false]);
        }
    }
}
