//! Property battery for the dense-shot tail: lanes with more defects than
//! the memo cap, which route through the dense LRU tier and the local
//! cluster matcher instead of the sparse word merge.
//!
//! Shot streams here are biased heavy — every random lane carries at least
//! five defects, the regime a surface code reaches at physical error rates
//! of 5e-3 and above — so the triage ladder's dense rungs are exercised on
//! every word. The contract under test is the crate-wide invariant: the
//! dense tier (lane LRU, cluster decomposition, conflict rollback, tiny
//! caps forcing evictions, or the tier switched off entirely) must be
//! **bit-identical** to the per-shot reference loop and to a cold
//! memo-disabled decode, with the dense/cluster `CacheStats` counters
//! agreeing between the word and per-shot paths.

use proptest::prelude::*;

use qccd_decoder::{
    CacheStats, DecodeScratch, Decoder, DecoderKind, DecodingGraph, ExactMatchingDecoder,
    GreedyMatchingDecoder, MemoConfig, SyndromeChunk, UnionFindDecoder,
};
use qccd_sim::{sample_detector_chunks, DemError, DetectorErrorModel, NoiseChannel, NoisyCircuit};

/// A chain decoding graph: `n` detectors in a line, boundary edges at both
/// ends; the right boundary edge flips the observable.
fn chain_graph(n: usize) -> DecodingGraph {
    let mut errors = vec![DemError {
        probability: 0.01,
        detectors: vec![0],
        observables: vec![],
    }];
    for i in 0..n - 1 {
        errors.push(DemError {
            probability: 0.01,
            detectors: vec![i as u32, i as u32 + 1],
            observables: vec![],
        });
    }
    errors.push(DemError {
        probability: 0.01,
        detectors: vec![n as u32 - 1],
        observables: vec![0],
    });
    DecodingGraph::from_dem(&DetectorErrorModel {
        num_detectors: n,
        num_observables: 1,
        errors,
    })
}

/// A random mostly-graphlike DEM: a connected chain plus random chords, so
/// cluster decompositions range from one big component to many islands.
fn random_dem(
    n: usize,
    probabilities: &[f64],
    extra_edges: &[(usize, usize, bool)],
) -> DetectorErrorModel {
    let mut errors = Vec::new();
    errors.push(DemError {
        probability: probabilities[0],
        detectors: vec![0],
        observables: vec![0],
    });
    for i in 0..n - 1 {
        errors.push(DemError {
            probability: probabilities[(i + 1) % probabilities.len()],
            detectors: vec![i as u32, i as u32 + 1],
            observables: vec![],
        });
    }
    errors.push(DemError {
        probability: probabilities[n % probabilities.len()],
        detectors: vec![n as u32 - 1],
        observables: vec![],
    });
    for &(a, b, crosses) in extra_edges {
        let (a, b) = (a % n, b % n);
        if a == b {
            continue;
        }
        errors.push(DemError {
            probability: probabilities[(a + b) % probabilities.len()],
            detectors: vec![a.min(b) as u32, a.max(b) as u32],
            observables: if crosses { vec![0] } else { vec![] },
        });
    }
    DetectorErrorModel {
        num_detectors: n,
        num_observables: 1,
        errors,
    }
}

fn chunk_of(n: usize, shots: &[Vec<usize>]) -> SyndromeChunk {
    let packed: Vec<(Vec<usize>, Vec<usize>)> = shots
        .iter()
        .map(|fired| (fired.clone(), Vec::new()))
        .collect();
    SyndromeChunk::from_shots(n, 1, &packed)
}

fn probabilities() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.001f64..0.3, 4..10)
}

fn extra_edges() -> impl Strategy<Value = Vec<(usize, usize, bool)>> {
    prop::collection::vec((0usize..16, 0usize..16, any::<bool>()), 0..6)
}

/// Heavy shot streams over `n` detectors: every lane fires at least five
/// detectors, above the default memo defect cap of four, so every word is
/// triaged dense and every lane takes the dense tier.
fn dense_shots(n: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
    prop::collection::vec(
        prop::collection::btree_set(0..n, 5..n + 1).prop_map(|s| s.into_iter().collect()),
        1..80,
    )
}

/// The stats both paths must agree on: the sparse memo counters plus every
/// dense-tier and cluster counter. (`*_words` triage counters and
/// `word_merged` are word-path-only by construction.)
fn comparable(stats: CacheStats) -> [u64; 10] {
    [
        stats.hits,
        stats.misses,
        stats.uncacheable,
        stats.prefilled,
        stats.dense_hits,
        stats.dense_misses,
        stats.dense_evictions,
        stats.cluster_lanes,
        stats.cluster_components,
        stats.cluster_conflicts,
    ]
}

fn all_decoders(graph: &DecodingGraph) -> Vec<Box<dyn Decoder>> {
    vec![
        Box::new(UnionFindDecoder::new(graph.clone())),
        Box::new(GreedyMatchingDecoder::new(graph.clone())),
        Box::new(ExactMatchingDecoder::new(graph.clone())),
        Box::new(ExactMatchingDecoder::new(graph.clone()).with_max_exact_defects(2)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Heavy random streams, every dense-tier configuration: bit-identical
    /// to the per-shot loop (same scratch history) and to a cold
    /// memo-disabled decode, cold and warm.
    #[test]
    fn prop_dense_tail_identity(
        probabilities in probabilities(),
        extra in extra_edges(),
        syndromes in dense_shots(12),
    ) {
        let n = 12;
        let dem = random_dem(n, &probabilities, &extra);
        let graph = DecodingGraph::from_dem(&dem);
        let chunk = chunk_of(n, &syndromes);
        let memo_configs = [
            MemoConfig::default(),
            // A two-entry lane LRU: most streams force evictions.
            MemoConfig::default().with_dense_max_entries(2),
            // Dense tier off, sparse memo on: the legacy fallback path.
            MemoConfig::default().with_dense_max_entries(0),
            MemoConfig::disabled(),
        ];

        for decoder in &all_decoders(&graph) {
            // The ground truth never touches any memo tier.
            let mut cold = DecodeScratch::with_memo_config(MemoConfig::disabled());
            let truth = decoder.decode_batch_per_shot(&chunk, &mut cold);

            for memo in memo_configs {
                let mut word = DecodeScratch::with_memo_config(memo);
                let mut per_shot = DecodeScratch::with_memo_config(memo);
                for pass in 0..2 {
                    let batch = decoder.decode_batch(&chunk, &mut word);
                    let reference = decoder.decode_batch_per_shot(&chunk, &mut per_shot);
                    prop_assert_eq!(&batch, &reference, "word vs per-shot, pass {}", pass);
                    prop_assert_eq!(&batch, &truth, "word vs cold truth, pass {}", pass);
                }
                prop_assert_eq!(
                    comparable(word.cache_stats()),
                    comparable(per_shot.cache_stats()),
                    "dense/cluster accounting must match the per-shot loop"
                );

                let stats = word.cache_stats();
                if memo.enabled() && memo.dense_enabled() {
                    prop_assert!(
                        stats.dense_misses >= 1,
                        "heavy lanes must consult the dense tier"
                    );
                } else {
                    prop_assert_eq!(stats.dense_hits, 0);
                    prop_assert_eq!(stats.dense_misses, 0);
                    prop_assert_eq!(stats.dense_evictions, 0);
                    prop_assert_eq!(stats.cluster_lanes, 0);
                }
            }
        }
    }
}

/// A two-entry dense LRU on a stream of distinct heavy lanes must evict and
/// still decode bit-identically, warm and cold.
#[test]
fn tiny_dense_cap_evicts_and_stays_bit_identical() {
    let decoder = UnionFindDecoder::new(chain_graph(16));
    // Eight distinct 5-defect lanes cycling through a 2-entry LRU.
    let shots: Vec<Vec<usize>> = (0..8)
        .map(|offset| (offset..offset + 5).collect())
        .collect();
    let chunk = chunk_of(16, &shots);
    let memo = MemoConfig::default().with_dense_max_entries(2);

    let mut word = DecodeScratch::with_memo_config(memo);
    let mut cold = DecodeScratch::with_memo_config(MemoConfig::disabled());
    let truth = decoder.decode_batch(&chunk, &mut cold);
    for pass in 0..3 {
        let batch = decoder.decode_batch(&chunk, &mut word);
        assert_eq!(batch, truth, "pass {pass}");
    }
    let stats = word.cache_stats();
    assert!(
        stats.dense_evictions >= 6,
        "eight distinct lanes through a 2-entry LRU must evict, got {}",
        stats.dense_evictions
    );
    assert!(word.dense_memo_entries() <= 2, "the cap bounds the tier");
}

/// Well-separated defect islands on a chain decompose into independent
/// clusters that decode without conflicts; the counters pin the shape.
#[test]
fn separated_islands_decode_as_independent_clusters() {
    let decoder = UnionFindDecoder::new(chain_graph(24));
    // Three adjacent pairs, far apart: each merges internally and goes
    // neutral without growing into its neighbours.
    let shots = vec![vec![2, 3, 10, 11, 18, 19]];
    let chunk = chunk_of(24, &shots);

    let mut word = DecodeScratch::new();
    let mut cold = DecodeScratch::with_memo_config(MemoConfig::disabled());
    let truth = decoder.decode_batch(&chunk, &mut cold);
    let batch = decoder.decode_batch(&chunk, &mut word);
    assert_eq!(batch, truth);

    let stats = word.cache_stats();
    assert_eq!(stats.cluster_lanes, 1, "one dense lane decomposed");
    assert_eq!(stats.cluster_components, 3, "three defect islands");
    assert_eq!(stats.cluster_conflicts, 0, "islands never touch");
    // One lane probe plus one probe per island, all cold.
    assert_eq!(stats.dense_misses, 4);

    // A warm pass answers from the lane LRU without re-clustering.
    let rerun = decoder.decode_batch(&chunk, &mut word);
    assert_eq!(rerun, truth);
    let warm = word.cache_stats();
    assert_eq!(warm.dense_hits, 1);
    assert_eq!(warm.cluster_lanes, 1, "no second decomposition");
}

/// An odd-parity island that grows across another island's claimed region
/// is detected, rolled back, and redecoded whole-lane — bit-identically.
#[test]
fn cluster_conflicts_roll_back_to_the_whole_lane_decode() {
    let decoder = UnionFindDecoder::new(chain_graph(24));
    // The middle island has odd parity, so its cluster grows along the
    // chain until it reaches a boundary — straight through the regions the
    // outer islands claimed first.
    let shots = vec![vec![0, 1, 2, 10, 11, 12, 20, 21]];
    let chunk = chunk_of(24, &shots);

    let mut word = DecodeScratch::new();
    let mut cold = DecodeScratch::with_memo_config(MemoConfig::disabled());
    let truth = decoder.decode_batch(&chunk, &mut cold);
    let batch = decoder.decode_batch(&chunk, &mut word);
    assert_eq!(batch, truth, "rollback must restore bit-identity");

    let stats = word.cache_stats();
    assert_eq!(stats.cluster_lanes, 1);
    assert_eq!(stats.cluster_components, 3);
    assert_eq!(
        stats.cluster_conflicts, 1,
        "the growing island must trip the claim check"
    );

    // The whole-lane answer was still cached: a warm pass is a lane hit.
    let rerun = decoder.decode_batch(&chunk, &mut word);
    assert_eq!(rerun, truth);
    assert_eq!(word.cache_stats().dense_hits, 1);
}

/// Rotated surface codes at biased-high physical error rate: the dense
/// tail dominates, and the word path must stay bit-identical to the
/// per-shot reference for every decoder kind.
#[test]
fn surface_code_dense_tail_is_identical_at_high_p() {
    use qccd_circuit::Instruction;
    use qccd_qec::{memory_experiment, rotated_surface_code, MemoryBasis};

    for d in [3usize, 5] {
        let code = rotated_surface_code(d);
        let exp = memory_experiment(&code, d, MemoryBasis::Z);
        let data = code.data_qubits();
        let mut noisy = NoisyCircuit::new();
        noisy.pad_qubits(exp.circuit.num_qubits());
        let first_ancilla = code.ancilla_qubits()[0];
        for instruction in exp.circuit.iter() {
            if let Instruction::Reset(q) = instruction {
                if *q == first_ancilla {
                    for &dq in &data {
                        // Biased high: ~25x the paper's operating point,
                        // forcing >4-defect lanes on most shots.
                        noisy.push_noise(NoiseChannel::Depolarize1 { qubit: dq, p: 0.05 });
                    }
                }
            }
            noisy.push_gate(*instruction);
        }
        for det in exp.circuit.detectors() {
            noisy.add_detector(det.clone());
        }
        for obs in exp.circuit.observables() {
            noisy.add_observable(obs.clone());
        }

        let shots = 1024;
        let sampler = sample_detector_chunks(&noisy, shots, 17, shots).expect("valid annotations");
        let chunk = sampler.sample_chunk(0);
        let dem = DetectorErrorModel::from_circuit(&noisy).expect("valid annotations");
        let graph = DecodingGraph::from_dem(&dem);
        for kind in [
            DecoderKind::UnionFind,
            DecoderKind::GreedyMatching,
            DecoderKind::ExactMatching,
        ] {
            let decoder = kind.build(graph.clone());
            let mut word = DecodeScratch::new();
            let mut per_shot = DecodeScratch::new();
            let mut cold = DecodeScratch::with_memo_config(MemoConfig::disabled());
            let truth = decoder.decode_batch_per_shot(&chunk, &mut cold);
            for pass in 0..2 {
                let from_word = decoder.decode_batch(&chunk, &mut word);
                let reference = decoder.decode_batch_per_shot(&chunk, &mut per_shot);
                assert_eq!(from_word, reference, "d={d} kind={kind:?} pass={pass}");
                assert_eq!(from_word, truth, "d={d} kind={kind:?} pass={pass}");
            }
            assert_eq!(
                comparable(word.cache_stats()),
                comparable(per_shot.cache_stats()),
                "d={d} kind={kind:?}"
            );
            assert!(
                word.cache_stats().dense_misses > 0,
                "high p must push lanes into the dense tier (d={d} kind={kind:?})"
            );
        }
    }
}
