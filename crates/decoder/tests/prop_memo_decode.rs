//! Property-based tests for syndrome memoization.
//!
//! The memo must be a pure cache: for random detector-error models and shot
//! streams, a memoized `decode_batch` must be **bit-identical** to a
//! cache-disabled decode — per chunk, across repeated chunks through one
//! warm scratch, for all three `DecoderKind`s, and end-to-end through the
//! parallel estimator across chunk sizes and thread counts.

use proptest::prelude::*;

use qccd_decoder::{
    estimate_logical_error_rate_with, DecodeScratch, Decoder, DecoderKind, DecodingGraph,
    EstimatorConfig, ExactMatchingDecoder, GreedyMatchingDecoder, MemoConfig, SyndromeChunk,
    UnionFindDecoder,
};
use qccd_sim::{DemError, DetectorErrorModel, NoiseChannel, NoisyCircuit, CANONICAL_BLOCK_SHOTS};

/// A random mostly-graphlike DEM over `n` detectors: a connected chain for
/// matchability plus extra random edges, with random boundary edges and
/// observable crossings.
fn random_dem(
    n: usize,
    probabilities: &[f64],
    extra_edges: &[(usize, usize, bool)],
) -> DetectorErrorModel {
    let mut errors = Vec::new();
    errors.push(DemError {
        probability: probabilities[0],
        detectors: vec![0],
        observables: vec![0],
    });
    for i in 0..n - 1 {
        errors.push(DemError {
            probability: probabilities[(i + 1) % probabilities.len()],
            detectors: vec![i as u32, i as u32 + 1],
            observables: vec![],
        });
    }
    errors.push(DemError {
        probability: probabilities[n % probabilities.len()],
        detectors: vec![n as u32 - 1],
        observables: vec![],
    });
    for &(a, b, crosses) in extra_edges {
        let (a, b) = (a % n, b % n);
        if a == b {
            continue;
        }
        errors.push(DemError {
            probability: probabilities[(a + b) % probabilities.len()],
            detectors: vec![a.min(b) as u32, a.max(b) as u32],
            observables: if crosses { vec![0] } else { vec![] },
        });
    }
    DetectorErrorModel {
        num_detectors: n,
        num_observables: 1,
        errors,
    }
}

fn probabilities() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.001f64..0.3, 4..10)
}

fn extra_edges() -> impl Strategy<Value = Vec<(usize, usize, bool)>> {
    prop::collection::vec((0usize..16, 0usize..16, any::<bool>()), 0..6)
}

/// Random per-shot syndromes over `n` detectors, with enough shots and
/// defect multiplicity to hit the memo (repeats) and overflow its cap.
fn shots(n: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
    prop::collection::vec(
        prop::collection::btree_set(0..n, 0..n).prop_map(|s| s.into_iter().collect()),
        1..40,
    )
}

fn all_decoders(graph: &DecodingGraph) -> Vec<Box<dyn Decoder>> {
    vec![
        Box::new(UnionFindDecoder::new(graph.clone())),
        Box::new(GreedyMatchingDecoder::new(graph.clone())),
        Box::new(ExactMatchingDecoder::new(graph.clone())),
        // A tiny exact cap forces the greedy fallback inside the memoized
        // region (defect sets of ≤4 defects), which must also be cached
        // consistently.
        Box::new(ExactMatchingDecoder::new(graph.clone()).with_max_exact_defects(2)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn memoized_decode_batch_is_bit_identical_to_uncached(
        probabilities in probabilities(),
        extra in extra_edges(),
        syndromes in shots(8),
    ) {
        let n = 8;
        let dem = random_dem(n, &probabilities, &extra);
        let graph = DecodingGraph::from_dem(&dem);
        let packed: Vec<(Vec<usize>, Vec<usize>)> = syndromes
            .iter()
            .map(|fired| (fired.clone(), Vec::new()))
            .collect();
        let chunk = SyndromeChunk::from_shots(n, 1, &packed);

        for decoder in &all_decoders(&graph) {
            let mut cold = DecodeScratch::with_memo_config(MemoConfig::disabled());
            let reference = decoder.decode_batch(&chunk, &mut cold);
            prop_assert_eq!(cold.cache_stats().decoded(), 0, "disabled memo counts nothing");

            // Memoized decode: identical on a cold cache, on a warm cache
            // (second pass over the same chunk), and with a tiny entry cap.
            let mut memoized = DecodeScratch::new();
            for pass in 0..2 {
                let batch = decoder.decode_batch(&chunk, &mut memoized);
                prop_assert_eq!(&batch, &reference, "pass {}", pass);
            }
            let mut capped = DecodeScratch::with_memo_config(
                MemoConfig::default().with_max_entries(2),
            );
            let batch = decoder.decode_batch(&chunk, &mut capped);
            prop_assert_eq!(&batch, &reference);
            prop_assert!(capped.memo_entries() <= 2);
        }
    }

    #[test]
    fn memoized_estimator_is_bit_identical_across_chunks_and_threads(
        seed in 0u64..1000,
        p in 0.01f64..0.1,
        kind in prop::sample::select(vec![
            DecoderKind::UnionFind,
            DecoderKind::GreedyMatching,
            DecoderKind::ExactMatching,
        ]),
    ) {
        let circuit = noisy_parity_circuit(p);
        let shots = 2 * CANONICAL_BLOCK_SHOTS + 777;
        let reference = estimate_logical_error_rate_with(
            &circuit,
            shots,
            seed,
            kind,
            &EstimatorConfig::default()
                .with_chunk_shots(1)
                .with_num_threads(1)
                .with_memo(MemoConfig::disabled()),
        )
        .expect("valid annotations");
        for (chunk_shots, threads, memo) in [
            (CANONICAL_BLOCK_SHOTS, 4, MemoConfig::default()),
            (3 * CANONICAL_BLOCK_SHOTS, 2, MemoConfig::default()),
            (CANONICAL_BLOCK_SHOTS, 2, MemoConfig::default().with_max_defects(1)),
            (2 * CANONICAL_BLOCK_SHOTS, 3, MemoConfig::default().with_max_entries(4)),
        ] {
            let estimate = estimate_logical_error_rate_with(
                &circuit,
                shots,
                seed,
                kind,
                &EstimatorConfig::default()
                    .with_chunk_shots(chunk_shots)
                    .with_num_threads(threads)
                    .with_memo(memo),
            )
            .expect("valid annotations");
            prop_assert_eq!(estimate.shots, reference.shots);
            prop_assert_eq!(
                estimate.failures,
                reference.failures,
                "decoder={:?} chunk_shots={} threads={} memo={:?}",
                kind,
                chunk_shots,
                threads,
                memo
            );
        }
    }
}

/// A three-qubit parity-check circuit with bit-flip noise; small enough that
/// the property test stays fast at tens of thousands of shots.
fn noisy_parity_circuit(p: f64) -> NoisyCircuit {
    use qccd_circuit::{Detector, Instruction, LogicalObservable, MeasurementRef, QubitId};
    let q = |i: u32| QubitId::new(i);
    let mref = |i: u32, occurrence: u32| MeasurementRef::new(q(i), occurrence);
    let mut c = NoisyCircuit::new();
    for i in 0..3 {
        c.push_gate(Instruction::Reset(q(i)));
    }
    for round in 0..2u32 {
        c.push_gate(Instruction::Reset(q(2)));
        c.push_noise(NoiseChannel::BitFlip { qubit: q(0), p });
        c.push_gate(Instruction::Cnot {
            control: q(0),
            target: q(2),
        });
        c.push_gate(Instruction::Cnot {
            control: q(1),
            target: q(2),
        });
        c.push_gate(Instruction::Measure(q(2)));
        if round == 0 {
            c.add_detector(Detector::new(vec![mref(2, 0)]));
        } else {
            c.add_detector(Detector::new(vec![mref(2, 0), mref(2, 1)]));
        }
    }
    c.push_gate(Instruction::Measure(q(0)));
    c.add_observable(LogicalObservable::new(vec![mref(0, 0)]));
    c
}
