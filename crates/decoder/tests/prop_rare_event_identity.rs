//! Property battery for the importance-sampled (rare-event) estimator.
//!
//! The biased estimate must be **bit-identical** — same decoded shot count,
//! failure count, and the exact f64 bits of the rate and its standard error
//! — no matter how the pipeline is scheduled: across chunk sizes, thread
//! counts, and the word-parallel vs per-shot decode paths. The weighted
//! sums fold block by block in canonical block order, so none of those
//! knobs may move a single bit. A deterministic companion test pins the
//! statistical contract: the reweighted estimate agrees with plain Monte
//! Carlo within two combined standard errors on an overlap point.

use proptest::prelude::*;

use qccd_circuit::{Instruction, QubitId};
use qccd_decoder::{estimate_logical_error_rate_with, DecoderKind, EstimatorConfig, MemoConfig};
use qccd_qec::{memory_experiment, repetition_code, MemoryBasis};
use qccd_sim::{NoiseChannel, NoisyCircuit, CANONICAL_BLOCK_SHOTS};

/// A repetition-code memory experiment with depolarizing noise on every
/// data qubit at the start of each round — the same workload the estimator
/// unit tests use, small enough for a property battery yet with a real
/// logical failure mechanism.
fn noisy_repetition_memory(distance: usize, rounds: usize, p: f64) -> NoisyCircuit {
    let code = repetition_code(distance);
    let exp = memory_experiment(&code, rounds, MemoryBasis::Z);
    let data: Vec<QubitId> = code.data_qubits();
    let mut noisy = NoisyCircuit::new();
    noisy.pad_qubits(exp.circuit.num_qubits());
    let first_ancilla = code.ancilla_qubits()[0];
    for instruction in exp.circuit.iter() {
        if let Instruction::Reset(q) = instruction {
            if *q == first_ancilla {
                for &d in &data {
                    noisy.push_noise(NoiseChannel::Depolarize1 { qubit: d, p });
                }
            }
        }
        noisy.push_gate(*instruction);
    }
    for detector in exp.circuit.detectors() {
        noisy.add_detector(detector.clone());
    }
    for observable in exp.circuit.observables() {
        noisy.add_observable(observable.clone());
    }
    noisy
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The importance-sampled estimate is a pure function of
    /// `(circuit, shots, seed, bias)`: chunk size, thread count, memo
    /// configuration, and the word-vs-per-shot decode path must all
    /// reproduce the reference estimate bit for bit.
    #[test]
    fn prop_importance_sampled_estimate_is_schedule_invariant(
        seed in 0u64..500,
        p in 0.01f64..0.08,
        bias in 1.0f64..6.0,
        kind in prop::sample::select(vec![
            DecoderKind::UnionFind,
            DecoderKind::GreedyMatching,
            DecoderKind::ExactMatching,
        ]),
    ) {
        let circuit = noisy_repetition_memory(3, 2, p);
        let shots = 2 * CANONICAL_BLOCK_SHOTS + 777;
        let base = EstimatorConfig::default().with_importance_bias(bias);
        let reference = estimate_logical_error_rate_with(
            &circuit, shots, seed, kind,
            &base.with_chunk_shots(CANONICAL_BLOCK_SHOTS).with_num_threads(1),
        ).expect("valid annotations");

        for (chunk_shots, threads, word, memo) in [
            (CANONICAL_BLOCK_SHOTS, 4, true, MemoConfig::default()),
            (3 * CANONICAL_BLOCK_SHOTS, 2, true, MemoConfig::disabled()),
            (usize::MAX, 3, true, MemoConfig::default().with_max_defects(1)),
            (2 * CANONICAL_BLOCK_SHOTS, 2, false, MemoConfig::default()),
        ] {
            let variant = estimate_logical_error_rate_with(
                &circuit, shots, seed, kind,
                &base.with_chunk_shots(chunk_shots)
                    .with_num_threads(threads)
                    .with_word_decode(word)
                    .with_memo(memo),
            ).expect("valid annotations");
            prop_assert_eq!(
                (variant.shots, variant.failures),
                (reference.shots, reference.failures),
                "chunk_shots={} threads={} word={}", chunk_shots, threads, word
            );
            prop_assert_eq!(
                variant.logical_error_rate.to_bits(),
                reference.logical_error_rate.to_bits(),
                "weighted rate must not depend on scheduling \
                 (chunk_shots={} threads={} word={})",
                chunk_shots, threads, word
            );
            prop_assert_eq!(
                variant.std_error.to_bits(),
                reference.std_error.to_bits(),
                "weighted error bar must not depend on scheduling \
                 (chunk_shots={} threads={} word={})",
                chunk_shots, threads, word
            );
        }
    }
}

/// The statistical contract at a pinned overlap point: the reweighted
/// importance-sampled estimate agrees with plain Monte Carlo within two
/// combined standard errors, while decoding several times fewer failures'
/// worth of shots. Fully deterministic (fixed seed), so this is a golden
/// bound, not a flaky statistical one.
#[test]
fn importance_sampling_matches_plain_mc_within_two_sigma() {
    let circuit = noisy_repetition_memory(5, 2, 0.02);
    let shots = 16 * CANONICAL_BLOCK_SHOTS;
    let seed = 21;
    let plain = estimate_logical_error_rate_with(
        &circuit,
        shots,
        seed,
        DecoderKind::UnionFind,
        &EstimatorConfig::default(),
    )
    .expect("valid annotations");
    let biased = estimate_logical_error_rate_with(
        &circuit,
        shots,
        seed,
        DecoderKind::UnionFind,
        &EstimatorConfig::default().with_importance_bias(5.0),
    )
    .expect("valid annotations");
    assert!(plain.failures > 0, "plain MC must converge at this point");
    assert!(
        biased.failures > plain.failures,
        "the biased channel must make failures more frequent ({} vs {})",
        biased.failures,
        plain.failures
    );
    let gap = (plain.logical_error_rate - biased.logical_error_rate).abs();
    let sigma = plain.std_error.hypot(biased.std_error);
    assert!(
        gap <= 2.0 * sigma,
        "importance-sampled estimate must agree with plain MC within 2 sigma: \
         gap {gap:.3e}, sigma {sigma:.3e}"
    );
}
