//! Property battery for the word-parallel batch decode path.
//!
//! `decode_batch` (word-parallel triage) must be **bit-identical** to
//! `decode_batch_per_shot` (the per-shot reference loop) — same prediction
//! bits *and* the same hit/miss/uncacheable counters — for random decoding
//! graphs and shot streams, for all decoder kinds, with the memo on, off,
//! capped or defect-limited, with and without a shared warm snapshot; and
//! the estimator must produce identical estimates (including early-stop
//! points) whichever path decodes its chunks, across chunk sizes and thread
//! counts. A non-random sweep pins the same contract on real rotated
//! surface codes at distances {3, 5, 7}.

use proptest::prelude::*;

use qccd_decoder::{
    estimate_logical_error_rate_with, CacheStats, DecodeScratch, Decoder, DecoderKind,
    DecodingGraph, EstimatorConfig, ExactMatchingDecoder, GreedyMatchingDecoder, MemoConfig,
    SyndromeChunk, UnionFindDecoder,
};
use qccd_sim::{
    sample_detector_chunks, DemError, DetectorErrorModel, NoiseChannel, NoisyCircuit,
    CANONICAL_BLOCK_SHOTS,
};

/// A random mostly-graphlike DEM over `n` detectors: a connected chain for
/// matchability plus extra random edges, with random boundary edges and
/// observable crossings.
fn random_dem(
    n: usize,
    probabilities: &[f64],
    extra_edges: &[(usize, usize, bool)],
) -> DetectorErrorModel {
    let mut errors = Vec::new();
    errors.push(DemError {
        probability: probabilities[0],
        detectors: vec![0],
        observables: vec![0],
    });
    for i in 0..n - 1 {
        errors.push(DemError {
            probability: probabilities[(i + 1) % probabilities.len()],
            detectors: vec![i as u32, i as u32 + 1],
            observables: vec![],
        });
    }
    errors.push(DemError {
        probability: probabilities[n % probabilities.len()],
        detectors: vec![n as u32 - 1],
        observables: vec![],
    });
    for &(a, b, crosses) in extra_edges {
        let (a, b) = (a % n, b % n);
        if a == b {
            continue;
        }
        errors.push(DemError {
            probability: probabilities[(a + b) % probabilities.len()],
            detectors: vec![a.min(b) as u32, a.max(b) as u32],
            observables: if crosses { vec![0] } else { vec![] },
        });
    }
    DetectorErrorModel {
        num_detectors: n,
        num_observables: 1,
        errors,
    }
}

fn probabilities() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.001f64..0.3, 4..10)
}

fn extra_edges() -> impl Strategy<Value = Vec<(usize, usize, bool)>> {
    prop::collection::vec((0usize..16, 0usize..16, any::<bool>()), 0..6)
}

/// Random per-shot syndromes over `n` detectors. Up to 150 shots so chunks
/// span multiple words, with word-boundary lanes and ragged tails arising
/// naturally; defect multiplicities range from quiet to above the memo cap.
fn shots(n: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
    prop::collection::vec(
        prop::collection::btree_set(0..n, 0..n).prop_map(|s| s.into_iter().collect()),
        1..150,
    )
}

fn all_decoders(graph: &DecodingGraph) -> Vec<Box<dyn Decoder>> {
    vec![
        Box::new(UnionFindDecoder::new(graph.clone())),
        Box::new(GreedyMatchingDecoder::new(graph.clone())),
        Box::new(ExactMatchingDecoder::new(graph.clone())),
        Box::new(ExactMatchingDecoder::new(graph.clone()).with_max_exact_defects(2)),
    ]
}

/// The stats components both paths must agree on (the word path
/// additionally fills the `*_words` triage counters, which the per-shot
/// loop leaves at zero by construction).
fn comparable(stats: CacheStats) -> (u64, u64, u64, u64) {
    (stats.hits, stats.misses, stats.uncacheable, stats.prefilled)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_word_parallel_identity(
        probabilities in probabilities(),
        extra in extra_edges(),
        syndromes in shots(8),
    ) {
        let n = 8;
        let dem = random_dem(n, &probabilities, &extra);
        let graph = DecodingGraph::from_dem(&dem);
        let packed: Vec<(Vec<usize>, Vec<usize>)> = syndromes
            .iter()
            .map(|fired| (fired.clone(), Vec::new()))
            .collect();
        let chunk = SyndromeChunk::from_shots(n, 1, &packed);
        let memo_configs = [
            MemoConfig::default(),
            MemoConfig::disabled(),
            MemoConfig::default().with_max_defects(1),
            MemoConfig::default().with_max_entries(3),
        ];

        for decoder in &all_decoders(&graph) {
            for memo in memo_configs {
                let mut per_shot = DecodeScratch::with_memo_config(memo);
                let reference = decoder.decode_batch_per_shot(&chunk, &mut per_shot);

                // Cold word path, then a warm second pass over the same
                // chunk through the same scratch.
                let mut word = DecodeScratch::with_memo_config(memo);
                for pass in 0..2 {
                    let batch = decoder.decode_batch(&chunk, &mut word);
                    prop_assert_eq!(&batch, &reference, "pass {}", pass);
                }
                prop_assert_eq!(
                    comparable(word.cache_stats()),
                    {
                        // Warm the per-shot reference a second time too so
                        // the accumulated counters stay comparable.
                        decoder.decode_batch_per_shot(&chunk, &mut per_shot);
                        comparable(per_shot.cache_stats())
                    },
                    "hit/miss accounting must match the per-shot loop"
                );
                prop_assert_eq!(word.memo_entries(), per_shot.memo_entries());

                // A shared warm snapshot adopted into a fresh scratch must
                // not change a single bit either.
                if let Some(snapshot) = {
                    let mut warm = DecodeScratch::with_memo_config(memo);
                    decoder.warm_memo_snapshot(chunk.num_detectors(), &mut warm)
                } {
                    let mut adopted = DecodeScratch::with_memo_config(memo);
                    adopted.adopt_memo_snapshot(&snapshot);
                    let batch = decoder.decode_batch(&chunk, &mut adopted);
                    prop_assert_eq!(&batch, &reference, "adopted snapshot");
                }
            }
        }
    }

    #[test]
    fn estimator_is_identical_on_word_and_per_shot_paths(
        seed in 0u64..1000,
        p in 0.01f64..0.1,
        kind in prop::sample::select(vec![
            DecoderKind::UnionFind,
            DecoderKind::GreedyMatching,
            DecoderKind::ExactMatching,
        ]),
        early_stop in any::<bool>(),
    ) {
        let circuit = noisy_parity_circuit(p);
        let shots = 2 * CANONICAL_BLOCK_SHOTS + 777;
        for (chunk_shots, threads, memo) in [
            (CANONICAL_BLOCK_SHOTS, 4, MemoConfig::default()),
            (3 * CANONICAL_BLOCK_SHOTS, 2, MemoConfig::disabled()),
            (CANONICAL_BLOCK_SHOTS, 2, MemoConfig::default().with_max_defects(1)),
        ] {
            let mut base = EstimatorConfig::default()
                .with_chunk_shots(chunk_shots)
                .with_num_threads(threads)
                .with_memo(memo);
            if early_stop {
                // Identical early-stop points are part of the contract.
                base = base.with_max_failures(25);
            }
            let word = estimate_logical_error_rate_with(
                &circuit, shots, seed, kind,
                &base.with_word_decode(true),
            ).expect("valid annotations");
            let per_shot = estimate_logical_error_rate_with(
                &circuit, shots, seed, kind,
                &base.with_word_decode(false),
            ).expect("valid annotations");
            prop_assert_eq!(
                (word.shots, word.failures),
                (per_shot.shots, per_shot.failures),
                "chunk_shots={} threads={} memo={:?} early_stop={}",
                chunk_shots, threads, memo, early_stop
            );
            // Sharing the warm snapshot must not move the estimate either.
            let unshared = estimate_logical_error_rate_with(
                &circuit, shots, seed, kind,
                &base.with_shared_memo(false),
            ).expect("valid annotations");
            prop_assert_eq!((word.shots, word.failures), (unshared.shots, unshared.failures));
        }
    }
}

/// Rotated surface codes at the paper's sampled distances: the word path
/// must match the per-shot path bit for bit on real syndrome streams for
/// every decoder kind.
#[test]
fn surface_code_chunks_decode_identically_at_d3_d5_d7() {
    use qccd_circuit::Instruction;
    use qccd_qec::{memory_experiment, rotated_surface_code, MemoryBasis};

    for d in [3usize, 5, 7] {
        let code = rotated_surface_code(d);
        let exp = memory_experiment(&code, d, MemoryBasis::Z);
        let data = code.data_qubits();
        let mut noisy = NoisyCircuit::new();
        noisy.pad_qubits(exp.circuit.num_qubits());
        let first_ancilla = code.ancilla_qubits()[0];
        for instruction in exp.circuit.iter() {
            if let Instruction::Reset(q) = instruction {
                if *q == first_ancilla {
                    for &dq in &data {
                        noisy.push_noise(NoiseChannel::Depolarize1 { qubit: dq, p: 0.01 });
                    }
                }
            }
            noisy.push_gate(*instruction);
        }
        for det in exp.circuit.detectors() {
            noisy.add_detector(det.clone());
        }
        for obs in exp.circuit.observables() {
            noisy.add_observable(obs.clone());
        }

        let shots = 2048;
        let sampler = sample_detector_chunks(&noisy, shots, 11, shots).expect("valid annotations");
        let chunk = sampler.sample_chunk(0);
        let dem = DetectorErrorModel::from_circuit(&noisy).expect("valid annotations");
        let graph = DecodingGraph::from_dem(&dem);
        for kind in [
            DecoderKind::UnionFind,
            DecoderKind::GreedyMatching,
            DecoderKind::ExactMatching,
        ] {
            let decoder = kind.build(graph.clone());
            let mut word = DecodeScratch::new();
            let mut per_shot = DecodeScratch::new();
            let from_word = decoder.decode_batch(&chunk, &mut word);
            let reference = decoder.decode_batch_per_shot(&chunk, &mut per_shot);
            assert_eq!(from_word, reference, "d={d} kind={kind:?}");
            assert_eq!(
                comparable(word.cache_stats()),
                comparable(per_shot.cache_stats()),
                "d={d} kind={kind:?}"
            );
            let stats = word.cache_stats();
            assert_eq!(
                stats.words(),
                (shots as u64).div_ceil(64),
                "every word is triaged exactly once (d={d} kind={kind:?})"
            );
        }
    }
}

/// The decoder telemetry hook at full sampling is a pure observer: with it
/// installed, the word path still matches the per-shot path bit for bit
/// (predictions and counters), and the registry records the batch traffic
/// it watched.
#[test]
fn telemetry_hook_preserves_word_parallel_identity() {
    use qccd_decoder::{install_telemetry, uninstall_telemetry};
    use qccd_telemetry::{Registry, TelemetryConfig};

    let circuit = noisy_parity_circuit(0.08);
    let shots = 4096;
    let sampler = sample_detector_chunks(&circuit, shots, 23, shots).expect("valid annotations");
    let chunk = sampler.sample_chunk(0);
    let dem = DetectorErrorModel::from_circuit(&circuit).expect("valid annotations");
    let graph = DecodingGraph::from_dem(&dem);

    // Reference run without the hook.
    let decoder = DecoderKind::UnionFind.build(graph.clone());
    let mut scratch = DecodeScratch::new();
    let reference = decoder.decode_batch(&chunk, &mut scratch);
    let reference_stats = comparable(scratch.cache_stats());

    let registry = Registry::new(TelemetryConfig::full_sampling());
    install_telemetry(&registry);
    let mut word = DecodeScratch::new();
    let mut per_shot = DecodeScratch::new();
    let observed = decoder.decode_batch(&chunk, &mut word);
    let observed_per_shot = decoder.decode_batch_per_shot(&chunk, &mut per_shot);
    uninstall_telemetry();

    assert_eq!(observed, reference, "hooked word path changed predictions");
    assert_eq!(
        observed_per_shot, reference,
        "hooked per-shot path diverged"
    );
    assert_eq!(comparable(word.cache_stats()), reference_stats);
    assert_eq!(comparable(per_shot.cache_stats()), reference_stats);

    let snapshot = registry.snapshot();
    assert_eq!(
        snapshot.counter("decoder.stage.word_decode_items"),
        shots as u64
    );
    assert_eq!(
        snapshot.counter("decoder.stage.per_shot_decode_items"),
        shots as u64
    );
    assert!(snapshot.counter("decoder.stage.word_decode_calls") > 0);
    assert!(
        snapshot
            .histogram("decoder.stage.word_decode_us")
            .map(|h| h.count)
            .unwrap_or(0)
            > 0,
        "full sampling records batch durations"
    );
    // The hook also mirrors the memo accounting it saw.
    let mirrored = snapshot.counter("decoder.memo_hits")
        + snapshot.counter("decoder.memo_misses")
        + snapshot.counter("decoder.uncacheable");
    assert!(mirrored > 0, "memo accounting was not mirrored");
}

/// A three-qubit parity-check circuit with bit-flip noise; small enough that
/// the property test stays fast at tens of thousands of shots.
fn noisy_parity_circuit(p: f64) -> NoisyCircuit {
    use qccd_circuit::{Detector, Instruction, LogicalObservable, MeasurementRef, QubitId};
    let q = |i: u32| QubitId::new(i);
    let mref = |i: u32, occurrence: u32| MeasurementRef::new(q(i), occurrence);
    let mut c = NoisyCircuit::new();
    for i in 0..3 {
        c.push_gate(Instruction::Reset(q(i)));
    }
    for round in 0..2u32 {
        c.push_gate(Instruction::Reset(q(2)));
        c.push_noise(NoiseChannel::BitFlip { qubit: q(0), p });
        c.push_gate(Instruction::Cnot {
            control: q(0),
            target: q(2),
        });
        c.push_gate(Instruction::Cnot {
            control: q(1),
            target: q(2),
        });
        c.push_gate(Instruction::Measure(q(2)));
        if round == 0 {
            c.add_detector(Detector::new(vec![mref(2, 0)]));
        } else {
            c.add_detector(Detector::new(vec![mref(2, 0), mref(2, 1)]));
        }
    }
    c.push_gate(Instruction::Measure(q(0)));
    c.add_observable(LogicalObservable::new(vec![mref(0, 0)]));
    c
}
