//! Adversarial edge cases for the word-parallel batch decode path: words
//! that are entirely dense, defect lanes straddling the 64-shot word
//! boundary, ragged final words, zero-shot chunks, shots above the memo cap
//! routed to the per-shot fallback, and shared-snapshot adoption — each with
//! exact `CacheStats` word/sparse/dense counter assertions and bit-identity
//! against the per-shot reference loop.

use qccd_decoder::{
    CacheStats, DecodeScratch, Decoder, DecodingGraph, GreedyMatchingDecoder, MemoConfig,
    SyndromeChunk, UnionFindDecoder,
};
use qccd_sim::{DemError, DetectorErrorModel};

/// A chain decoding graph: `n` detectors in a line, boundary edges at both
/// ends; the right boundary edge flips the observable.
fn chain_graph(n: usize) -> DecodingGraph {
    let mut errors = vec![DemError {
        probability: 0.01,
        detectors: vec![0],
        observables: vec![],
    }];
    for i in 0..n - 1 {
        errors.push(DemError {
            probability: 0.01,
            detectors: vec![i as u32, i as u32 + 1],
            observables: vec![],
        });
    }
    errors.push(DemError {
        probability: 0.01,
        detectors: vec![n as u32 - 1],
        observables: vec![0],
    });
    DecodingGraph::from_dem(&DetectorErrorModel {
        num_detectors: n,
        num_observables: 1,
        errors,
    })
}

fn chunk_of(n: usize, shots: &[Vec<usize>]) -> SyndromeChunk {
    let packed: Vec<(Vec<usize>, Vec<usize>)> = shots
        .iter()
        .map(|fired| (fired.clone(), Vec::new()))
        .collect();
    SyndromeChunk::from_shots(n, 1, &packed)
}

/// Decodes on both paths, asserts bit-identity, and returns the word path's
/// stats.
fn decode_both(
    decoder: &dyn Decoder,
    chunk: &SyndromeChunk,
    memo: MemoConfig,
) -> (CacheStats, CacheStats) {
    let mut word = DecodeScratch::with_memo_config(memo);
    let mut per_shot = DecodeScratch::with_memo_config(memo);
    let from_word = decoder.decode_batch(chunk, &mut word);
    let reference = decoder.decode_batch_per_shot(chunk, &mut per_shot);
    assert_eq!(from_word, reference, "word path must match per-shot path");
    (word.cache_stats(), per_shot.cache_stats())
}

#[test]
fn all_dense_words_route_every_lane_to_the_fallback() {
    let decoder = UnionFindDecoder::new(chain_graph(8));
    // A full 64-lane word where every lane carries 5 defects (> cap 4).
    let shots = vec![vec![0, 1, 2, 3, 4]; 64];
    let chunk = chunk_of(8, &shots);
    let (stats, reference) = decode_both(&decoder, &chunk, MemoConfig::default());
    assert_eq!(
        stats,
        CacheStats {
            uncacheable: 64,
            prefilled: 8,
            dense_words: 1,
            dense_hits: 63, // 64 identical lanes: one miss, the rest hit
            dense_misses: 1,
            ..CacheStats::default()
        }
    );
    assert_eq!((reference.hits, reference.misses), (0, 0));
    assert_eq!(reference.uncacheable, 64);
}

#[test]
fn defects_straddling_the_word_boundary_stay_in_their_word() {
    let decoder = UnionFindDecoder::new(chain_graph(9));
    // 66 shots: lane 63 of word 0 and lanes 0–1 of word 1 are noisy, with a
    // pair right on the boundary.
    let mut shots = vec![vec![]; 66];
    shots[62] = vec![3, 4];
    shots[63] = vec![7];
    shots[64] = vec![7];
    shots[65] = vec![2, 3];
    let chunk = chunk_of(9, &shots);
    assert_eq!(chunk.words(), 2);
    let (stats, _) = decode_both(&decoder, &chunk, MemoConfig::default());
    assert_eq!(
        stats,
        CacheStats {
            hits: 2,   // the two prefilled singles, one per word
            misses: 2, // the two distinct pairs
            prefilled: 9,
            sparse_words: 2,
            word_merged: 2,
            ..CacheStats::default()
        }
    );
}

#[test]
fn ragged_final_words_mask_invalid_lanes() {
    let decoder = UnionFindDecoder::new(chain_graph(6));
    // 70 shots (70 % 64 = 6 valid lanes in the final word); the last valid
    // lane is noisy, everything beyond it must be ignored.
    let mut shots = vec![vec![]; 70];
    shots[0] = vec![2];
    shots[69] = vec![5];
    let chunk = chunk_of(6, &shots);
    let (stats, _) = decode_both(&decoder, &chunk, MemoConfig::default());
    assert_eq!(
        stats,
        CacheStats {
            hits: 2,
            prefilled: 6,
            sparse_words: 2,
            word_merged: 2,
            ..CacheStats::default()
        }
    );
}

#[test]
fn zero_shot_chunks_decode_to_zero_words() {
    let decoder = UnionFindDecoder::new(chain_graph(5));
    let chunk = chunk_of(5, &[]);
    assert_eq!(chunk.num_shots(), 0);
    let mut scratch = DecodeScratch::new();
    let batch = decoder.decode_batch(&chunk, &mut scratch);
    assert_eq!(batch.num_shots(), 0);
    assert_eq!(batch.words(), 0);
    let stats = scratch.cache_stats();
    assert_eq!(stats.words(), 0, "no words to triage");
    assert_eq!(stats.decoded(), 0);
    assert_eq!(stats.prefilled, 5, "the prefill still warms the memo");
    // The per-shot path agrees on the degenerate chunk.
    let mut per_shot = DecodeScratch::new();
    assert_eq!(batch, decoder.decode_batch_per_shot(&chunk, &mut per_shot));
}

#[test]
fn above_cap_lanes_fall_back_while_dense_word_singles_still_merge() {
    let decoder = UnionFindDecoder::new(chain_graph(10));
    // One word mixing a quiet lane, two singles, a pair and a 7-defect lane
    // (above even the key capacity of 6): the oversized lane makes the word
    // dense and decodes uncacheable on the fallback path, the pair takes a
    // per-shot miss, and the singles are still answered by the word merge.
    let shots = vec![
        vec![],
        vec![4],
        (0..7).collect::<Vec<_>>(),
        vec![8],
        vec![5, 6],
    ];
    let chunk = chunk_of(10, &shots);
    let (stats, _) = decode_both(&decoder, &chunk, MemoConfig::default());
    assert_eq!(
        stats,
        CacheStats {
            hits: 2,
            misses: 1,
            uncacheable: 1,
            prefilled: 10,
            dense_words: 1,
            word_merged: 2,
            dense_misses: 1, // the 7-defect lane misses the dense LRU
            ..CacheStats::default()
        }
    );
}

#[test]
fn quiet_sparse_and_dense_words_are_counted_exactly() {
    let decoder = UnionFindDecoder::new(chain_graph(8));
    // Word 0: quiet. Word 1: sparse (singles + a pair). Word 2: dense.
    let mut shots = vec![vec![]; 130];
    shots[64] = vec![1];
    shots[65] = vec![1];
    shots[66] = vec![2, 3];
    shots[128] = vec![0, 1, 2, 3, 4];
    shots[129] = vec![6];
    let chunk = chunk_of(8, &shots);
    let (stats, _) = decode_both(&decoder, &chunk, MemoConfig::default());
    assert_eq!(
        stats,
        CacheStats {
            hits: 3,        // 3 merged singles (one of them in the dense word)
            misses: 1,      // the pair
            uncacheable: 1, // the 5-defect lane
            prefilled: 8,
            quiet_words: 1,
            sparse_words: 1,
            dense_words: 1,
            word_merged: 3,
            dense_hits: 0,
            dense_misses: 1, // the 5-defect lane misses the dense LRU once
            dense_evictions: 0,
            cluster_lanes: 0, // contiguous defects form a single cluster
            cluster_components: 0,
            cluster_conflicts: 0,
        }
    );
    assert_eq!(stats.words(), 3);
}

#[test]
fn tighter_memo_caps_move_the_sparse_dense_boundary() {
    let decoder = UnionFindDecoder::new(chain_graph(8));
    // Pairs only: sparse under the default cap, dense when the cap is 1.
    let shots = vec![vec![1, 2], vec![4, 5]];
    let chunk = chunk_of(8, &shots);
    let (default_stats, _) = decode_both(&decoder, &chunk, MemoConfig::default());
    assert_eq!(default_stats.sparse_words, 1);
    assert_eq!(default_stats.dense_words, 0);
    assert_eq!(default_stats.misses, 2);

    let capped = MemoConfig::default().with_max_defects(1);
    let (capped_stats, _) = decode_both(&decoder, &chunk, capped);
    assert_eq!(capped_stats.sparse_words, 0);
    assert_eq!(capped_stats.dense_words, 1);
    assert_eq!(
        capped_stats.uncacheable, 2,
        "pairs above the cap decode directly"
    );
}

#[test]
fn disabled_memo_leaves_every_counter_untouched_on_the_word_path() {
    let decoder = UnionFindDecoder::new(chain_graph(6));
    let shots = vec![vec![2], vec![], vec![1, 2, 3, 4, 5]];
    let chunk = chunk_of(6, &shots);
    let (stats, _) = decode_both(&decoder, &chunk, MemoConfig::disabled());
    assert_eq!(stats, CacheStats::default(), "disabled memo counts nothing");
}

#[test]
fn adopted_snapshots_answer_the_word_merge_and_report_shared_prefill() {
    let decoder = UnionFindDecoder::new(chain_graph(7));
    let mut warm = DecodeScratch::new();
    let snapshot = decoder
        .warm_memo_snapshot(7, &mut warm)
        .expect("memoizing decoder warms");
    assert_eq!(snapshot.len(), 7, "one single-defect entry per detector");

    let mut worker = DecodeScratch::new();
    worker.adopt_memo_snapshot(&snapshot);
    let chunk = chunk_of(7, &[vec![3], vec![6], vec![0]]);
    let batch = decoder.decode_batch(&chunk, &mut worker);
    assert_eq!(
        worker.cache_stats(),
        CacheStats {
            hits: 3,
            prefilled: 7, // carried over from the shared warm pass
            sparse_words: 1,
            word_merged: 3,
            ..CacheStats::default()
        }
    );
    for (shot, fired) in [vec![3], vec![6], vec![0]].iter().enumerate() {
        assert_eq!(batch.shot_prediction(shot), decoder.decode(fired));
    }
}

#[test]
fn adopting_a_snapshot_rekeys_a_scratch_owned_by_another_decoder() {
    let graph = chain_graph(9);
    let uf = UnionFindDecoder::new(graph.clone());
    let greedy = GreedyMatchingDecoder::new(graph);
    let chunk = chunk_of(9, &[vec![0], vec![4, 5], vec![8]]);

    // Warm a scratch with the greedy decoder, then adopt the union-find
    // snapshot into it: predictions must come from union-find, never from
    // the stale greedy entries.
    let mut scratch = DecodeScratch::new();
    greedy.decode_batch(&chunk, &mut scratch);
    let mut warm = DecodeScratch::new();
    let snapshot = uf.warm_memo_snapshot(9, &mut warm).expect("uf warms");
    scratch.adopt_memo_snapshot(&snapshot);
    let adopted = uf.decode_batch(&chunk, &mut scratch);

    let mut cold = DecodeScratch::with_memo_config(MemoConfig::disabled());
    assert_eq!(adopted, uf.decode_batch(&chunk, &mut cold));
    assert_eq!(scratch.cache_stats().prefilled, 9);
}

#[test]
fn entry_capped_singles_fall_back_per_lane_without_losing_identity() {
    let decoder = UnionFindDecoder::new(chain_graph(8));
    // Cap of 1 entry: only detector 0's single is prefilled, so the word
    // merge answers its lanes while the other singles take per-shot misses
    // whose inserts are dropped at the cap — bit-identical throughout.
    let memo = MemoConfig::default().with_max_entries(1);
    let shots = vec![vec![0], vec![1], vec![1], vec![0]];
    let chunk = chunk_of(8, &shots);
    let (stats, reference) = decode_both(&decoder, &chunk, memo);
    assert_eq!(
        stats,
        CacheStats {
            hits: 2,
            misses: 2,
            prefilled: 1,
            sparse_words: 1,
            word_merged: 2,
            ..CacheStats::default()
        }
    );
    assert_eq!((reference.hits, reference.misses), (2, 2));
}
