//! The QCCD device model.
//!
//! A [`Device`] is the abstract QCCD view used throughout the paper
//! (Figure 1(c)): a set of *traps* that hold ion chains and execute gates,
//! *junctions* that route ions between transport paths, and *segments* — the
//! shuttling paths connecting traps and junctions. Together the traps and
//! junctions form the nodes of the ion-routing graph and the segments form
//! its edges.
//!
//! Hardware constraints represented here (§4.3):
//!
//! * each trap holds at most `capacity` ions at any time,
//! * each junction holds at most one ion,
//! * each segment holds at most one ion.

use std::collections::{BTreeMap, HashSet, VecDeque};

use serde::{Deserialize, Serialize};

use crate::{JunctionId, NodeId, SegmentId, TrapId};

/// A trap: holds a linear chain of up to `capacity` ions and executes gates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Trap {
    /// Identifier.
    pub id: TrapId,
    /// Physical position used for geometry-aware mapping.
    pub position: (f64, f64),
    /// Maximum number of ions the trap can hold.
    pub capacity: usize,
}

/// A junction: a crossing point between transport segments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Junction {
    /// Identifier.
    pub id: JunctionId,
    /// Physical position used for geometry-aware mapping.
    pub position: (f64, f64),
}

/// A shuttling segment connecting two nodes of the routing graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// Identifier.
    pub id: SegmentId,
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
}

impl Segment {
    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of this segment.
    pub fn other_end(&self, from: NodeId) -> NodeId {
        if from == self.a {
            self.b
        } else if from == self.b {
            self.a
        } else {
            panic!("{from} is not an endpoint of segment {}", self.id)
        }
    }
}

/// The communication topology family of a device (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TopologyKind {
    /// Traps on the edges of a junction lattice (the paper's recommended
    /// choice; matches the surface code's structure).
    Grid,
    /// Traps in a chain connected by direct segments (pessimistic case,
    /// Quantinuum-racetrack-like). A single-trap device is the degenerate
    /// "single ion chain" configuration.
    Linear,
    /// Every trap connected to one central n-way junction (optimistic,
    /// MUSIQC-like all-to-all switch).
    Switch,
}

impl std::fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyKind::Grid => write!(f, "grid"),
            TopologyKind::Linear => write!(f, "linear"),
            TopologyKind::Switch => write!(f, "switch"),
        }
    }
}

/// Errors produced when constructing or validating a [`Device`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// The device has no traps.
    NoTraps,
    /// A trap capacity is too small to be usable.
    CapacityTooSmall {
        /// The offending trap.
        trap: TrapId,
        /// Its capacity.
        capacity: usize,
    },
    /// A segment references a node that does not exist.
    DanglingSegment(SegmentId),
    /// The routing graph is not connected.
    Disconnected,
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::NoTraps => write!(f, "device has no traps"),
            DeviceError::CapacityTooSmall { trap, capacity } => {
                write!(
                    f,
                    "trap {trap} has capacity {capacity}, which is below the minimum of 1"
                )
            }
            DeviceError::DanglingSegment(s) => {
                write!(f, "segment {s} references a node that does not exist")
            }
            DeviceError::Disconnected => write!(f, "the routing graph is not connected"),
        }
    }
}

impl std::error::Error for DeviceError {}

/// The abstract QCCD device: routing graph plus trap capacities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Device {
    kind: TopologyKind,
    traps: Vec<Trap>,
    junctions: Vec<Junction>,
    segments: Vec<Segment>,
    adjacency: BTreeMap<NodeId, Vec<(SegmentId, NodeId)>>,
}

impl Device {
    /// Assembles a device from parts, building the adjacency structure.
    ///
    /// # Errors
    ///
    /// Returns a [`DeviceError`] if the description is inconsistent (no
    /// traps, dangling segments, zero capacities or a disconnected routing
    /// graph).
    pub fn new(
        kind: TopologyKind,
        traps: Vec<Trap>,
        junctions: Vec<Junction>,
        segments: Vec<Segment>,
    ) -> Result<Self, DeviceError> {
        if traps.is_empty() {
            return Err(DeviceError::NoTraps);
        }
        for trap in &traps {
            if trap.capacity == 0 {
                return Err(DeviceError::CapacityTooSmall {
                    trap: trap.id,
                    capacity: trap.capacity,
                });
            }
        }
        let mut nodes: HashSet<NodeId> = HashSet::new();
        for trap in &traps {
            nodes.insert(NodeId::Trap(trap.id));
        }
        for junction in &junctions {
            nodes.insert(NodeId::Junction(junction.id));
        }
        let mut adjacency: BTreeMap<NodeId, Vec<(SegmentId, NodeId)>> =
            nodes.iter().map(|&n| (n, Vec::new())).collect();
        for segment in &segments {
            if !nodes.contains(&segment.a) || !nodes.contains(&segment.b) {
                return Err(DeviceError::DanglingSegment(segment.id));
            }
            adjacency
                .get_mut(&segment.a)
                .expect("node present")
                .push((segment.id, segment.b));
            adjacency
                .get_mut(&segment.b)
                .expect("node present")
                .push((segment.id, segment.a));
        }
        let device = Device {
            kind,
            traps,
            junctions,
            segments,
            adjacency,
        };
        if !device.is_connected() {
            return Err(DeviceError::Disconnected);
        }
        Ok(device)
    }

    /// The topology family of this device.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// All traps.
    pub fn traps(&self) -> &[Trap] {
        &self.traps
    }

    /// All junctions.
    pub fn junctions(&self) -> &[Junction] {
        &self.junctions
    }

    /// All segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of traps.
    pub fn num_traps(&self) -> usize {
        self.traps.len()
    }

    /// Number of junctions.
    pub fn num_junctions(&self) -> usize {
        self.junctions.len()
    }

    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Looks up a trap.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn trap(&self, id: TrapId) -> &Trap {
        &self.traps[id.index()]
    }

    /// Looks up a junction.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn junction(&self, id: JunctionId) -> &Junction {
        &self.junctions[id.index()]
    }

    /// Looks up a segment.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn segment(&self, id: SegmentId) -> &Segment {
        &self.segments[id.index()]
    }

    /// The uniform trap capacity of the device (the minimum over traps, which
    /// for all built-in topologies equals every trap's capacity).
    pub fn capacity(&self) -> usize {
        self.traps.iter().map(|t| t.capacity).min().unwrap_or(0)
    }

    /// Total number of ions the device can hold.
    pub fn total_ion_capacity(&self) -> usize {
        self.traps.iter().map(|t| t.capacity).sum()
    }

    /// The number of qubits the compiler will actually map onto this device:
    /// traps are filled to `capacity − 1` to leave a slot free for visiting
    /// ions (§4.2), except for a single-trap device which may be filled
    /// completely because no communication is ever needed.
    pub fn mappable_qubits(&self) -> usize {
        if self.traps.len() == 1 {
            self.traps[0].capacity
        } else {
            self.traps
                .iter()
                .map(|t| t.capacity.saturating_sub(1))
                .sum()
        }
    }

    /// Neighbours of a node: `(segment, other end)` pairs.
    pub fn neighbours(&self, node: NodeId) -> &[(SegmentId, NodeId)] {
        self.adjacency
            .get(&node)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// The position of a node (trap or junction).
    pub fn position(&self, node: NodeId) -> (f64, f64) {
        match node {
            NodeId::Trap(t) => self.trap(t).position,
            NodeId::Junction(j) => self.junction(j).position,
        }
    }

    /// Finds a segment directly connecting two nodes, if one exists.
    pub fn segment_between(&self, a: NodeId, b: NodeId) -> Option<SegmentId> {
        self.neighbours(a)
            .iter()
            .find(|(_, other)| *other == b)
            .map(|(seg, _)| *seg)
    }

    /// All node identifiers (traps then junctions).
    pub fn nodes(&self) -> Vec<NodeId> {
        self.traps
            .iter()
            .map(|t| NodeId::Trap(t.id))
            .chain(self.junctions.iter().map(|j| NodeId::Junction(j.id)))
            .collect()
    }

    /// Breadth-first hop distance between two nodes in the routing graph, or
    /// `None` if they are disconnected.
    pub fn hop_distance(&self, from: NodeId, to: NodeId) -> Option<usize> {
        if from == to {
            return Some(0);
        }
        let mut visited: HashSet<NodeId> = HashSet::new();
        let mut queue = VecDeque::new();
        visited.insert(from);
        queue.push_back((from, 0usize));
        while let Some((node, dist)) = queue.pop_front() {
            for (_, next) in self.neighbours(node) {
                if *next == to {
                    return Some(dist + 1);
                }
                if visited.insert(*next) {
                    queue.push_back((*next, dist + 1));
                }
            }
        }
        None
    }

    fn is_connected(&self) -> bool {
        let nodes = self.nodes();
        if nodes.len() <= 1 {
            return true;
        }
        let start = nodes[0];
        let mut visited: HashSet<NodeId> = HashSet::new();
        let mut queue = VecDeque::new();
        visited.insert(start);
        queue.push_back(start);
        while let Some(node) = queue.pop_front() {
            for (_, next) in self.neighbours(node) {
                if visited.insert(*next) {
                    queue.push_back(*next);
                }
            }
        }
        visited.len() == nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_trap_device() -> Device {
        let traps = vec![
            Trap {
                id: TrapId(0),
                position: (0.0, 0.0),
                capacity: 2,
            },
            Trap {
                id: TrapId(1),
                position: (0.0, 1.0),
                capacity: 2,
            },
        ];
        let segments = vec![Segment {
            id: SegmentId(0),
            a: NodeId::Trap(TrapId(0)),
            b: NodeId::Trap(TrapId(1)),
        }];
        Device::new(TopologyKind::Linear, traps, vec![], segments).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let device = two_trap_device();
        assert_eq!(device.num_traps(), 2);
        assert_eq!(device.num_junctions(), 0);
        assert_eq!(device.num_segments(), 1);
        assert_eq!(device.capacity(), 2);
        assert_eq!(device.total_ion_capacity(), 4);
        assert_eq!(device.mappable_qubits(), 2);
        assert_eq!(device.kind(), TopologyKind::Linear);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let device = two_trap_device();
        let t0 = NodeId::Trap(TrapId(0));
        let t1 = NodeId::Trap(TrapId(1));
        assert_eq!(device.neighbours(t0), &[(SegmentId(0), t1)]);
        assert_eq!(device.neighbours(t1), &[(SegmentId(0), t0)]);
        assert_eq!(device.segment_between(t0, t1), Some(SegmentId(0)));
        assert_eq!(device.hop_distance(t0, t1), Some(1));
        assert_eq!(device.hop_distance(t0, t0), Some(0));
    }

    #[test]
    fn empty_device_rejected() {
        assert_eq!(
            Device::new(TopologyKind::Linear, vec![], vec![], vec![]),
            Err(DeviceError::NoTraps)
        );
    }

    #[test]
    fn zero_capacity_rejected() {
        let traps = vec![Trap {
            id: TrapId(0),
            position: (0.0, 0.0),
            capacity: 0,
        }];
        assert!(matches!(
            Device::new(TopologyKind::Linear, traps, vec![], vec![]),
            Err(DeviceError::CapacityTooSmall { .. })
        ));
    }

    #[test]
    fn dangling_segment_rejected() {
        let traps = vec![Trap {
            id: TrapId(0),
            position: (0.0, 0.0),
            capacity: 2,
        }];
        let segments = vec![Segment {
            id: SegmentId(0),
            a: NodeId::Trap(TrapId(0)),
            b: NodeId::Trap(TrapId(9)),
        }];
        assert_eq!(
            Device::new(TopologyKind::Linear, traps, vec![], segments),
            Err(DeviceError::DanglingSegment(SegmentId(0)))
        );
    }

    #[test]
    fn disconnected_device_rejected() {
        let traps = vec![
            Trap {
                id: TrapId(0),
                position: (0.0, 0.0),
                capacity: 2,
            },
            Trap {
                id: TrapId(1),
                position: (0.0, 1.0),
                capacity: 2,
            },
        ];
        assert_eq!(
            Device::new(TopologyKind::Linear, traps, vec![], vec![]),
            Err(DeviceError::Disconnected)
        );
    }

    #[test]
    fn single_trap_mappable_qubits_uses_full_capacity() {
        let traps = vec![Trap {
            id: TrapId(0),
            position: (0.0, 0.0),
            capacity: 31,
        }];
        let device = Device::new(TopologyKind::Linear, traps, vec![], vec![]).unwrap();
        assert_eq!(device.mappable_qubits(), 31);
    }

    #[test]
    fn segment_other_end() {
        let seg = Segment {
            id: SegmentId(0),
            a: NodeId::Trap(TrapId(0)),
            b: NodeId::Junction(JunctionId(1)),
        };
        assert_eq!(
            seg.other_end(NodeId::Trap(TrapId(0))),
            NodeId::Junction(JunctionId(1))
        );
        assert_eq!(
            seg.other_end(NodeId::Junction(JunctionId(1))),
            NodeId::Trap(TrapId(0))
        );
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn segment_other_end_panics_for_non_endpoint() {
        let seg = Segment {
            id: SegmentId(0),
            a: NodeId::Trap(TrapId(0)),
            b: NodeId::Trap(TrapId(1)),
        };
        seg.other_end(NodeId::Trap(TrapId(7)));
    }
}
