//! Identifiers for QCCD hardware elements.
//!
//! The hardware graph consists of *traps* (which hold ion chains and execute
//! gates), *junctions* (crossings that route ions between transport paths)
//! and *segments* (the shuttling paths that connect traps and junctions).
//! Physical ions get their own identifiers, distinct from the logical
//! [`QubitId`](qccd_circuit::QubitId)s they host.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a trap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TrapId(pub u32);

impl TrapId {
    /// Returns the raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TrapId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifier of a junction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JunctionId(pub u32);

impl JunctionId {
    /// Returns the raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for JunctionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "J{}", self.0)
    }
}

/// Identifier of a shuttling segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SegmentId(pub u32);

impl SegmentId {
    /// Returns the raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Identifier of a physical ion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct IonId(pub u32);

impl IonId {
    /// Returns the raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for IonId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// A node of the ion-routing graph: either a trap or a junction.
///
/// Segments are the edges of this graph; an ion in transit briefly occupies
/// a segment while moving between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NodeId {
    /// A trap node.
    Trap(TrapId),
    /// A junction node.
    Junction(JunctionId),
}

impl NodeId {
    /// Returns `true` if this node is a trap.
    pub const fn is_trap(self) -> bool {
        matches!(self, NodeId::Trap(_))
    }

    /// Returns `true` if this node is a junction.
    pub const fn is_junction(self) -> bool {
        matches!(self, NodeId::Junction(_))
    }

    /// Returns the trap id if this node is a trap.
    pub const fn as_trap(self) -> Option<TrapId> {
        match self {
            NodeId::Trap(t) => Some(t),
            NodeId::Junction(_) => None,
        }
    }

    /// Returns the junction id if this node is a junction.
    pub const fn as_junction(self) -> Option<JunctionId> {
        match self {
            NodeId::Junction(j) => Some(j),
            NodeId::Trap(_) => None,
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Trap(t) => write!(f, "{t}"),
            NodeId::Junction(j) => write!(f, "{j}"),
        }
    }
}

impl From<TrapId> for NodeId {
    fn from(value: TrapId) -> Self {
        NodeId::Trap(value)
    }
}

impl From<JunctionId> for NodeId {
    fn from(value: JunctionId) -> Self {
        NodeId::Junction(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(TrapId(3).to_string(), "T3");
        assert_eq!(JunctionId(1).to_string(), "J1");
        assert_eq!(SegmentId(7).to_string(), "S7");
        assert_eq!(IonId(0).to_string(), "i0");
        assert_eq!(NodeId::Trap(TrapId(2)).to_string(), "T2");
        assert_eq!(NodeId::Junction(JunctionId(4)).to_string(), "J4");
    }

    #[test]
    fn node_id_classification() {
        let t: NodeId = TrapId(0).into();
        let j: NodeId = JunctionId(0).into();
        assert!(t.is_trap());
        assert!(!t.is_junction());
        assert!(j.is_junction());
        assert_eq!(t.as_trap(), Some(TrapId(0)));
        assert_eq!(t.as_junction(), None);
        assert_eq!(j.as_junction(), Some(JunctionId(0)));
        assert_eq!(j.as_trap(), None);
    }

    #[test]
    fn index_round_trips() {
        assert_eq!(TrapId(5).index(), 5);
        assert_eq!(JunctionId(6).index(), 6);
        assert_eq!(SegmentId(7).index(), 7);
        assert_eq!(IonId(8).index(), 8);
    }
}
