//! # qccd-hardware
//!
//! The QCCD trapped-ion hardware model used by the architecture study:
//!
//! * [`Device`] — the abstract QCCD view: traps, junctions and shuttling
//!   segments forming an ion-routing graph, with per-trap capacities;
//! * [`TopologySpec`] and the [`Device`] constructors — grid, linear and
//!   all-to-all switch communication topologies (§3.2 of the paper);
//! * [`OperationTimes`] — the Table-1 gate and transport timing model;
//! * [`WiringMethod`] — standard (one DAC per electrode) versus WISE
//!   switch-network control wiring (§3.3);
//! * [`estimate_resources`] — electrode / DAC / data-rate / power estimation
//!   (§5.2).
//!
//! # Example
//!
//! ```
//! use qccd_hardware::{estimate_resources, OperationTimes, TopologyKind, TopologySpec, WiringMethod};
//!
//! // A capacity-2 grid large enough for a distance-3 rotated surface code.
//! let spec = TopologySpec::new(TopologyKind::Grid, 2);
//! let device = spec.build_for_qubits(17);
//! assert!(device.mappable_qubits() >= 17);
//!
//! let times = OperationTimes::paper_defaults();
//! assert_eq!(times.two_qubit_ms_us, 40.0);
//!
//! let resources = estimate_resources(&device, WiringMethod::Standard);
//! assert!(resources.total_electrodes > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod device;
mod ids;
mod resources;
mod timing;
mod topology;
mod wiring;

pub use device::{Device, DeviceError, Junction, Segment, TopologyKind, Trap};
pub use ids::{IonId, JunctionId, NodeId, SegmentId, TrapId};
pub use resources::{
    estimate_resources, ResourceEstimate, DATA_RATE_PER_DAC_MBIT_S,
    DYNAMIC_ELECTRODES_PER_JUNCTION_ZONE, DYNAMIC_ELECTRODES_PER_LINEAR_ZONE,
    POWER_PER_DAC_MILLIWATT, SHIM_ELECTRODES_PER_ZONE, WISE_DYNAMIC_DACS,
    WISE_SHIM_ELECTRODES_PER_DAC,
};
pub use timing::{MovementKind, OperationTimes};
pub use topology::TopologySpec;
pub use wiring::WiringMethod;
