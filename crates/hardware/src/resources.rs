//! Electrode, DAC, data-rate and power estimation (§5.2 of the paper).
//!
//! The electrode count of a QCCD device is determined by its zones:
//!
//! * every trap provides `capacity` *linear zones* (one per ion site), each
//!   needing 10 dynamic electrodes,
//! * every junction is a *junction zone* needing 20 dynamic electrodes,
//! * every zone (linear or junction) additionally needs 10 shim electrodes.
//!
//! Under the **standard** wiring each electrode gets its own DAC; the
//! controller-to-QPU data rate is 50 Mbit/s per DAC and the QPU dissipates
//! 30 mW per DAC. Under **WISE**, all dynamic electrodes share ≈100 DACs and
//! one DAC drives ≈100 shim electrodes, so the DAC count is
//! `100 + N_shim / 100`.

use serde::{Deserialize, Serialize};

use crate::{Device, WiringMethod};

/// Dynamic electrodes per linear (trap) zone.
pub const DYNAMIC_ELECTRODES_PER_LINEAR_ZONE: usize = 10;
/// Dynamic electrodes per junction zone.
pub const DYNAMIC_ELECTRODES_PER_JUNCTION_ZONE: usize = 20;
/// Shim electrodes per zone (linear or junction).
pub const SHIM_ELECTRODES_PER_ZONE: usize = 10;
/// Controller-to-QPU bandwidth per DAC, in Mbit/s.
pub const DATA_RATE_PER_DAC_MBIT_S: f64 = 50.0;
/// Power dissipated per DAC, in milliwatts.
pub const POWER_PER_DAC_MILLIWATT: f64 = 30.0;
/// DACs shared by all dynamic electrodes in the WISE architecture.
pub const WISE_DYNAMIC_DACS: usize = 100;
/// Shim electrodes driven by one DAC in the WISE architecture.
pub const WISE_SHIM_ELECTRODES_PER_DAC: usize = 100;

/// A full resource estimate for one device under one wiring method.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceEstimate {
    /// Number of linear (trap) zones, `N_t × capacity`.
    pub linear_zones: usize,
    /// Number of junction zones, `N_j`.
    pub junction_zones: usize,
    /// Dynamic electrodes.
    pub dynamic_electrodes: usize,
    /// Shim electrodes.
    pub shim_electrodes: usize,
    /// Total electrodes.
    pub total_electrodes: usize,
    /// Digital-to-analog converters required.
    pub dacs: usize,
    /// Controller-to-QPU data rate, in Gbit/s.
    pub data_rate_gbit_s: f64,
    /// QPU power dissipation, in watts.
    pub power_w: f64,
}

/// Estimates the control-electronics resources of a device under the given
/// wiring method.
///
/// # Examples
///
/// Reproducing the paper's §3.3 example — a distance-7 surface code
/// (97 physical qubits) on a capacity-2 grid needs ≈5,500 DACs and
/// ≈275 Gbit/s under standard wiring:
///
/// ```
/// use qccd_hardware::{estimate_resources, Device, TopologySpec, TopologyKind, WiringMethod};
///
/// let spec = TopologySpec::new(TopologyKind::Grid, 2);
/// let device = spec.build_for_qubits(97);
/// let est = estimate_resources(&device, WiringMethod::Standard);
/// assert!(est.dacs > 4_500 && est.dacs < 7_000);
/// assert!(est.data_rate_gbit_s > 225.0 && est.data_rate_gbit_s < 350.0);
/// ```
pub fn estimate_resources(device: &Device, wiring: WiringMethod) -> ResourceEstimate {
    let linear_zones: usize = device.traps().iter().map(|t| t.capacity).sum();
    let junction_zones = device.num_junctions();
    let dynamic_electrodes = DYNAMIC_ELECTRODES_PER_LINEAR_ZONE * linear_zones
        + DYNAMIC_ELECTRODES_PER_JUNCTION_ZONE * junction_zones;
    let shim_electrodes = SHIM_ELECTRODES_PER_ZONE * (linear_zones + junction_zones);
    let total_electrodes = dynamic_electrodes + shim_electrodes;

    let dacs = match wiring {
        WiringMethod::Standard => total_electrodes,
        WiringMethod::Wise => {
            WISE_DYNAMIC_DACS + shim_electrodes.div_ceil(WISE_SHIM_ELECTRODES_PER_DAC)
        }
    };
    let data_rate_gbit_s = dacs as f64 * DATA_RATE_PER_DAC_MBIT_S / 1_000.0;
    let power_w = dacs as f64 * POWER_PER_DAC_MILLIWATT / 1_000.0;

    ResourceEstimate {
        linear_zones,
        junction_zones,
        dynamic_electrodes,
        shim_electrodes,
        total_electrodes,
        dacs,
        data_rate_gbit_s,
        power_w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TopologyKind, TopologySpec};

    #[test]
    fn electrode_formula_matches_hand_calculation() {
        // 2 junctions, 1 trap of capacity 4 between them.
        let device = Device::grid(1, 2, 4);
        assert_eq!(device.num_traps(), 1);
        assert_eq!(device.num_junctions(), 2);
        let est = estimate_resources(&device, WiringMethod::Standard);
        assert_eq!(est.linear_zones, 4);
        assert_eq!(est.junction_zones, 2);
        assert_eq!(est.dynamic_electrodes, 10 * 4 + 20 * 2);
        assert_eq!(est.shim_electrodes, 10 * 6);
        assert_eq!(est.total_electrodes, 80 + 60);
        assert_eq!(est.dacs, 140);
    }

    #[test]
    fn standard_wiring_matches_paper_distance7_example() {
        let spec = TopologySpec::new(TopologyKind::Grid, 2);
        let device = spec.build_for_qubits(2 * 7 * 7 - 1);
        let est = estimate_resources(&device, WiringMethod::Standard);
        // The paper quotes ≈5,500 DACs and ≈275 Gbit/s for this configuration.
        assert!(
            est.dacs > 4_500 && est.dacs < 7_000,
            "unexpected DAC count {}",
            est.dacs
        );
        assert!(est.data_rate_gbit_s > 225.0 && est.data_rate_gbit_s < 350.0);
        assert!(est.power_w > 130.0 && est.power_w < 220.0);
    }

    #[test]
    fn wise_wiring_is_orders_of_magnitude_cheaper() {
        let spec = TopologySpec::new(TopologyKind::Grid, 2);
        let device = spec.build_for_qubits(2 * 7 * 7 - 1);
        let standard = estimate_resources(&device, WiringMethod::Standard);
        let wise = estimate_resources(&device, WiringMethod::Wise);
        assert!(wise.dacs * 20 < standard.dacs);
        assert!(wise.data_rate_gbit_s * 20.0 < standard.data_rate_gbit_s);
        // Electrode counts are identical; only the DAC sharing changes.
        assert_eq!(wise.total_electrodes, standard.total_electrodes);
    }

    #[test]
    fn wise_dacs_are_roughly_constant_in_system_size() {
        let spec = TopologySpec::new(TopologyKind::Grid, 2);
        let small = estimate_resources(&spec.build_for_qubits(17), WiringMethod::Wise);
        let large = estimate_resources(&spec.build_for_qubits(799), WiringMethod::Wise);
        // DAC count grows only through the shim-electrode term (1 DAC per
        // 100 shim electrodes).
        assert!(large.dacs < small.dacs * 30);
        assert!(large.dacs < 1_000);
    }

    #[test]
    fn lower_capacity_needs_more_electrodes_per_fixed_qubit_count() {
        // §5.2: decreasing the trap capacity increases the electrode count
        // for a fixed qubit count because the junction-to-linear-zone ratio
        // grows.
        let qubits = 97;
        let cap2 = estimate_resources(
            &TopologySpec::new(TopologyKind::Grid, 2).build_for_qubits(qubits),
            WiringMethod::Standard,
        );
        let cap12 = estimate_resources(
            &TopologySpec::new(TopologyKind::Grid, 12).build_for_qubits(qubits),
            WiringMethod::Standard,
        );
        assert!(cap2.total_electrodes > cap12.total_electrodes);
    }

    #[test]
    fn data_rate_and_power_scale_with_dacs() {
        let device = Device::linear(10, 3);
        let est = estimate_resources(&device, WiringMethod::Standard);
        assert!((est.data_rate_gbit_s - est.dacs as f64 * 0.05).abs() < 1e-9);
        assert!((est.power_w - est.dacs as f64 * 0.03).abs() < 1e-9);
    }
}
