//! Operation timing model (Table 1 of the paper).
//!
//! All durations are in microseconds and are derived from Gutiérrez et al.
//! (2019), as adopted by the paper. The reconfiguration primitives (t7–t11)
//! do not directly carry a gate infidelity; instead they heat the ion chain
//! (captured by the noise model in `qccd-noise`) and consume time during
//! which idling qubits dephase.

use serde::{Deserialize, Serialize};

use qccd_circuit::NativeGateKind;

/// The kinds of ion-movement primitives (t7–t11 plus in-trap gate swaps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MovementKind {
    /// (t7) Shuttle an ion across a transport segment.
    Shuttle,
    /// (t8) Split an ion out of a trap into a segment.
    Split,
    /// (t9) Merge an ion from a segment into a trap.
    Merge,
    /// (t10) Enter a junction from a segment.
    JunctionEntry,
    /// (t11) Exit a junction into a segment.
    JunctionExit,
    /// Reorder ions within a trap by swapping two neighbours
    /// (3 two-qubit MS gates, per §2 of the paper).
    GateSwap,
}

impl MovementKind {
    /// Every movement kind, useful for exhaustive iteration in tests and the
    /// WISE transport-serialisation model.
    pub const ALL: [MovementKind; 6] = [
        MovementKind::Shuttle,
        MovementKind::Split,
        MovementKind::Merge,
        MovementKind::JunctionEntry,
        MovementKind::JunctionExit,
        MovementKind::GateSwap,
    ];
}

/// Durations of every primitive QCCD operation, in microseconds.
///
/// The default values reproduce Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperationTimes {
    /// (t1) Two-qubit Mølmer–Sørensen gate.
    pub two_qubit_ms_us: f64,
    /// (t2–t4) Single-ion rotation.
    pub rotation_us: f64,
    /// (t5) Measurement.
    pub measurement_us: f64,
    /// (t6) Qubit reset.
    pub reset_us: f64,
    /// (t7) Ion shuttling across one segment.
    pub shuttle_us: f64,
    /// (t8) Ion split.
    pub split_us: f64,
    /// (t9) Ion merge.
    pub merge_us: f64,
    /// (t10) Junction crossing entry.
    pub junction_entry_us: f64,
    /// (t11) Junction crossing exit.
    pub junction_exit_us: f64,
    /// Extra time added to every two-qubit gate when sympathetic cooling is
    /// performed before the gate (used by the WISE wiring model, §5.1).
    pub cooling_overhead_us: f64,
}

impl Default for OperationTimes {
    fn default() -> Self {
        OperationTimes {
            two_qubit_ms_us: 40.0,
            rotation_us: 5.0,
            measurement_us: 400.0,
            reset_us: 50.0,
            shuttle_us: 5.0,
            split_us: 80.0,
            merge_us: 80.0,
            junction_entry_us: 100.0,
            junction_exit_us: 100.0,
            cooling_overhead_us: 850.0,
        }
    }
}

impl OperationTimes {
    /// The Table-1 values used throughout the paper.
    pub fn paper_defaults() -> Self {
        OperationTimes::default()
    }

    /// Duration of a native quantum gate of the given kind, without cooling.
    pub fn gate_duration_us(&self, kind: NativeGateKind) -> f64 {
        match kind {
            NativeGateKind::TwoQubitMs => self.two_qubit_ms_us,
            NativeGateKind::Rotation => self.rotation_us,
            NativeGateKind::Measurement => self.measurement_us,
            NativeGateKind::Reset => self.reset_us,
        }
    }

    /// Duration of a native quantum gate when sympathetic cooling is applied
    /// before two-qubit gates (the WISE operating mode).
    pub fn gate_duration_with_cooling_us(&self, kind: NativeGateKind) -> f64 {
        match kind {
            NativeGateKind::TwoQubitMs => self.two_qubit_ms_us + self.cooling_overhead_us,
            _ => self.gate_duration_us(kind),
        }
    }

    /// Duration of an ion-movement primitive.
    ///
    /// A [`MovementKind::GateSwap`] is implemented as three sequential
    /// two-qubit MS gates.
    pub fn movement_duration_us(&self, kind: MovementKind) -> f64 {
        match kind {
            MovementKind::Shuttle => self.shuttle_us,
            MovementKind::Split => self.split_us,
            MovementKind::Merge => self.merge_us,
            MovementKind::JunctionEntry => self.junction_entry_us,
            MovementKind::JunctionExit => self.junction_exit_us,
            MovementKind::GateSwap => 3.0 * self.two_qubit_ms_us,
        }
    }

    /// The time to move an ion from one trap into an adjacent trap through a
    /// direct segment (split + shuttle + merge), with no junction crossing.
    pub fn direct_hop_us(&self) -> f64 {
        self.split_us + self.shuttle_us + self.merge_us
    }

    /// The time to move an ion between two traps through one junction:
    /// split + shuttle + junction entry + junction exit + shuttle + merge.
    pub fn junction_hop_us(&self) -> f64 {
        self.split_us
            + 2.0 * self.shuttle_us
            + self.junction_entry_us
            + self.junction_exit_us
            + self.merge_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_1() {
        let t = OperationTimes::paper_defaults();
        assert_eq!(t.two_qubit_ms_us, 40.0);
        assert_eq!(t.rotation_us, 5.0);
        assert_eq!(t.measurement_us, 400.0);
        assert_eq!(t.reset_us, 50.0);
        assert_eq!(t.shuttle_us, 5.0);
        assert_eq!(t.split_us, 80.0);
        assert_eq!(t.merge_us, 80.0);
        assert_eq!(t.junction_entry_us, 100.0);
        assert_eq!(t.junction_exit_us, 100.0);
    }

    #[test]
    fn gate_duration_lookup() {
        let t = OperationTimes::default();
        assert_eq!(t.gate_duration_us(NativeGateKind::TwoQubitMs), 40.0);
        assert_eq!(t.gate_duration_us(NativeGateKind::Rotation), 5.0);
        assert_eq!(t.gate_duration_us(NativeGateKind::Measurement), 400.0);
        assert_eq!(t.gate_duration_us(NativeGateKind::Reset), 50.0);
    }

    #[test]
    fn cooling_only_slows_two_qubit_gates() {
        let t = OperationTimes::default();
        assert_eq!(
            t.gate_duration_with_cooling_us(NativeGateKind::TwoQubitMs),
            890.0
        );
        assert_eq!(
            t.gate_duration_with_cooling_us(NativeGateKind::Rotation),
            5.0
        );
        assert_eq!(
            t.gate_duration_with_cooling_us(NativeGateKind::Measurement),
            400.0
        );
    }

    #[test]
    fn movement_durations() {
        let t = OperationTimes::default();
        assert_eq!(t.movement_duration_us(MovementKind::Shuttle), 5.0);
        assert_eq!(t.movement_duration_us(MovementKind::Split), 80.0);
        assert_eq!(t.movement_duration_us(MovementKind::Merge), 80.0);
        assert_eq!(t.movement_duration_us(MovementKind::JunctionEntry), 100.0);
        assert_eq!(t.movement_duration_us(MovementKind::JunctionExit), 100.0);
        // A gate swap is three MS gates.
        assert_eq!(t.movement_duration_us(MovementKind::GateSwap), 120.0);
    }

    #[test]
    fn hop_times_compose_primitives() {
        let t = OperationTimes::default();
        assert_eq!(t.direct_hop_us(), 165.0);
        assert_eq!(t.junction_hop_us(), 80.0 + 5.0 + 100.0 + 100.0 + 5.0 + 80.0);
    }
}
