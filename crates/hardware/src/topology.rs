//! Topology builders: grid, linear and all-to-all switch devices.
//!
//! The paper's design-space exploration sweeps three communication
//! topologies (§3.2):
//!
//! * **grid** — junctions form a lattice and a trap sits on every lattice
//!   edge, matching Figure 1(c). This mirrors the surface code's structure.
//! * **linear** — traps in a chain, connected by direct segments. A
//!   single-trap "linear" device is the degenerate single-ion-chain
//!   configuration used by monolithic systems.
//! * **switch** — every trap connects to one central n-way junction,
//!   an optimistic MUSIQC-like all-to-all interconnect.
//!
//! Builders come in two flavours: explicit-size constructors and
//! `*_for_qubits` helpers that size the device to host a given number of
//! code qubits at a given trap capacity (filling traps to `capacity − 1`,
//! per §4.2).

use serde::{Deserialize, Serialize};

use crate::{Device, Junction, JunctionId, NodeId, Segment, SegmentId, TopologyKind, Trap, TrapId};

impl Device {
    /// Builds a grid device with `junction_rows × junction_cols` junctions
    /// and a trap (of the given capacity) on every lattice edge.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the resulting lattice has no
    /// edges (1×1), or if `capacity == 0`.
    pub fn grid(junction_rows: usize, junction_cols: usize, capacity: usize) -> Device {
        assert!(
            junction_rows >= 1 && junction_cols >= 1,
            "grid needs at least one junction"
        );
        assert!(
            junction_rows * junction_cols >= 2,
            "a 1x1 junction grid has no edges to place traps on"
        );
        assert!(capacity >= 1, "capacity must be positive");

        let junction_index = |r: usize, c: usize| JunctionId((r * junction_cols + c) as u32);
        let mut junctions = Vec::new();
        for r in 0..junction_rows {
            for c in 0..junction_cols {
                junctions.push(Junction {
                    id: junction_index(r, c),
                    position: (r as f64, c as f64),
                });
            }
        }

        let mut traps = Vec::new();
        let mut segments = Vec::new();
        let mut add_trap_on_edge = |a: JunctionId, b: JunctionId, pos: (f64, f64)| {
            let trap_id = TrapId(traps.len() as u32);
            traps.push(Trap {
                id: trap_id,
                position: pos,
                capacity,
            });
            let s1 = SegmentId(segments.len() as u32);
            segments.push(Segment {
                id: s1,
                a: NodeId::Junction(a),
                b: NodeId::Trap(trap_id),
            });
            let s2 = SegmentId(segments.len() as u32);
            segments.push(Segment {
                id: s2,
                a: NodeId::Trap(trap_id),
                b: NodeId::Junction(b),
            });
        };

        for r in 0..junction_rows {
            for c in 0..junction_cols {
                // Horizontal edge to the right neighbour.
                if c + 1 < junction_cols {
                    add_trap_on_edge(
                        junction_index(r, c),
                        junction_index(r, c + 1),
                        (r as f64, c as f64 + 0.5),
                    );
                }
                // Vertical edge to the neighbour below.
                if r + 1 < junction_rows {
                    add_trap_on_edge(
                        junction_index(r, c),
                        junction_index(r + 1, c),
                        (r as f64 + 0.5, c as f64),
                    );
                }
            }
        }

        Device::new(TopologyKind::Grid, traps, junctions, segments)
            .expect("grid construction is internally consistent")
    }

    /// Builds a linear device: `num_traps` traps in a row connected by
    /// direct segments (no junctions).
    ///
    /// # Panics
    ///
    /// Panics if `num_traps == 0` or `capacity == 0`.
    pub fn linear(num_traps: usize, capacity: usize) -> Device {
        assert!(num_traps >= 1, "need at least one trap");
        assert!(capacity >= 1, "capacity must be positive");
        let traps: Vec<Trap> = (0..num_traps)
            .map(|i| Trap {
                id: TrapId(i as u32),
                position: (0.0, i as f64),
                capacity,
            })
            .collect();
        let segments: Vec<Segment> = (0..num_traps.saturating_sub(1))
            .map(|i| Segment {
                id: SegmentId(i as u32),
                a: NodeId::Trap(TrapId(i as u32)),
                b: NodeId::Trap(TrapId(i as u32 + 1)),
            })
            .collect();
        Device::new(TopologyKind::Linear, traps, vec![], segments)
            .expect("linear construction is internally consistent")
    }

    /// Builds an all-to-all switch device: every trap connects to one central
    /// n-way junction.
    ///
    /// # Panics
    ///
    /// Panics if `num_traps == 0` or `capacity == 0`.
    pub fn switch(num_traps: usize, capacity: usize) -> Device {
        assert!(num_traps >= 1, "need at least one trap");
        assert!(capacity >= 1, "capacity must be positive");
        let hub = Junction {
            id: JunctionId(0),
            position: (0.0, 0.0),
        };
        // Place traps on a circle around the hub so geometric matching still
        // has meaningful (if symmetric) distances.
        let traps: Vec<Trap> = (0..num_traps)
            .map(|i| {
                let angle = 2.0 * std::f64::consts::PI * i as f64 / num_traps as f64;
                Trap {
                    id: TrapId(i as u32),
                    position: (angle.sin(), angle.cos()),
                    capacity,
                }
            })
            .collect();
        let segments: Vec<Segment> = (0..num_traps)
            .map(|i| Segment {
                id: SegmentId(i as u32),
                a: NodeId::Trap(TrapId(i as u32)),
                b: NodeId::Junction(JunctionId(0)),
            })
            .collect();
        Device::new(TopologyKind::Switch, traps, vec![hub], segments)
            .expect("switch construction is internally consistent")
    }

    /// Builds a single-trap device (monolithic single ion chain) able to hold
    /// `capacity` ions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn single_chain(capacity: usize) -> Device {
        Device::linear(1, capacity)
    }
}

/// A compact description of a candidate architecture's topology and trap
/// capacity, used by the design-space exploration toolflow to size a device
/// for a particular QEC code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TopologySpec {
    /// Topology family.
    pub kind: TopologyKind,
    /// Trap capacity (maximum ions per trap).
    pub capacity: usize,
}

impl TopologySpec {
    /// Creates a spec.
    pub fn new(kind: TopologyKind, capacity: usize) -> Self {
        TopologySpec { kind, capacity }
    }

    /// Number of traps needed to host `num_qubits` qubits, filling each trap
    /// to `capacity − 1` (or completely, for a single-trap device).
    pub fn traps_needed(&self, num_qubits: usize) -> usize {
        if self.capacity >= num_qubits {
            return 1;
        }
        let usable = self.capacity.saturating_sub(1).max(1);
        num_qubits.div_ceil(usable)
    }

    /// Builds a device of this topology large enough to host `num_qubits`
    /// qubits.
    ///
    /// For the grid topology the junction lattice is chosen as the smallest
    /// near-square lattice whose edge count reaches the required trap count;
    /// linear and switch devices use exactly the required number of traps.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits == 0` or the capacity is zero.
    pub fn build_for_qubits(&self, num_qubits: usize) -> Device {
        assert!(num_qubits > 0, "cannot size a device for zero qubits");
        assert!(self.capacity >= 1, "capacity must be positive");
        let traps = self.traps_needed(num_qubits);
        match self.kind {
            TopologyKind::Linear => Device::linear(traps, self.capacity),
            TopologyKind::Switch => Device::switch(traps, self.capacity),
            TopologyKind::Grid => {
                if traps == 1 {
                    return Device::single_chain(self.capacity);
                }
                // Find the smallest m×n junction lattice (near-square) whose
                // edge count m(n−1) + n(m−1) is at least `traps`.
                let mut rows = 2usize;
                let mut cols = 2usize;
                loop {
                    let edges = rows * (cols - 1) + cols * (rows - 1);
                    if edges >= traps {
                        break;
                    }
                    if cols <= rows {
                        cols += 1;
                    } else {
                        rows += 1;
                    }
                }
                Device::grid(rows, cols, self.capacity)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_edge_and_junction_counts() {
        let device = Device::grid(3, 4, 2);
        assert_eq!(device.num_junctions(), 12);
        // Edges: 3·3 horizontal + 2·4 vertical = 17 traps.
        assert_eq!(device.num_traps(), 17);
        // Two segments per trap.
        assert_eq!(device.num_segments(), 34);
        assert_eq!(device.kind(), TopologyKind::Grid);
    }

    #[test]
    fn grid_junction_degree_is_at_most_four() {
        let device = Device::grid(3, 3, 2);
        for junction in device.junctions() {
            let degree = device.neighbours(NodeId::Junction(junction.id)).len();
            assert!((2..=4).contains(&degree), "degree {degree}");
        }
        for trap in device.traps() {
            assert_eq!(device.neighbours(NodeId::Trap(trap.id)).len(), 2);
        }
    }

    #[test]
    fn linear_device_structure() {
        let device = Device::linear(5, 3);
        assert_eq!(device.num_traps(), 5);
        assert_eq!(device.num_junctions(), 0);
        assert_eq!(device.num_segments(), 4);
        // End traps have one neighbour, middle traps two.
        assert_eq!(device.neighbours(NodeId::Trap(TrapId(0))).len(), 1);
        assert_eq!(device.neighbours(NodeId::Trap(TrapId(2))).len(), 2);
        assert_eq!(
            device.hop_distance(NodeId::Trap(TrapId(0)), NodeId::Trap(TrapId(4))),
            Some(4)
        );
    }

    #[test]
    fn switch_device_structure() {
        let device = Device::switch(6, 2);
        assert_eq!(device.num_traps(), 6);
        assert_eq!(device.num_junctions(), 1);
        assert_eq!(device.num_segments(), 6);
        // Every trap is two hops from every other trap (via the hub).
        assert_eq!(
            device.hop_distance(NodeId::Trap(TrapId(0)), NodeId::Trap(TrapId(5))),
            Some(2)
        );
    }

    #[test]
    fn single_chain_is_one_trap() {
        let device = Device::single_chain(31);
        assert_eq!(device.num_traps(), 1);
        assert_eq!(device.mappable_qubits(), 31);
    }

    #[test]
    fn traps_needed_accounts_for_free_slot() {
        let spec = TopologySpec::new(TopologyKind::Grid, 3);
        // Capacity 3 ⇒ 2 usable qubits per trap.
        assert_eq!(spec.traps_needed(17), 9);
        // A capacity that fits everything means a single trap.
        let big = TopologySpec::new(TopologyKind::Linear, 40);
        assert_eq!(big.traps_needed(17), 1);
    }

    #[test]
    fn build_for_qubits_provides_enough_slots() {
        for kind in [
            TopologyKind::Grid,
            TopologyKind::Linear,
            TopologyKind::Switch,
        ] {
            for capacity in [2usize, 3, 5, 12] {
                for num_qubits in [5usize, 17, 49, 97] {
                    let spec = TopologySpec::new(kind, capacity);
                    let device = spec.build_for_qubits(num_qubits);
                    assert!(
                        device.mappable_qubits() >= num_qubits,
                        "{kind:?} capacity {capacity} qubits {num_qubits}: only {} slots",
                        device.mappable_qubits()
                    );
                }
            }
        }
    }

    #[test]
    fn build_for_qubits_single_trap_when_capacity_large() {
        let spec = TopologySpec::new(TopologyKind::Grid, 31);
        let device = spec.build_for_qubits(17);
        assert_eq!(device.num_traps(), 1);
    }

    #[test]
    fn grid_positions_are_on_lattice_edges() {
        let device = Device::grid(2, 2, 2);
        for trap in device.traps() {
            let (r, c) = trap.position;
            let fractional = (r.fract() != 0.0) as u32 + (c.fract() != 0.0) as u32;
            assert_eq!(fractional, 1, "trap must sit midway along exactly one axis");
        }
    }

    #[test]
    #[should_panic(expected = "zero qubits")]
    fn build_for_zero_qubits_panics() {
        TopologySpec::new(TopologyKind::Grid, 2).build_for_qubits(0);
    }
}
