//! Control-system wiring methods (§3.3).
//!
//! Two ways of wiring trap electrodes to DACs are studied by the paper:
//!
//! * **Standard** — one DAC per electrode. Maximum transport parallelism,
//!   but the electrode count (and hence data rate and power) grows with the
//!   system.
//! * **WISE** (Wiring using Integrated Switching Electronics, Malinowski et
//!   al. 2023) — a switch-based demultiplexing network shares ~100 DACs
//!   across all dynamic electrodes. Control cost becomes nearly independent
//!   of system size, but only primitive operations *of the same type* may
//!   execute simultaneously, and sympathetic cooling is required to keep
//!   gate errors in check (§5.1).

use std::fmt;

use serde::{Deserialize, Serialize};

/// How electrodes are wired to DACs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WiringMethod {
    /// One DAC per electrode (the traditional QCCD architecture).
    Standard,
    /// The WISE switch-based demultiplexing architecture.
    Wise,
}

impl WiringMethod {
    /// Returns `true` if ion-transport primitives of *different* kinds must
    /// be serialised against each other (the WISE restriction).
    pub fn transport_type_exclusive(self) -> bool {
        matches!(self, WiringMethod::Wise)
    }

    /// Returns `true` if sympathetic cooling must be applied before two-qubit
    /// gates (required for WISE to reach low logical error rates, §5.1).
    pub fn requires_cooling(self) -> bool {
        matches!(self, WiringMethod::Wise)
    }
}

impl fmt::Display for WiringMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WiringMethod::Standard => write!(f, "standard"),
            WiringMethod::Wise => write!(f, "wise"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_wiring_is_unconstrained() {
        assert!(!WiringMethod::Standard.transport_type_exclusive());
        assert!(!WiringMethod::Standard.requires_cooling());
    }

    #[test]
    fn wise_wiring_serialises_and_cools() {
        assert!(WiringMethod::Wise.transport_type_exclusive());
        assert!(WiringMethod::Wise.requires_cooling());
    }

    #[test]
    fn display() {
        assert_eq!(WiringMethod::Standard.to_string(), "standard");
        assert_eq!(WiringMethod::Wise.to_string(), "wise");
    }
}
