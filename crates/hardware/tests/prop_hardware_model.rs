//! Property-based tests for the QCCD hardware model.
//!
//! Random topology / capacity / qubit-count combinations check the device
//! builders (connectivity, capacity accounting) and the §5.2 resource model
//! (electrode, DAC, data-rate and power formulas) across the whole range the
//! design-space sweeps visit.

use proptest::prelude::*;

use qccd_hardware::{
    estimate_resources, Device, TopologyKind, TopologySpec, WiringMethod, DATA_RATE_PER_DAC_MBIT_S,
    POWER_PER_DAC_MILLIWATT,
};

fn topology_kind() -> impl Strategy<Value = TopologyKind> {
    prop_oneof![
        Just(TopologyKind::Grid),
        Just(TopologyKind::Linear),
        Just(TopologyKind::Switch),
    ]
}

/// Checks the structural invariants every generated device must satisfy.
fn check_device(device: &Device, requested_qubits: usize) {
    assert!(device.num_traps() >= 1);
    assert!(
        device.mappable_qubits() >= requested_qubits,
        "device holds {} of {requested_qubits} requested qubits",
        device.mappable_qubits()
    );
    // Segments connect existing nodes and every node is reachable from the
    // first trap (the routing graph must be connected or compilation is
    // impossible).
    let nodes = device.nodes();
    let origin = nodes[0];
    for node in &nodes {
        assert!(
            device.hop_distance(origin, *node).is_some(),
            "node {node:?} unreachable"
        );
    }
    // Total ion capacity is capacity × traps.
    assert_eq!(
        device.total_ion_capacity(),
        device.capacity() * device.num_traps()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_devices_are_connected_and_large_enough(
        kind in topology_kind(),
        capacity in 2usize..12,
        qubits in 5usize..160,
    ) {
        let spec = TopologySpec::new(kind, capacity);
        let device = spec.build_for_qubits(qubits);
        // A workload that fits in one trap degenerates to a single-chain
        // (monolithic) device regardless of the requested topology family.
        if spec.traps_needed(qubits) > 1 {
            prop_assert_eq!(device.kind(), kind);
        }
        prop_assert_eq!(device.capacity(), capacity);
        check_device(&device, qubits);
    }

    #[test]
    fn resource_estimates_follow_the_section_5_2_formulas(
        kind in topology_kind(),
        capacity in 2usize..12,
        qubits in 5usize..160,
    ) {
        let device = TopologySpec::new(kind, capacity).build_for_qubits(qubits);
        let standard = estimate_resources(&device, WiringMethod::Standard);
        let wise = estimate_resources(&device, WiringMethod::Wise);

        // Electrode accounting.
        let linear_zones: usize = device.traps().iter().map(|t| t.capacity).sum();
        prop_assert_eq!(standard.linear_zones, linear_zones);
        prop_assert_eq!(standard.junction_zones, device.num_junctions());
        prop_assert_eq!(
            standard.total_electrodes,
            standard.dynamic_electrodes + standard.shim_electrodes
        );
        // Wiring only changes the DAC sharing, not the electrodes.
        prop_assert_eq!(wise.total_electrodes, standard.total_electrodes);

        // Standard wiring: one DAC per electrode; WISE shares DACs.
        prop_assert_eq!(standard.dacs, standard.total_electrodes);
        prop_assert!(wise.dacs <= standard.dacs);
        prop_assert!(wise.dacs >= 100, "WISE always needs its ~100 dynamic DACs");

        // Data rate and power are linear in the DAC count.
        for estimate in [&standard, &wise] {
            let expected_rate = estimate.dacs as f64 * DATA_RATE_PER_DAC_MBIT_S / 1_000.0;
            let expected_power = estimate.dacs as f64 * POWER_PER_DAC_MILLIWATT / 1_000.0;
            prop_assert!((estimate.data_rate_gbit_s - expected_rate).abs() < 1e-9);
            prop_assert!((estimate.power_w - expected_power).abs() < 1e-9);
        }
    }

    #[test]
    fn electrode_counts_grow_with_qubit_count(
        kind in topology_kind(),
        capacity in 2usize..8,
        qubits in 5usize..80,
        extra in 10usize..80,
    ) {
        let spec = TopologySpec::new(kind, capacity);
        let small = estimate_resources(&spec.build_for_qubits(qubits), WiringMethod::Standard);
        let large =
            estimate_resources(&spec.build_for_qubits(qubits + extra), WiringMethod::Standard);
        prop_assert!(large.total_electrodes >= small.total_electrodes);
        prop_assert!(large.data_rate_gbit_s >= small.data_rate_gbit_s);
    }

    #[test]
    fn single_chain_devices_have_no_junctions(capacity in 2usize..60) {
        let device = Device::single_chain(capacity);
        prop_assert_eq!(device.num_traps(), 1);
        prop_assert_eq!(device.num_junctions(), 0);
        prop_assert_eq!(device.mappable_qubits(), capacity);
    }

    #[test]
    fn linear_devices_have_a_path_graph_structure(
        traps in 2usize..20,
        capacity in 2usize..6,
    ) {
        let device = Device::linear(traps, capacity);
        prop_assert_eq!(device.num_traps(), traps);
        prop_assert_eq!(device.num_junctions(), 0);
        prop_assert_eq!(device.num_segments(), traps - 1);
        // The two ends of the line are the farthest-apart nodes.
        let nodes = device.nodes();
        let first = nodes[0];
        let max_hops = nodes
            .iter()
            .filter_map(|n| device.hop_distance(first, *n))
            .max()
            .unwrap();
        prop_assert!(max_hops < traps);
    }
}
