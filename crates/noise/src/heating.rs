//! Motional-energy (heating) bookkeeping.
//!
//! Ion transport heats the ion: Table 1 of the paper bounds the mean
//! vibrational quanta n̄ added by each reconfiguration primitive (shuttle
//! < 0.1, split/merge < 6, junction crossing < 3), and the paper
//! pessimistically uses these upper bounds. The [`HeatingLedger`] tracks the
//! accumulated n̄ of every ion; gates read it to scale their error rates
//! (through [`NoiseParams::two_qubit_gate_error`]) and state-preparation
//! operations (measurement followed by reset, or explicit sympathetic
//! cooling) return the ion to its base value.
//!
//! [`NoiseParams::two_qubit_gate_error`]: crate::NoiseParams::two_qubit_gate_error

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use qccd_circuit::QubitId;
use qccd_hardware::MovementKind;

/// Motional quanta added by each movement primitive (Table 1 upper bounds).
pub fn movement_heating(kind: MovementKind) -> f64 {
    match kind {
        MovementKind::Shuttle => 0.1,
        MovementKind::Split | MovementKind::Merge => 6.0,
        MovementKind::JunctionEntry | MovementKind::JunctionExit => 3.0,
        // A gate swap is three MS gates; it adds no transport heating beyond
        // the background captured in the gate error model.
        MovementKind::GateSwap => 0.0,
    }
}

/// Tracks the mean vibrational energy n̄ of every ion.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HeatingLedger {
    base_nbar: f64,
    nbar: HashMap<QubitId, f64>,
}

impl HeatingLedger {
    /// Creates a ledger where every ion starts at `base_nbar` quanta.
    pub fn new(base_nbar: f64) -> Self {
        HeatingLedger {
            base_nbar,
            nbar: HashMap::new(),
        }
    }

    /// The current motional energy of an ion.
    pub fn nbar(&self, ion: QubitId) -> f64 {
        self.nbar.get(&ion).copied().unwrap_or(self.base_nbar)
    }

    /// The motional energy relevant to a two-qubit gate between two ions:
    /// the gate is driven through the shared motional mode of the chain, so
    /// the hotter ion dominates.
    pub fn pair_nbar(&self, a: QubitId, b: QubitId) -> f64 {
        self.nbar(a).max(self.nbar(b))
    }

    /// Records that `ion` experienced the given movement primitive.
    pub fn record_movement(&mut self, ion: QubitId, kind: MovementKind) {
        let added = movement_heating(kind);
        if added > 0.0 {
            let entry = self.nbar.entry(ion).or_insert(self.base_nbar);
            *entry += added;
        }
    }

    /// Cools an ion back to the base motional energy (e.g. after measurement
    /// and re-preparation, or sympathetic cooling).
    pub fn cool(&mut self, ion: QubitId) {
        self.nbar.insert(ion, self.base_nbar);
    }

    /// Cools every ion (used by the WISE cooling model, which recools before
    /// every two-qubit gate).
    pub fn cool_all(&mut self) {
        self.nbar.clear();
    }

    /// The hottest ion currently tracked, if any ion has been heated.
    pub fn hottest(&self) -> Option<(QubitId, f64)> {
        self.nbar
            .iter()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(&q, &n)| (q, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: u32) -> QubitId {
        QubitId::new(i)
    }

    #[test]
    fn table_1_heating_values() {
        assert_eq!(movement_heating(MovementKind::Shuttle), 0.1);
        assert_eq!(movement_heating(MovementKind::Split), 6.0);
        assert_eq!(movement_heating(MovementKind::Merge), 6.0);
        assert_eq!(movement_heating(MovementKind::JunctionEntry), 3.0);
        assert_eq!(movement_heating(MovementKind::JunctionExit), 3.0);
        assert_eq!(movement_heating(MovementKind::GateSwap), 0.0);
    }

    #[test]
    fn ledger_accumulates_and_cools() {
        let mut ledger = HeatingLedger::new(0.1);
        assert_eq!(ledger.nbar(q(0)), 0.1);
        ledger.record_movement(q(0), MovementKind::Split);
        ledger.record_movement(q(0), MovementKind::Shuttle);
        assert!((ledger.nbar(q(0)) - 6.2).abs() < 1e-12);
        assert_eq!(ledger.nbar(q(1)), 0.1);
        ledger.cool(q(0));
        assert_eq!(ledger.nbar(q(0)), 0.1);
    }

    #[test]
    fn pair_nbar_takes_the_hotter_ion() {
        let mut ledger = HeatingLedger::new(0.1);
        ledger.record_movement(q(1), MovementKind::JunctionEntry);
        assert!((ledger.pair_nbar(q(0), q(1)) - 3.1).abs() < 1e-12);
    }

    #[test]
    fn hottest_and_cool_all() {
        let mut ledger = HeatingLedger::new(0.0);
        assert_eq!(ledger.hottest(), None);
        ledger.record_movement(q(3), MovementKind::Merge);
        ledger.record_movement(q(5), MovementKind::Shuttle);
        assert_eq!(ledger.hottest().unwrap().0, q(3));
        ledger.cool_all();
        assert_eq!(ledger.hottest(), None);
    }
}
