//! # qccd-noise
//!
//! Trapped-ion noise models for the QCCD surface-code architecture study
//! (§5.1 of the paper):
//!
//! * [`NoiseParams`] — the five-channel error model (dephasing, single- and
//!   two-qubit depolarising noise with heating dependence, imperfect reset
//!   and measurement), with gate-improvement scaling and the WISE cooling
//!   variant;
//! * [`HeatingLedger`] and [`movement_heating`] — motional-energy
//!   bookkeeping driven by the ion-transport primitives of Table 1.
//!
//! The compiler toolflow in `qccd-core` uses these models to lower a
//! scheduled QCCD program into a noisy stabilizer circuit for `qccd-sim`.
//!
//! # Example
//!
//! ```
//! use qccd_noise::{movement_heating, HeatingLedger, NoiseParams};
//! use qccd_circuit::QubitId;
//! use qccd_hardware::MovementKind;
//!
//! let params = NoiseParams::standard(5.0); // 5X gate improvement
//! let mut heat = HeatingLedger::new(params.base_nbar);
//!
//! // An ancilla shuttles through a junction before its entangling gate.
//! let ancilla = QubitId::new(7);
//! heat.record_movement(ancilla, MovementKind::Split);
//! heat.record_movement(ancilla, MovementKind::JunctionEntry);
//!
//! let p_cold = params.two_qubit_gate_error(40.0, 2, params.base_nbar);
//! let p_hot = params.two_qubit_gate_error(40.0, 2, heat.nbar(ancilla));
//! assert!(p_hot > p_cold);
//! assert!(movement_heating(MovementKind::Split) > movement_heating(MovementKind::Shuttle));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod heating;
mod params;

pub use heating::{movement_heating, HeatingLedger};
pub use params::NoiseParams;
