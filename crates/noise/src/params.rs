//! Noise parameters and per-operation error probability models (§5.1).
//!
//! The paper's error model has five independent stochastic Pauli channels:
//!
//! * **e1 — dephasing**: during idling or ion reconfiguration, a Pauli Z
//!   error occurs with probability `(1 − exp(−t/T₂))/2`, with `T₂ = 2.2 s`;
//! * **e2 / e3 — depolarising noise after single-/two-qubit gates**, with a
//!   probability that grows with the gate duration (background heating,
//!   `Γ·τ`) and the motional energy of the ion chain
//!   (`A(N)·(2n̄ + 1)`, where `A ∝ ln(N+1)/N` and `n̄` is the chain's mean
//!   vibrational quanta);
//! * **e4 — imperfect reset**: an X error with probability 5·10⁻³;
//! * **e5 — imperfect measurement**: an X error with probability 1·10⁻³.
//!
//! A *gate improvement* factor uniformly divides every probability,
//! modelling the 1X/5X/10X scenarios swept in the evaluation (§6.2). The
//! WISE wiring method operates with sympathetic cooling: gate errors become
//! constants (2·10⁻³ for two-qubit, 3·10⁻³ for single-qubit gates), heating
//! is ignored, and two-qubit gates take an extra 850 µs (§5.1, cooling
//! model).

use serde::{Deserialize, Serialize};

/// Calibrated physical noise parameters for a QCCD trapped-ion device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseParams {
    /// Qubit coherence (dephasing) time T₂ in seconds.
    pub t2_seconds: f64,
    /// Background heating contribution per microsecond of gate time (Γ).
    pub background_heating_per_us: f64,
    /// Laser-instability coefficient A₀; the chain-length-dependent factor
    /// is `A(N) = A₀ · ln(N + 1) / N`.
    pub laser_instability_a0: f64,
    /// Baseline motional quanta of a cold chain.
    pub base_nbar: f64,
    /// Imperfect-reset bit-flip probability (e4) before improvement scaling.
    pub reset_error: f64,
    /// Imperfect-measurement bit-flip probability (e5) before improvement
    /// scaling.
    pub measurement_error: f64,
    /// Uniform gate-improvement factor (1.0 = today's hardware, 10.0 = 10X
    /// better gates and 10X less dephasing).
    pub gate_improvement: f64,
    /// Whether sympathetic cooling is applied before two-qubit gates (the
    /// WISE operating mode). When set, gate errors use the cooled constants
    /// and heating is ignored.
    pub cooled: bool,
    /// Cooled-mode two-qubit gate error (before improvement scaling).
    pub cooled_two_qubit_error: f64,
    /// Cooled-mode single-qubit gate error (before improvement scaling).
    pub cooled_single_qubit_error: f64,
}

impl Default for NoiseParams {
    fn default() -> Self {
        NoiseParams::standard(1.0)
    }
}

impl NoiseParams {
    /// Parameters for the standard (uncooled) architecture at the given gate
    /// improvement factor.
    ///
    /// The laser-instability coefficient `A₀` is calibrated against the
    /// paper's stated anchor (§5.1): a 5X gate improvement corresponds to
    /// ≈10⁻³ depolarising error per qubit gate at the motional energies a
    /// capacity-2 ancilla reaches mid-round after its Table-1 transport
    /// sequence (n̄ of a few tens of quanta). Larger values push every
    /// configuration above the surface-code threshold, which contradicts the
    /// paper's Figure 10.
    ///
    /// # Panics
    ///
    /// Panics if `gate_improvement` is not positive.
    pub fn standard(gate_improvement: f64) -> Self {
        assert!(gate_improvement > 0.0, "gate improvement must be positive");
        NoiseParams {
            t2_seconds: 2.2,
            background_heating_per_us: 1.0e-5,
            laser_instability_a0: 5.0e-5,
            base_nbar: 0.1,
            reset_error: 5.0e-3,
            measurement_error: 1.0e-3,
            gate_improvement,
            cooled: false,
            cooled_two_qubit_error: 2.0e-3,
            cooled_single_qubit_error: 3.0e-3,
        }
    }

    /// Parameters for the WISE architecture with sympathetic cooling, at the
    /// given gate improvement factor.
    ///
    /// # Panics
    ///
    /// Panics if `gate_improvement` is not positive.
    pub fn wise_cooled(gate_improvement: f64) -> Self {
        NoiseParams {
            cooled: true,
            ..NoiseParams::standard(gate_improvement)
        }
    }

    /// The chain-length scaling factor `A(N) = A₀ · ln(N + 1) / N`.
    pub fn chain_factor(&self, chain_length: usize) -> f64 {
        let n = chain_length.max(1) as f64;
        self.laser_instability_a0 * (n + 1.0).ln() / n
    }

    /// Dephasing (Pauli Z) probability accumulated over `idle_us`
    /// microseconds of idling or reconfiguration (error channel e1).
    pub fn dephasing_probability(&self, idle_us: f64) -> f64 {
        if idle_us <= 0.0 {
            return 0.0;
        }
        let t = idle_us * 1e-6;
        let p = (1.0 - (-t / self.t2_seconds).exp()) / 2.0;
        (p / self.gate_improvement).clamp(0.0, 0.5)
    }

    /// Depolarising probability after a single-qubit gate of the given
    /// duration executed in a chain of `chain_length` ions with motional
    /// energy `nbar` (error channel e2).
    pub fn single_qubit_gate_error(&self, duration_us: f64, chain_length: usize, nbar: f64) -> f64 {
        if self.cooled {
            return (self.cooled_single_qubit_error / self.gate_improvement).clamp(0.0, 0.75);
        }
        self.gate_error(duration_us, chain_length, nbar)
    }

    /// Depolarising probability after a two-qubit MS gate (error channel e3).
    pub fn two_qubit_gate_error(&self, duration_us: f64, chain_length: usize, nbar: f64) -> f64 {
        if self.cooled {
            return (self.cooled_two_qubit_error / self.gate_improvement).clamp(0.0, 0.9375);
        }
        self.gate_error(duration_us, chain_length, nbar)
    }

    fn gate_error(&self, duration_us: f64, chain_length: usize, nbar: f64) -> f64 {
        let heating = self.background_heating_per_us * duration_us;
        let thermal = self.chain_factor(chain_length) * (2.0 * nbar.max(0.0) + 1.0);
        ((heating + thermal) / self.gate_improvement).clamp(0.0, 0.9)
    }

    /// Bit-flip probability of an imperfect reset (error channel e4).
    pub fn reset_flip_probability(&self) -> f64 {
        (self.reset_error / self.gate_improvement).clamp(0.0, 0.5)
    }

    /// Bit-flip probability of an imperfect measurement (error channel e5).
    pub fn measurement_flip_probability(&self) -> f64 {
        (self.measurement_error / self.gate_improvement).clamp(0.0, 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_constants() {
        let p = NoiseParams::default();
        assert_eq!(p.t2_seconds, 2.2);
        assert_eq!(p.reset_error, 5.0e-3);
        assert_eq!(p.measurement_error, 1.0e-3);
        assert_eq!(p.gate_improvement, 1.0);
        assert!(!p.cooled);
    }

    #[test]
    fn dephasing_grows_with_idle_time_and_matches_formula() {
        let p = NoiseParams::standard(1.0);
        assert_eq!(p.dephasing_probability(0.0), 0.0);
        let one_ms = p.dephasing_probability(1_000.0);
        let ten_ms = p.dephasing_probability(10_000.0);
        assert!(one_ms < ten_ms);
        let expected = (1.0 - (-0.001f64 / 2.2).exp()) / 2.0;
        assert!((one_ms - expected).abs() < 1e-12);
    }

    #[test]
    fn gate_improvement_divides_probabilities() {
        let base = NoiseParams::standard(1.0);
        let improved = NoiseParams::standard(10.0);
        assert!(
            (base.two_qubit_gate_error(40.0, 2, 0.1)
                - 10.0 * improved.two_qubit_gate_error(40.0, 2, 0.1))
            .abs()
                < 1e-12
        );
        assert!(
            (base.measurement_flip_probability() - 10.0 * improved.measurement_flip_probability())
                .abs()
                < 1e-12
        );
        assert!(
            (base.dephasing_probability(500.0) - 10.0 * improved.dephasing_probability(500.0))
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn heating_increases_gate_error() {
        let p = NoiseParams::standard(1.0);
        let cold = p.two_qubit_gate_error(40.0, 2, 0.1);
        let hot = p.two_qubit_gate_error(40.0, 2, 60.0);
        assert!(hot > cold);
        // Magnitudes match the paper's calibration anchor: today's (1X)
        // hardware sits in the low-10⁻³ range for heavily-heated gates and a
        // few 10⁻⁴ for cold gates, so a 5X improvement lands near 10⁻³ for a
        // typical mid-round gate.
        assert!(cold > 1e-4 && cold < 2e-3, "cold error {cold}");
        assert!(hot > 1e-3 && hot < 2e-2, "hot error {hot}");
    }

    #[test]
    fn longer_gates_are_noisier() {
        let p = NoiseParams::standard(1.0);
        assert!(p.two_qubit_gate_error(80.0, 2, 0.1) > p.two_qubit_gate_error(40.0, 2, 0.1));
    }

    #[test]
    fn cooled_mode_uses_constant_gate_errors() {
        let p = NoiseParams::wise_cooled(1.0);
        assert!(p.cooled);
        // Independent of chain length and heating.
        assert_eq!(
            p.two_qubit_gate_error(890.0, 2, 0.1),
            p.two_qubit_gate_error(890.0, 20, 50.0)
        );
        assert!((p.two_qubit_gate_error(890.0, 2, 0.0) - 2.0e-3).abs() < 1e-12);
        assert!((p.single_qubit_gate_error(5.0, 2, 0.0) - 3.0e-3).abs() < 1e-12);
    }

    #[test]
    fn chain_factor_is_positive_and_decays_for_long_chains() {
        let p = NoiseParams::standard(1.0);
        assert!(p.chain_factor(1) > 0.0);
        assert!(p.chain_factor(2) > p.chain_factor(30));
    }

    #[test]
    fn probabilities_are_clamped_to_valid_ranges() {
        let p = NoiseParams::standard(1.0);
        assert!(p.two_qubit_gate_error(1e9, 2, 1e9) <= 0.9);
        assert!(p.dephasing_probability(1e12) <= 0.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_improvement_rejected() {
        NoiseParams::standard(0.0);
    }
}
