//! Property-based tests for the §5.1 noise model.
//!
//! Every quantity the model produces is a probability and must respond
//! monotonically to the physical knobs the paper sweeps: idle time, gate
//! duration, chain length, motional energy and the gate-improvement factor.

use proptest::prelude::*;

use qccd_noise::NoiseParams;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dephasing_is_a_probability_and_grows_with_idle_time(
        improvement in 1.0f64..10.0,
        idle_us in 0.0f64..1e6,
        extra_us in 0.0f64..1e6,
    ) {
        let params = NoiseParams::standard(improvement);
        let p = params.dephasing_probability(idle_us);
        let p_longer = params.dephasing_probability(idle_us + extra_us);
        prop_assert!((0.0..=0.5).contains(&p), "p = {p}");
        prop_assert!(p_longer >= p - 1e-15);
    }

    #[test]
    fn gate_errors_are_probabilities(
        improvement in 1.0f64..10.0,
        duration_us in 1.0f64..1000.0,
        chain_length in 1usize..40,
        nbar in 0.0f64..10.0,
    ) {
        let params = NoiseParams::standard(improvement);
        let single = params.single_qubit_gate_error(duration_us, chain_length, nbar);
        let double = params.two_qubit_gate_error(duration_us, chain_length, nbar);
        prop_assert!((0.0..=1.0).contains(&single), "single {single}");
        prop_assert!((0.0..=1.0).contains(&double), "double {double}");
    }

    #[test]
    fn heating_makes_gates_worse(
        improvement in 1.0f64..10.0,
        duration_us in 1.0f64..500.0,
        chain_length in 1usize..30,
        nbar in 0.0f64..5.0,
        extra_nbar in 0.1f64..5.0,
    ) {
        // More motional quanta (from shuttling/splitting/merging) must never
        // make a gate better.
        let params = NoiseParams::standard(improvement);
        let cool = params.two_qubit_gate_error(duration_us, chain_length, nbar);
        let hot = params.two_qubit_gate_error(duration_us, chain_length, nbar + extra_nbar);
        prop_assert!(hot >= cool - 1e-15, "hot {hot} < cool {cool}");
    }

    #[test]
    fn longer_gates_are_noisier(
        improvement in 1.0f64..10.0,
        duration_us in 1.0f64..500.0,
        extra_us in 1.0f64..500.0,
        chain_length in 1usize..30,
        nbar in 0.0f64..5.0,
    ) {
        let params = NoiseParams::standard(improvement);
        let short = params.two_qubit_gate_error(duration_us, chain_length, nbar);
        let long = params.two_qubit_gate_error(duration_us + extra_us, chain_length, nbar);
        prop_assert!(long >= short - 1e-15);
    }

    #[test]
    fn gate_improvement_never_hurts(
        duration_us in 1.0f64..500.0,
        chain_length in 1usize..30,
        nbar in 0.0f64..5.0,
        idle_us in 0.0f64..1e5,
    ) {
        // The paper's 1X/5X/10X scenarios scale every physical error rate
        // down; a better machine must never have larger model probabilities.
        let base = NoiseParams::standard(1.0);
        let improved = NoiseParams::standard(10.0);
        prop_assert!(
            improved.two_qubit_gate_error(duration_us, chain_length, nbar)
                <= base.two_qubit_gate_error(duration_us, chain_length, nbar) + 1e-15
        );
        prop_assert!(
            improved.single_qubit_gate_error(duration_us, chain_length, nbar)
                <= base.single_qubit_gate_error(duration_us, chain_length, nbar) + 1e-15
        );
        prop_assert!(
            improved.dephasing_probability(idle_us) <= base.dephasing_probability(idle_us) + 1e-15
        );
        prop_assert!(improved.reset_flip_probability() <= base.reset_flip_probability() + 1e-15);
        prop_assert!(
            improved.measurement_flip_probability()
                <= base.measurement_flip_probability() + 1e-15
        );
    }

    #[test]
    fn chain_factor_shrinks_with_longer_chains(
        improvement in 1.0f64..10.0,
        chain_length in 2usize..40,
    ) {
        // A ∝ ln(N)/N: the per-gate laser-instability factor decreases with
        // chain length (the paper's reason why big chains do not win on raw
        // gate fidelity grounds alone is serialisation, not this factor).
        let params = NoiseParams::standard(improvement);
        prop_assert!(params.chain_factor(chain_length) > 0.0);
        prop_assert!(params.chain_factor(chain_length * 4) <= params.chain_factor(chain_length));
    }

    #[test]
    fn wise_cooling_overrides_the_baseline_gate_errors(improvement in 1.0f64..10.0) {
        let cooled = NoiseParams::wise_cooled(improvement);
        prop_assert!(cooled.cooled);
        prop_assert_eq!(cooled.gate_improvement, improvement);
        // Cooled gates ignore the heating term: error rates are independent
        // of the motional energy.
        let calm = cooled.two_qubit_gate_error(40.0, 2, 0.0);
        let hot = cooled.two_qubit_gate_error(40.0, 2, 6.0);
        prop_assert!((calm - hot).abs() < 1e-12);
    }
}
