//! Code layouts: qubit roles, coordinates and stabilizer structure.
//!
//! Every QEC code in this crate (repetition code, rotated and unrotated
//! surface codes) is described by the same concrete data structure,
//! [`CodeLayout`]. The layout records *where* each qubit sits in the code's
//! two-dimensional geometry, which qubits are data versus ancilla, the
//! stabilizers (with their entangling-gate schedule) and the logical
//! operators. Downstream consumers are:
//!
//! * the parity-check circuit builder ([`crate::schedule`]),
//! * the memory-experiment builder ([`crate::memory`]), and
//! * the QCCD compiler, which uses the coordinates and the data–ancilla
//!   interaction graph to cluster qubits into traps.

use std::collections::{BTreeMap, HashSet};
use std::fmt;

use serde::{Deserialize, Serialize};

use qccd_circuit::{Pauli, QubitId, SparsePauli};

/// A position in the code's planar layout.
///
/// Coordinates are stored in *doubled* units so that every qubit of every
/// code sits on integer coordinates: adjacent data qubits of a surface code
/// are 2 units apart and ancilla qubits sit at odd coordinates between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Coord {
    /// Row coordinate (doubled units).
    pub row: i64,
    /// Column coordinate (doubled units).
    pub col: i64,
}

impl Coord {
    /// Creates a coordinate.
    pub const fn new(row: i64, col: i64) -> Self {
        Coord { row, col }
    }

    /// Returns the coordinate as floating-point `(row, col)`.
    pub fn as_f64(self) -> (f64, f64) {
        (self.row as f64, self.col as f64)
    }

    /// Squared Euclidean distance to another coordinate.
    pub fn distance_sq(self, other: Coord) -> i64 {
        let dr = self.row - other.row;
        let dc = self.col - other.col;
        dr * dr + dc * dc
    }

    /// Manhattan distance to another coordinate.
    pub fn manhattan(self, other: Coord) -> i64 {
        (self.row - other.row).abs() + (self.col - other.col).abs()
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.row, self.col)
    }
}

/// The role a physical qubit plays in the code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QubitRole {
    /// Holds part of the encoded logical state.
    Data,
    /// Used to measure stabilizers; reset and measured every round.
    Ancilla,
}

/// Metadata about one physical qubit of the code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QubitInfo {
    /// Circuit-level identifier.
    pub id: QubitId,
    /// Position in the planar layout (doubled units).
    pub coord: Coord,
    /// Data or ancilla.
    pub role: QubitRole,
}

/// The Pauli basis of a stabilizer check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StabilizerBasis {
    /// X-type (detects phase flips).
    X,
    /// Z-type (detects bit flips).
    Z,
}

impl StabilizerBasis {
    /// The Pauli operator corresponding to this basis.
    pub fn pauli(self) -> Pauli {
        match self {
            StabilizerBasis::X => Pauli::X,
            StabilizerBasis::Z => Pauli::Z,
        }
    }

    /// The opposite basis.
    pub fn opposite(self) -> Self {
        match self {
            StabilizerBasis::X => StabilizerBasis::Z,
            StabilizerBasis::Z => StabilizerBasis::X,
        }
    }
}

impl fmt::Display for StabilizerBasis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StabilizerBasis::X => write!(f, "X"),
            StabilizerBasis::Z => write!(f, "Z"),
        }
    }
}

/// One stabilizer check of the code.
///
/// `schedule` lists, per entangling time-step, which data qubit (if any) the
/// ancilla interacts with. The step ordering is chosen per code so that no
/// qubit participates in two entangling gates in the same step and so that
/// the resulting circuit measures the intended stabilizers (validated by the
/// tableau simulator in the integration tests).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stabilizer {
    /// The ancilla qubit that accumulates the parity.
    pub ancilla: QubitId,
    /// X- or Z-type check.
    pub basis: StabilizerBasis,
    /// Data qubit touched in each entangling step (`None` = ancilla idles).
    pub schedule: Vec<Option<QubitId>>,
}

impl Stabilizer {
    /// The data qubits in this stabilizer's support, in schedule order.
    pub fn data_support(&self) -> Vec<QubitId> {
        self.schedule.iter().filter_map(|s| *s).collect()
    }

    /// The weight (number of data qubits) of the check.
    pub fn weight(&self) -> usize {
        self.schedule.iter().filter(|s| s.is_some()).count()
    }

    /// The stabilizer as a Pauli string over the data qubits.
    pub fn pauli_string(&self) -> SparsePauli {
        SparsePauli::uniform(self.data_support(), self.basis.pauli())
    }
}

/// A complete description of a QEC code instance laid out in the plane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CodeLayout {
    name: String,
    distance: usize,
    qubits: Vec<QubitInfo>,
    stabilizers: Vec<Stabilizer>,
    logical_z: Vec<QubitId>,
    logical_x: Vec<QubitId>,
    num_entangling_steps: usize,
}

impl CodeLayout {
    /// Assembles a layout from its parts.
    ///
    /// # Panics
    ///
    /// Panics if qubit identifiers are not dense (0..n), if a stabilizer
    /// references an unknown qubit, or if logical operators reference
    /// non-data qubits. These are programming errors in code constructors,
    /// not user errors.
    pub fn new(
        name: impl Into<String>,
        distance: usize,
        qubits: Vec<QubitInfo>,
        stabilizers: Vec<Stabilizer>,
        logical_z: Vec<QubitId>,
        logical_x: Vec<QubitId>,
    ) -> Self {
        let ids: HashSet<usize> = qubits.iter().map(|q| q.id.index()).collect();
        assert_eq!(ids.len(), qubits.len(), "duplicate qubit ids in layout");
        for i in 0..qubits.len() {
            assert!(
                ids.contains(&i),
                "qubit ids must be dense 0..n, missing {i}"
            );
        }
        let role_of: BTreeMap<QubitId, QubitRole> = qubits.iter().map(|q| (q.id, q.role)).collect();
        let num_entangling_steps = stabilizers
            .iter()
            .map(|s| s.schedule.len())
            .max()
            .unwrap_or(0);
        for s in &stabilizers {
            assert_eq!(
                role_of.get(&s.ancilla),
                Some(&QubitRole::Ancilla),
                "stabilizer ancilla {} is not an ancilla qubit",
                s.ancilla
            );
            for d in s.data_support() {
                assert_eq!(
                    role_of.get(&d),
                    Some(&QubitRole::Data),
                    "stabilizer data qubit {d} is not a data qubit"
                );
            }
        }
        for q in logical_z.iter().chain(logical_x.iter()) {
            assert_eq!(
                role_of.get(q),
                Some(&QubitRole::Data),
                "logical operator qubit {q} is not a data qubit"
            );
        }
        CodeLayout {
            name: name.into(),
            distance,
            qubits,
            stabilizers,
            logical_z,
            logical_x,
            num_entangling_steps,
        }
    }

    /// Human-readable name, e.g. `"rotated_surface_d5"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Code distance.
    pub fn distance(&self) -> usize {
        self.distance
    }

    /// All physical qubits (data and ancilla).
    pub fn qubits(&self) -> &[QubitInfo] {
        &self.qubits
    }

    /// Total number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.qubits.len()
    }

    /// The stabilizer checks.
    pub fn stabilizers(&self) -> &[Stabilizer] {
        &self.stabilizers
    }

    /// Number of entangling time-steps in one parity-check round.
    pub fn num_entangling_steps(&self) -> usize {
        self.num_entangling_steps
    }

    /// Data qubits, in id order.
    pub fn data_qubits(&self) -> Vec<QubitId> {
        self.qubits
            .iter()
            .filter(|q| q.role == QubitRole::Data)
            .map(|q| q.id)
            .collect()
    }

    /// Ancilla qubits, in id order.
    pub fn ancilla_qubits(&self) -> Vec<QubitId> {
        self.qubits
            .iter()
            .filter(|q| q.role == QubitRole::Ancilla)
            .map(|q| q.id)
            .collect()
    }

    /// The coordinate of a qubit.
    ///
    /// # Panics
    ///
    /// Panics if the qubit is not part of the layout.
    pub fn coord(&self, qubit: QubitId) -> Coord {
        self.qubits[qubit.index()].coord
    }

    /// The role of a qubit.
    ///
    /// # Panics
    ///
    /// Panics if the qubit is not part of the layout.
    pub fn role(&self, qubit: QubitId) -> QubitRole {
        self.qubits[qubit.index()].role
    }

    /// Data qubits forming the logical Z operator (a Z string between the
    /// Z-type boundaries).
    pub fn logical_z(&self) -> &[QubitId] {
        &self.logical_z
    }

    /// Data qubits forming the logical X operator.
    pub fn logical_x(&self) -> &[QubitId] {
        &self.logical_x
    }

    /// The logical Z operator as a Pauli string.
    pub fn logical_z_pauli(&self) -> SparsePauli {
        SparsePauli::uniform(self.logical_z.iter().copied(), Pauli::Z)
    }

    /// The logical X operator as a Pauli string.
    pub fn logical_x_pauli(&self) -> SparsePauli {
        SparsePauli::uniform(self.logical_x.iter().copied(), Pauli::X)
    }

    /// Returns the data–ancilla interaction graph as weighted edges.
    ///
    /// Each stabilizer contributes one edge per data qubit in its support.
    /// The weight reflects how early in the round the interaction happens
    /// (earlier ⇒ heavier), which is what the QCCD compiler's clustering
    /// objective uses (§4.2 of the paper).
    pub fn interaction_edges(&self) -> Vec<InteractionEdge> {
        let mut edges = Vec::new();
        for stab in &self.stabilizers {
            let steps = stab.schedule.len().max(1) as f64;
            for (step, data) in stab.schedule.iter().enumerate() {
                if let Some(data) = data {
                    edges.push(InteractionEdge {
                        ancilla: stab.ancilla,
                        data: *data,
                        weight: steps - step as f64,
                    });
                }
            }
        }
        edges
    }

    /// Verifies the internal consistency of the code:
    ///
    /// * all stabilizers mutually commute,
    /// * logical Z and X commute with every stabilizer,
    /// * logical Z anticommutes with logical X,
    /// * no qubit appears twice in the same entangling step.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated property.
    pub fn validate(&self) -> Result<(), String> {
        let paulis: Vec<SparsePauli> = self.stabilizers.iter().map(|s| s.pauli_string()).collect();
        for (i, a) in paulis.iter().enumerate() {
            for (j, b) in paulis.iter().enumerate().skip(i + 1) {
                if !a.commutes_with(b) {
                    return Err(format!("stabilizers {i} and {j} do not commute"));
                }
            }
        }
        let lz = self.logical_z_pauli();
        let lx = self.logical_x_pauli();
        for (i, s) in paulis.iter().enumerate() {
            if !lz.commutes_with(s) {
                return Err(format!("logical Z does not commute with stabilizer {i}"));
            }
            if !lx.commutes_with(s) {
                return Err(format!("logical X does not commute with stabilizer {i}"));
            }
        }
        if lz.commutes_with(&lx) {
            return Err("logical Z and logical X must anticommute".to_string());
        }
        for step in 0..self.num_entangling_steps {
            let mut used: HashSet<QubitId> = HashSet::new();
            for stab in &self.stabilizers {
                if let Some(Some(data)) = stab.schedule.get(step) {
                    if !used.insert(*data) {
                        return Err(format!("data qubit {data} used twice in step {step}"));
                    }
                    if !used.insert(stab.ancilla) {
                        return Err(format!(
                            "ancilla {} used twice in step {step}",
                            stab.ancilla
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// One weighted data–ancilla interaction used by the compiler's clustering
/// pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InteractionEdge {
    /// The ancilla qubit of the parity check.
    pub ancilla: QubitId,
    /// The data qubit it entangles with.
    pub data: QubitId,
    /// Priority weight (earlier interactions are heavier).
    pub weight: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: u32) -> QubitId {
        QubitId::new(i)
    }

    fn tiny_layout() -> CodeLayout {
        // Two data qubits and one Z ancilla: the distance-2 repetition code.
        let qubits = vec![
            QubitInfo {
                id: q(0),
                coord: Coord::new(0, 0),
                role: QubitRole::Data,
            },
            QubitInfo {
                id: q(1),
                coord: Coord::new(0, 4),
                role: QubitRole::Data,
            },
            QubitInfo {
                id: q(2),
                coord: Coord::new(0, 2),
                role: QubitRole::Ancilla,
            },
        ];
        let stabilizers = vec![Stabilizer {
            ancilla: q(2),
            basis: StabilizerBasis::Z,
            schedule: vec![Some(q(0)), Some(q(1))],
        }];
        CodeLayout::new("tiny", 2, qubits, stabilizers, vec![q(0)], vec![q(0), q(1)])
    }

    #[test]
    fn coord_math() {
        let a = Coord::new(0, 0);
        let b = Coord::new(3, 4);
        assert_eq!(a.distance_sq(b), 25);
        assert_eq!(a.manhattan(b), 7);
        assert_eq!(b.as_f64(), (3.0, 4.0));
        assert_eq!(b.to_string(), "(3, 4)");
    }

    #[test]
    fn layout_accessors() {
        let layout = tiny_layout();
        assert_eq!(layout.name(), "tiny");
        assert_eq!(layout.distance(), 2);
        assert_eq!(layout.num_qubits(), 3);
        assert_eq!(layout.data_qubits(), vec![q(0), q(1)]);
        assert_eq!(layout.ancilla_qubits(), vec![q(2)]);
        assert_eq!(layout.role(q(2)), QubitRole::Ancilla);
        assert_eq!(layout.coord(q(1)), Coord::new(0, 4));
        assert_eq!(layout.num_entangling_steps(), 2);
    }

    #[test]
    fn stabilizer_helpers() {
        let layout = tiny_layout();
        let stab = &layout.stabilizers()[0];
        assert_eq!(stab.weight(), 2);
        assert_eq!(stab.data_support(), vec![q(0), q(1)]);
        let p = stab.pauli_string();
        assert_eq!(p.get(q(0)), Pauli::Z);
        assert_eq!(p.get(q(1)), Pauli::Z);
    }

    #[test]
    fn tiny_layout_validates() {
        assert_eq!(tiny_layout().validate(), Ok(()));
    }

    #[test]
    fn interaction_edges_weight_by_step() {
        let layout = tiny_layout();
        let edges = layout.interaction_edges();
        assert_eq!(edges.len(), 2);
        assert!(edges[0].weight > edges[1].weight);
        assert_eq!(edges[0].data, q(0));
        assert_eq!(edges[1].data, q(1));
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn non_dense_ids_panic() {
        let qubits = vec![QubitInfo {
            id: q(5),
            coord: Coord::new(0, 0),
            role: QubitRole::Data,
        }];
        CodeLayout::new("bad", 1, qubits, vec![], vec![], vec![]);
    }

    #[test]
    fn logical_operator_paulis() {
        let layout = tiny_layout();
        assert_eq!(layout.logical_z_pauli().weight(), 1);
        assert_eq!(layout.logical_x_pauli().weight(), 2);
        assert!(!layout
            .logical_z_pauli()
            .commutes_with(&layout.logical_x_pauli()));
    }

    #[test]
    fn basis_helpers() {
        assert_eq!(StabilizerBasis::X.pauli(), Pauli::X);
        assert_eq!(StabilizerBasis::Z.pauli(), Pauli::Z);
        assert_eq!(StabilizerBasis::X.opposite(), StabilizerBasis::Z);
        assert_eq!(StabilizerBasis::X.to_string(), "X");
    }
}
