//! # qccd-qec
//!
//! Quantum error correction codes for the QCCD surface-code architecture
//! study: the repetition code, the rotated surface code and the unrotated
//! surface code, together with parity-check circuit generation and
//! memory-experiment (logical identity) construction with detector and
//! logical-observable annotations.
//!
//! The three code constructors all return the same [`CodeLayout`] structure,
//! which records qubit coordinates, stabilizers (with their entangling
//! schedules) and logical operators. The QCCD compiler consumes the layout
//! geometry; the simulator and decoder consume the annotated circuits.
//!
//! # Example
//!
//! ```
//! use qccd_qec::{memory_experiment, rotated_surface_code, MemoryBasis};
//!
//! // The paper's primary workload: a rotated surface code running d rounds
//! // of parity checks (the logical identity).
//! let code = rotated_surface_code(3);
//! assert_eq!(code.num_qubits(), 17);
//!
//! let experiment = memory_experiment(&code, code.distance(), MemoryBasis::Z);
//! assert!(experiment.circuit.num_measurements() > 0);
//! assert!(experiment.circuit.validate_annotations().is_ok());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod layout;
mod memory;
mod rectangular;
mod repetition;
mod rotated;
mod schedule;
pub mod surgery;
mod unrotated;

pub use layout::{
    CodeLayout, Coord, InteractionEdge, QubitInfo, QubitRole, Stabilizer, StabilizerBasis,
};
pub use memory::{memory_experiment, MemoryBasis, MemoryExperiment};
pub use rectangular::rectangular_rotated_surface_code;
pub use repetition::repetition_code;
pub use rotated::rotated_surface_code;
pub use schedule::{append_parity_check_round, parity_check_round};
pub use surgery::{
    merged_xx_patch, merged_zz_patch, seam_data_qubits, surgery_workload, MergeKind,
    SurgeryWorkload,
};
pub use unrotated::unrotated_surface_code;
