//! Memory (logical identity) experiments.
//!
//! The paper's architectural evaluation uses the *logical identity*
//! operation: initialise a logical qubit, run `rounds` rounds of parity
//! checks, then measure every data qubit (§6.1). The circuit built here
//! carries the detector and logical-observable annotations needed to compute
//! a logical error rate with the stabilizer simulator and decoder.
//!
//! Detector structure (for a Z-basis memory experiment):
//!
//! * round 0, Z-type checks: the outcome is deterministic because the data
//!   qubits start in |0⟩, so each first-round Z measurement is its own
//!   detector;
//! * rounds `r ≥ 1`, all checks: the detector compares the outcome with the
//!   previous round's outcome for the same ancilla;
//! * final data measurement: each Z-type check can be reconstructed from the
//!   data measurements, and is compared with the last ancilla measurement.
//!
//! The logical observable is the parity of the final measurements of the
//! data qubits supporting the logical Z (or X) operator.

use serde::{Deserialize, Serialize};

use qccd_circuit::{Circuit, Detector, Instruction, LogicalObservable, MeasurementRef};

use crate::{append_parity_check_round, CodeLayout, StabilizerBasis};

/// The basis in which the logical qubit is stored and measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryBasis {
    /// Store |0⟩_L; Z-type stabilizers and the logical Z are deterministic.
    Z,
    /// Store |+⟩_L; X-type stabilizers and the logical X are deterministic.
    X,
}

impl MemoryBasis {
    /// The stabilizer basis whose outcomes are deterministic for this
    /// experiment.
    pub fn deterministic_basis(self) -> StabilizerBasis {
        match self {
            MemoryBasis::Z => StabilizerBasis::Z,
            MemoryBasis::X => StabilizerBasis::X,
        }
    }
}

/// A memory experiment: the annotated circuit plus bookkeeping metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryExperiment {
    /// The annotated circuit (gates, detectors, logical observable).
    pub circuit: Circuit,
    /// Number of parity-check rounds.
    pub rounds: usize,
    /// Memory basis.
    pub basis: MemoryBasis,
    /// Number of detectors in the circuit.
    pub num_detectors: usize,
}

/// Builds a memory experiment for `layout` with the given number of rounds.
///
/// # Panics
///
/// Panics if `rounds == 0`.
///
/// # Examples
///
/// ```
/// use qccd_qec::{memory_experiment, rotated_surface_code, MemoryBasis};
///
/// let code = rotated_surface_code(3);
/// let experiment = memory_experiment(&code, 3, MemoryBasis::Z);
/// assert_eq!(experiment.rounds, 3);
/// assert!(experiment.circuit.validate_annotations().is_ok());
/// ```
pub fn memory_experiment(
    layout: &CodeLayout,
    rounds: usize,
    basis: MemoryBasis,
) -> MemoryExperiment {
    assert!(rounds > 0, "a memory experiment needs at least one round");
    let mut circuit = Circuit::new();
    circuit.pad_qubits(layout.num_qubits());

    // Initialisation: reset all data qubits; for an X-basis memory, rotate
    // them into |+⟩.
    for data in layout.data_qubits() {
        circuit.push(Instruction::Reset(data));
        if basis == MemoryBasis::X {
            circuit.push(Instruction::H(data));
        }
    }

    // Parity-check rounds.
    for _ in 0..rounds {
        append_parity_check_round(&mut circuit, layout);
    }

    // Final transversal data measurement in the memory basis.
    for data in layout.data_qubits() {
        let instruction = match basis {
            MemoryBasis::Z => Instruction::Measure(data),
            MemoryBasis::X => Instruction::MeasureX(data),
        };
        circuit.push(instruction);
    }

    // Detectors.
    let deterministic = basis.deterministic_basis();
    let last_round = (rounds - 1) as u32;
    for stab in layout.stabilizers() {
        let coord = layout.coord(stab.ancilla);
        // First-round detectors only for the deterministic basis.
        if stab.basis == deterministic {
            circuit.add_detector(Detector::with_coordinate(
                vec![MeasurementRef::new(stab.ancilla, 0)],
                [coord.row as f64, coord.col as f64, 0.0],
            ));
        }
        // Round-to-round comparison detectors.
        for r in 1..rounds as u32 {
            circuit.add_detector(Detector::with_coordinate(
                vec![
                    MeasurementRef::new(stab.ancilla, r),
                    MeasurementRef::new(stab.ancilla, r - 1),
                ],
                [coord.row as f64, coord.col as f64, r as f64],
            ));
        }
        // Final data-measurement detectors for the deterministic basis.
        if stab.basis == deterministic {
            let mut measurements = vec![MeasurementRef::new(stab.ancilla, last_round)];
            for data in stab.data_support() {
                measurements.push(MeasurementRef::new(data, 0));
            }
            circuit.add_detector(Detector::with_coordinate(
                measurements,
                [coord.row as f64, coord.col as f64, rounds as f64],
            ));
        }
    }

    // Logical observable: the final measurements of the logical operator's
    // data qubits.
    let logical_support = match basis {
        MemoryBasis::Z => layout.logical_z(),
        MemoryBasis::X => layout.logical_x(),
    };
    circuit.add_observable(LogicalObservable::new(
        logical_support
            .iter()
            .map(|&q| MeasurementRef::new(q, 0))
            .collect(),
    ));

    let num_detectors = circuit.detectors().len();
    MemoryExperiment {
        circuit,
        rounds,
        basis,
        num_detectors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{repetition_code, rotated_surface_code, unrotated_surface_code};

    #[test]
    fn annotations_reference_real_measurements() {
        for layout in [
            repetition_code(3),
            rotated_surface_code(3),
            unrotated_surface_code(3),
        ] {
            for rounds in [1, 2, 4] {
                let exp = memory_experiment(&layout, rounds, MemoryBasis::Z);
                assert!(exp.circuit.validate_annotations().is_ok());
            }
        }
    }

    #[test]
    fn detector_count_formula() {
        // For rounds R: deterministic-basis checks contribute R+1 detectors
        // each; the other basis contributes R-1 each.
        let layout = rotated_surface_code(3);
        let rounds = 4;
        let exp = memory_experiment(&layout, rounds, MemoryBasis::Z);
        let z_checks = layout
            .stabilizers()
            .iter()
            .filter(|s| s.basis == StabilizerBasis::Z)
            .count();
        let x_checks = layout.stabilizers().len() - z_checks;
        let expected = z_checks * (rounds + 1) + x_checks * (rounds - 1);
        assert_eq!(exp.num_detectors, expected);
    }

    #[test]
    fn measurement_count() {
        let layout = rotated_surface_code(3);
        let rounds = 3;
        let exp = memory_experiment(&layout, rounds, MemoryBasis::Z);
        let expected = layout.stabilizers().len() * rounds + layout.data_qubits().len();
        assert_eq!(exp.circuit.num_measurements(), expected);
    }

    #[test]
    fn x_basis_uses_x_measurements_and_hadamards() {
        let layout = rotated_surface_code(3);
        let exp = memory_experiment(&layout, 2, MemoryBasis::X);
        let mx = exp
            .circuit
            .iter()
            .filter(|i| matches!(i, Instruction::MeasureX(_)))
            .count();
        assert_eq!(mx, layout.data_qubits().len());
        assert!(exp.circuit.validate_annotations().is_ok());
    }

    #[test]
    fn observable_covers_logical_operator() {
        let layout = rotated_surface_code(5);
        let exp = memory_experiment(&layout, 2, MemoryBasis::Z);
        assert_eq!(exp.circuit.observables().len(), 1);
        assert_eq!(
            exp.circuit.observables()[0].measurements.len(),
            layout.distance()
        );
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_rejected() {
        memory_experiment(&repetition_code(3), 0, MemoryBasis::Z);
    }

    #[test]
    fn repetition_code_memory_has_no_x_detector_rounds() {
        // Repetition code has only Z checks, so every check gets R+1
        // detectors.
        let layout = repetition_code(4);
        let rounds = 3;
        let exp = memory_experiment(&layout, rounds, MemoryBasis::Z);
        assert_eq!(exp.num_detectors, (rounds + 1) * layout.stabilizers().len());
    }
}
