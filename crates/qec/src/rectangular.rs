//! Rectangular (asymmetric) rotated surface codes.
//!
//! The `rows × cols` rectangular rotated surface code generalises the square
//! distance-`d` code of [`crate::rotated_surface_code`]: data qubits form a
//! `rows × cols` grid, X-type checks terminate on the top/bottom boundaries
//! and Z-type checks on the left/right boundaries, and the code distance is
//! `min(rows, cols)`.
//!
//! Rectangular patches appear in two places in the architectural study:
//!
//! * **lattice surgery** (§8 of the paper) — the merged patch formed while
//!   measuring a joint logical operator of two neighbouring patches is a
//!   `d × (2d+1)` rectangle (see [`crate::surgery`]);
//! * **asymmetric codes** — when one error species dominates, protecting it
//!   with a longer side is cheaper than growing the whole square patch.

use qccd_circuit::QubitId;

use crate::{CodeLayout, Coord, QubitInfo, QubitRole, Stabilizer, StabilizerBasis};

/// Builds a rectangular rotated surface code with `rows × cols` data qubits.
///
/// The layout is identical to [`crate::rotated_surface_code`] when
/// `rows == cols == d`: the logical Z operator is the horizontal Z string
/// along data row 0 (weight `cols`) and the logical X operator is the
/// vertical X string along data column 0 (weight `rows`). The code distance
/// recorded in the layout is `min(rows, cols)`.
///
/// # Panics
///
/// Panics if either dimension is less than 2.
///
/// # Examples
///
/// ```
/// use qccd_qec::rectangular_rotated_surface_code;
///
/// // A 3 × 7 patch: the merged patch of a distance-3 ZZ lattice surgery.
/// let code = rectangular_rotated_surface_code(3, 7);
/// assert_eq!(code.distance(), 3);
/// assert_eq!(code.data_qubits().len(), 21);
/// assert_eq!(code.validate(), Ok(()));
/// ```
pub fn rectangular_rotated_surface_code(rows: usize, cols: usize) -> CodeLayout {
    assert!(rows >= 2, "surface code patch needs at least 2 data rows");
    assert!(
        cols >= 2,
        "surface code patch needs at least 2 data columns"
    );
    let nr = rows as i64;
    let nc = cols as i64;

    let mut qubits = Vec::new();
    // Data qubits: row-major rows×cols grid, ids 0..rows*cols.
    let data_id = |r: i64, c: i64| QubitId::new((r * nc + c) as u32);
    for r in 0..nr {
        for c in 0..nc {
            qubits.push(QubitInfo {
                id: data_id(r, c),
                coord: Coord::new(2 * r, 2 * c),
                role: QubitRole::Data,
            });
        }
    }

    // Ancilla qubits: plaquette corners (i, j) with i ∈ 0..=rows, j ∈ 0..=cols.
    let mut stabilizers = Vec::new();
    let mut next_id = (nr * nc) as u32;
    for i in 0..=nr {
        for j in 0..=nc {
            let nw = neighbour(i - 1, j - 1, nr, nc);
            let ne = neighbour(i - 1, j, nr, nc);
            let sw = neighbour(i, j - 1, nr, nc);
            let se = neighbour(i, j, nr, nc);
            let present = [nw, ne, sw, se].iter().filter(|n| n.is_some()).count();
            if present < 2 {
                continue;
            }
            let basis = if (i + j) % 2 == 0 {
                StabilizerBasis::Z
            } else {
                StabilizerBasis::X
            };
            if present == 2 {
                // Boundary checks: X-type only on the top/bottom boundaries,
                // Z-type only on the left/right boundaries.
                let on_top_bottom = i == 0 || i == nr;
                let on_left_right = j == 0 || j == nc;
                let keep = match basis {
                    StabilizerBasis::X => on_top_bottom && !on_left_right,
                    StabilizerBasis::Z => on_left_right && !on_top_bottom,
                };
                if !keep {
                    continue;
                }
            }
            let ancilla = QubitId::new(next_id);
            next_id += 1;
            qubits.push(QubitInfo {
                id: ancilla,
                coord: Coord::new(2 * i - 1, 2 * j - 1),
                role: QubitRole::Ancilla,
            });
            let schedule = match basis {
                StabilizerBasis::X => vec![nw, ne, sw, se],
                StabilizerBasis::Z => vec![nw, sw, ne, se],
            }
            .into_iter()
            .map(|n| n.map(|(r, c)| data_id(r, c)))
            .collect();
            stabilizers.push(Stabilizer {
                ancilla,
                basis,
                schedule,
            });
        }
    }

    // Logical Z: horizontal Z string along data row 0 (connects the two
    // Z-type boundaries). Logical X: vertical X string along data column 0.
    let logical_z = (0..nc).map(|c| data_id(0, c)).collect();
    let logical_x = (0..nr).map(|r| data_id(r, 0)).collect();

    CodeLayout::new(
        format!("rotated_surface_{rows}x{cols}"),
        rows.min(cols),
        qubits,
        stabilizers,
        logical_z,
        logical_x,
    )
}

/// Returns `(r, c)` if the data coordinate is inside the rows×cols grid.
fn neighbour(r: i64, c: i64, rows: i64, cols: i64) -> Option<(i64, i64)> {
    if r >= 0 && r < rows && c >= 0 && c < cols {
        Some((r, c))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rotated_surface_code;
    use std::collections::HashSet;

    #[test]
    fn square_patch_matches_the_rotated_surface_code_constructor() {
        // The rectangular builder must reproduce the square code exactly
        // (same qubits, coordinates, stabilizers and logical operators);
        // only the layout name differs.
        for d in 2..=7 {
            let square = rotated_surface_code(d);
            let rect = rectangular_rotated_surface_code(d, d);
            assert_eq!(rect.distance(), square.distance());
            assert_eq!(rect.qubits(), square.qubits(), "distance {d}");
            assert_eq!(rect.stabilizers(), square.stabilizers(), "distance {d}");
            assert_eq!(rect.logical_z(), square.logical_z());
            assert_eq!(rect.logical_x(), square.logical_x());
        }
    }

    #[test]
    fn qubit_counts_follow_the_rectangular_formula() {
        // rows*cols data qubits and rows*cols − 1 ancillas (one logical
        // qubit is encoded regardless of the aspect ratio).
        for (rows, cols) in [(2, 5), (3, 7), (4, 3), (5, 11), (3, 3)] {
            let code = rectangular_rotated_surface_code(rows, cols);
            assert_eq!(code.data_qubits().len(), rows * cols);
            assert_eq!(code.ancilla_qubits().len(), rows * cols - 1);
            assert_eq!(code.num_qubits(), 2 * rows * cols - 1);
        }
    }

    #[test]
    fn rectangular_layouts_are_valid_codes() {
        for (rows, cols) in [(2, 3), (3, 7), (4, 9), (5, 4), (2, 11)] {
            let code = rectangular_rotated_surface_code(rows, cols);
            assert_eq!(code.validate(), Ok(()), "{rows}x{cols}");
        }
    }

    #[test]
    fn distance_is_the_smaller_dimension() {
        assert_eq!(rectangular_rotated_surface_code(3, 7).distance(), 3);
        assert_eq!(rectangular_rotated_surface_code(7, 3).distance(), 3);
        assert_eq!(rectangular_rotated_surface_code(5, 5).distance(), 5);
    }

    #[test]
    fn logical_operator_weights_match_the_dimensions() {
        let code = rectangular_rotated_surface_code(3, 7);
        assert_eq!(code.logical_z().len(), 7);
        assert_eq!(code.logical_x().len(), 3);
    }

    #[test]
    fn every_data_qubit_is_covered_by_both_bases() {
        let code = rectangular_rotated_surface_code(3, 7);
        let mut covered_x: HashSet<QubitId> = HashSet::new();
        let mut covered_z: HashSet<QubitId> = HashSet::new();
        for stab in code.stabilizers() {
            let set = match stab.basis {
                StabilizerBasis::X => &mut covered_x,
                StabilizerBasis::Z => &mut covered_z,
            };
            set.extend(stab.data_support());
        }
        for data in code.data_qubits() {
            assert!(covered_x.contains(&data), "{data} not covered by X checks");
            assert!(covered_z.contains(&data), "{data} not covered by Z checks");
        }
    }

    #[test]
    fn boundary_checks_have_weight_two_and_interior_weight_four() {
        let (rows, cols) = (4, 6);
        let code = rectangular_rotated_surface_code(rows, cols);
        let weight2 = code
            .stabilizers()
            .iter()
            .filter(|s| s.weight() == 2)
            .count();
        let weight4 = code
            .stabilizers()
            .iter()
            .filter(|s| s.weight() == 4)
            .count();
        assert_eq!(weight2, (rows - 1) + (cols - 1));
        assert_eq!(weight4, (rows - 1) * (cols - 1));
        assert_eq!(weight2 + weight4, code.stabilizers().len());
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn degenerate_dimensions_are_rejected() {
        rectangular_rotated_surface_code(1, 5);
    }
}
