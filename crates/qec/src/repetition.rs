//! The repetition code.
//!
//! The distance-`d` repetition code protects against bit flips only: `d` data
//! qubits sit on a line and `d − 1` ancilla qubits measure the `Z·Z` parity of
//! each adjacent pair. The paper uses it as a structurally trivial baseline
//! for validating the compiler (Table 2) and for comparing against the
//! baseline compilers (Table 3).

use qccd_circuit::QubitId;

use crate::{CodeLayout, Coord, QubitInfo, QubitRole, Stabilizer, StabilizerBasis};

/// Builds the distance-`d` repetition code layout.
///
/// Data qubit `i` sits at column `2i`; the ancilla measuring `Z_i Z_{i+1}`
/// sits between them at column `2i + 1`. The logical Z operator is `Z` on the
/// first data qubit and the logical X operator is `X` on every data qubit.
///
/// # Panics
///
/// Panics if `distance < 2`.
///
/// # Examples
///
/// ```
/// use qccd_qec::repetition_code;
///
/// let code = repetition_code(3);
/// assert_eq!(code.num_qubits(), 5);
/// assert_eq!(code.stabilizers().len(), 2);
/// assert_eq!(code.validate(), Ok(()));
/// ```
pub fn repetition_code(distance: usize) -> CodeLayout {
    assert!(distance >= 2, "repetition code distance must be at least 2");
    let d = distance;
    let mut qubits = Vec::with_capacity(2 * d - 1);
    // Data qubits: ids 0..d.
    for i in 0..d {
        qubits.push(QubitInfo {
            id: QubitId::new(i as u32),
            coord: Coord::new(0, 2 * i as i64),
            role: QubitRole::Data,
        });
    }
    // Ancilla qubits: ids d..2d-1.
    for i in 0..d - 1 {
        qubits.push(QubitInfo {
            id: QubitId::new((d + i) as u32),
            coord: Coord::new(0, 2 * i as i64 + 1),
            role: QubitRole::Ancilla,
        });
    }
    let stabilizers = (0..d - 1)
        .map(|i| Stabilizer {
            ancilla: QubitId::new((d + i) as u32),
            basis: StabilizerBasis::Z,
            schedule: vec![
                Some(QubitId::new(i as u32)),
                Some(QubitId::new(i as u32 + 1)),
            ],
        })
        .collect();
    let logical_z = vec![QubitId::new(0)];
    let logical_x = (0..d).map(|i| QubitId::new(i as u32)).collect();
    CodeLayout::new(
        format!("repetition_d{d}"),
        d,
        qubits,
        stabilizers,
        logical_z,
        logical_x,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_counts() {
        for d in 2..=9 {
            let code = repetition_code(d);
            assert_eq!(code.num_qubits(), 2 * d - 1, "distance {d}");
            assert_eq!(code.data_qubits().len(), d);
            assert_eq!(code.ancilla_qubits().len(), d - 1);
            assert_eq!(code.stabilizers().len(), d - 1);
            assert_eq!(code.distance(), d);
        }
    }

    #[test]
    fn all_checks_are_weight_two_z() {
        let code = repetition_code(5);
        for stab in code.stabilizers() {
            assert_eq!(stab.basis, StabilizerBasis::Z);
            assert_eq!(stab.weight(), 2);
        }
    }

    #[test]
    fn layout_is_consistent() {
        for d in 2..=8 {
            assert_eq!(repetition_code(d).validate(), Ok(()), "distance {d}");
        }
    }

    #[test]
    fn adjacent_data_qubits_are_checked() {
        let code = repetition_code(4);
        let supports: Vec<Vec<QubitId>> = code
            .stabilizers()
            .iter()
            .map(|s| s.data_support())
            .collect();
        assert_eq!(
            supports,
            vec![
                vec![QubitId::new(0), QubitId::new(1)],
                vec![QubitId::new(1), QubitId::new(2)],
                vec![QubitId::new(2), QubitId::new(3)],
            ]
        );
    }

    #[test]
    fn entangling_steps() {
        assert_eq!(repetition_code(6).num_entangling_steps(), 2);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn distance_one_rejected() {
        repetition_code(1);
    }

    #[test]
    fn ancillas_sit_between_data() {
        let code = repetition_code(3);
        let anc = code.ancilla_qubits();
        assert_eq!(code.coord(anc[0]).col, 1);
        assert_eq!(code.coord(anc[1]).col, 3);
    }
}
