//! The rotated surface code.
//!
//! The distance-`d` rotated surface code encodes one logical qubit into
//! `d²` data qubits and `d² − 1` ancilla qubits (2d² − 1 physical qubits in
//! total, as quoted in §6.1 of the paper). It is the primary workload of the
//! architectural study.
//!
//! # Geometry
//!
//! Data qubits form a `d × d` grid. Ancilla qubits sit at the corners between
//! data cells, in a checkerboard of X-type and Z-type plaquettes. Weight-2
//! boundary checks appear on the top/bottom boundaries (X-type) and the
//! left/right boundaries (Z-type). The logical Z operator is a horizontal
//! string of Z along the first data row; the logical X operator is a vertical
//! string of X along the first data column.

use qccd_circuit::QubitId;

use crate::{CodeLayout, Coord, QubitInfo, QubitRole, Stabilizer, StabilizerBasis};

/// Builds the distance-`d` rotated surface code layout.
///
/// # Panics
///
/// Panics if `distance < 2`.
///
/// # Examples
///
/// ```
/// use qccd_qec::rotated_surface_code;
///
/// let code = rotated_surface_code(3);
/// assert_eq!(code.num_qubits(), 2 * 3 * 3 - 1);
/// assert_eq!(code.validate(), Ok(()));
/// ```
pub fn rotated_surface_code(distance: usize) -> CodeLayout {
    assert!(distance >= 2, "surface code distance must be at least 2");
    let d = distance as i64;

    let mut qubits = Vec::new();
    // Data qubits: row-major d×d grid, ids 0..d².
    let data_id = |r: i64, c: i64| QubitId::new((r * d + c) as u32);
    for r in 0..d {
        for c in 0..d {
            qubits.push(QubitInfo {
                id: data_id(r, c),
                coord: Coord::new(2 * r, 2 * c),
                role: QubitRole::Data,
            });
        }
    }

    // Ancilla qubits: plaquette corners (i, j) with i, j ∈ 0..=d, which sit
    // between data rows (i-1, i) and data columns (j-1, j).
    let mut stabilizers = Vec::new();
    let mut next_id = (d * d) as u32;
    for i in 0..=d {
        for j in 0..=d {
            // The four candidate data neighbours, by corner.
            let nw = neighbour(i - 1, j - 1, d);
            let ne = neighbour(i - 1, j, d);
            let sw = neighbour(i, j - 1, d);
            let se = neighbour(i, j, d);
            let present = [nw, ne, sw, se].iter().filter(|n| n.is_some()).count();
            if present < 2 {
                // Corners of the dual lattice: no check.
                continue;
            }
            let basis = if (i + j) % 2 == 0 {
                StabilizerBasis::Z
            } else {
                StabilizerBasis::X
            };
            if present == 2 {
                // Boundary checks: X-type only on the top/bottom boundaries,
                // Z-type only on the left/right boundaries.
                let on_top_bottom = i == 0 || i == d;
                let on_left_right = j == 0 || j == d;
                let keep = match basis {
                    StabilizerBasis::X => on_top_bottom && !on_left_right,
                    StabilizerBasis::Z => on_left_right && !on_top_bottom,
                };
                if !keep {
                    continue;
                }
            }
            let ancilla = QubitId::new(next_id);
            next_id += 1;
            qubits.push(QubitInfo {
                id: ancilla,
                coord: Coord::new(2 * i - 1, 2 * j - 1),
                role: QubitRole::Ancilla,
            });
            // Entangling schedule: the standard "Z/N" orderings that avoid
            // same-step conflicts and bad hook errors.
            let schedule = match basis {
                StabilizerBasis::X => vec![nw, ne, sw, se],
                StabilizerBasis::Z => vec![nw, sw, ne, se],
            }
            .into_iter()
            .map(|n| n.map(|(r, c)| data_id(r, c)))
            .collect();
            stabilizers.push(Stabilizer {
                ancilla,
                basis,
                schedule,
            });
        }
    }

    // Logical Z: horizontal Z string along data row 0 (connects the two
    // Z-type boundaries). Logical X: vertical X string along data column 0.
    let logical_z = (0..d).map(|c| data_id(0, c)).collect();
    let logical_x = (0..d).map(|r| data_id(r, 0)).collect();

    CodeLayout::new(
        format!("rotated_surface_d{distance}"),
        distance,
        qubits,
        stabilizers,
        logical_z,
        logical_x,
    )
}

/// Returns `(r, c)` if the data coordinate is inside the d×d grid.
fn neighbour(r: i64, c: i64, d: i64) -> Option<(i64, i64)> {
    if r >= 0 && r < d && c >= 0 && c < d {
        Some((r, c))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn qubit_counts_match_2d2_minus_1() {
        for d in 2..=9 {
            let code = rotated_surface_code(d);
            assert_eq!(code.num_qubits(), 2 * d * d - 1, "distance {d}");
            assert_eq!(code.data_qubits().len(), d * d);
            assert_eq!(code.ancilla_qubits().len(), d * d - 1);
        }
    }

    #[test]
    fn stabilizer_type_counts() {
        // For odd d the X and Z checks split evenly; in general they sum to
        // d² − 1 and interior checks have weight 4, boundary checks weight 2.
        for d in 2..=8 {
            let code = rotated_surface_code(d);
            let x_count = code
                .stabilizers()
                .iter()
                .filter(|s| s.basis == StabilizerBasis::X)
                .count();
            let z_count = code.stabilizers().len() - x_count;
            assert_eq!(x_count + z_count, d * d - 1);
            if d % 2 == 1 {
                assert_eq!(x_count, z_count);
            }
            let weight2 = code
                .stabilizers()
                .iter()
                .filter(|s| s.weight() == 2)
                .count();
            let weight4 = code
                .stabilizers()
                .iter()
                .filter(|s| s.weight() == 4)
                .count();
            assert_eq!(weight2, 2 * (d - 1), "distance {d}");
            assert_eq!(weight4, (d - 1) * (d - 1), "distance {d}");
        }
    }

    #[test]
    fn layout_is_consistent() {
        for d in 2..=7 {
            assert_eq!(rotated_surface_code(d).validate(), Ok(()), "distance {d}");
        }
    }

    #[test]
    fn logical_operators_have_weight_d() {
        for d in 2..=7 {
            let code = rotated_surface_code(d);
            assert_eq!(code.logical_z().len(), d);
            assert_eq!(code.logical_x().len(), d);
        }
    }

    #[test]
    fn every_data_qubit_is_covered_by_both_bases() {
        // Each data qubit must participate in at least one X and one Z check,
        // otherwise single-qubit errors on it would be undetectable.
        let code = rotated_surface_code(5);
        let mut covered_x: HashSet<QubitId> = HashSet::new();
        let mut covered_z: HashSet<QubitId> = HashSet::new();
        for stab in code.stabilizers() {
            let set = match stab.basis {
                StabilizerBasis::X => &mut covered_x,
                StabilizerBasis::Z => &mut covered_z,
            };
            set.extend(stab.data_support());
        }
        for data in code.data_qubits() {
            assert!(covered_x.contains(&data), "{data} not covered by X checks");
            assert!(covered_z.contains(&data), "{data} not covered by Z checks");
        }
    }

    #[test]
    fn interior_checks_touch_four_distinct_neighbours() {
        let code = rotated_surface_code(4);
        for stab in code.stabilizers() {
            let support = stab.data_support();
            let unique: HashSet<_> = support.iter().collect();
            assert_eq!(unique.len(), support.len());
        }
    }

    #[test]
    fn ancilla_coordinates_are_odd() {
        let code = rotated_surface_code(4);
        for anc in code.ancilla_qubits() {
            let coord = code.coord(anc);
            assert_eq!(coord.row.rem_euclid(2), 1);
            assert_eq!(coord.col.rem_euclid(2), 1);
        }
    }

    #[test]
    fn schedule_has_four_steps() {
        let code = rotated_surface_code(3);
        assert_eq!(code.num_entangling_steps(), 4);
        for stab in code.stabilizers() {
            assert_eq!(stab.schedule.len(), 4);
        }
    }
}
