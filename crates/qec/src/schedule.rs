//! Parity-check round circuit construction.
//!
//! One round of surface-code error correction consists of, for every
//! stabilizer (Figure 3 of the paper):
//!
//! 1. reset the ancilla,
//! 2. (X-type only) Hadamard on the ancilla,
//! 3. a CNOT with each data qubit in the stabilizer's support, in the
//!    schedule order fixed by the code layout,
//! 4. (X-type only) Hadamard on the ancilla,
//! 5. measure the ancilla.
//!
//! For X-type checks the ancilla is the CNOT *control*; for Z-type checks the
//! data qubit is the control. The per-step interleaving across stabilizers is
//! what lets every ancilla of the code be processed in parallel on hardware
//! that supports it.

use qccd_circuit::{Circuit, Instruction};

use crate::{CodeLayout, StabilizerBasis};

/// Appends one full parity-check round for every stabilizer of `layout` to
/// `circuit`.
///
/// Instructions are emitted grouped by phase (resets, pre-rotation, one
/// entangling step at a time across all stabilizers, post-rotation,
/// measurements) so that a hardware scheduler can exploit the available
/// parallelism, while the per-qubit operation order encodes the semantics.
pub fn append_parity_check_round(circuit: &mut Circuit, layout: &CodeLayout) {
    // Phase 1: reset ancillas.
    for stab in layout.stabilizers() {
        circuit.push(Instruction::Reset(stab.ancilla));
    }
    // Phase 2: basis rotation for X-type checks.
    for stab in layout.stabilizers() {
        if stab.basis == StabilizerBasis::X {
            circuit.push(Instruction::H(stab.ancilla));
        }
    }
    // Phase 3: entangling steps.
    for step in 0..layout.num_entangling_steps() {
        for stab in layout.stabilizers() {
            if let Some(Some(data)) = stab.schedule.get(step) {
                let instruction = match stab.basis {
                    StabilizerBasis::X => Instruction::Cnot {
                        control: stab.ancilla,
                        target: *data,
                    },
                    StabilizerBasis::Z => Instruction::Cnot {
                        control: *data,
                        target: stab.ancilla,
                    },
                };
                circuit.push(instruction);
            }
        }
    }
    // Phase 4: undo the basis rotation.
    for stab in layout.stabilizers() {
        if stab.basis == StabilizerBasis::X {
            circuit.push(Instruction::H(stab.ancilla));
        }
    }
    // Phase 5: measure ancillas.
    for stab in layout.stabilizers() {
        circuit.push(Instruction::Measure(stab.ancilla));
    }
}

/// Builds a circuit containing exactly one parity-check round.
///
/// # Examples
///
/// ```
/// use qccd_qec::{parity_check_round, rotated_surface_code};
///
/// let code = rotated_surface_code(3);
/// let round = parity_check_round(&code);
/// // One measurement per stabilizer.
/// assert_eq!(round.num_measurements(), code.stabilizers().len());
/// ```
pub fn parity_check_round(layout: &CodeLayout) -> Circuit {
    let mut circuit = Circuit::new();
    circuit.pad_qubits(layout.num_qubits());
    append_parity_check_round(&mut circuit, layout);
    circuit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{repetition_code, rotated_surface_code, unrotated_surface_code};
    use qccd_circuit::QubitId;
    use std::collections::HashMap;

    #[test]
    fn one_measurement_and_reset_per_ancilla() {
        for layout in [
            repetition_code(4),
            rotated_surface_code(3),
            unrotated_surface_code(3),
        ] {
            let round = parity_check_round(&layout);
            let stats = round.stats();
            assert_eq!(stats.measurements, layout.stabilizers().len());
            assert_eq!(stats.resets, layout.stabilizers().len());
        }
    }

    #[test]
    fn cnot_count_equals_total_stabilizer_weight() {
        let layout = rotated_surface_code(5);
        let round = parity_check_round(&layout);
        let expected: usize = layout.stabilizers().iter().map(|s| s.weight()).sum();
        assert_eq!(round.stats().two_qubit_gates, expected);
    }

    #[test]
    fn x_checks_get_two_hadamards() {
        let layout = rotated_surface_code(3);
        let round = parity_check_round(&layout);
        let x_checks = layout
            .stabilizers()
            .iter()
            .filter(|s| s.basis == StabilizerBasis::X)
            .count();
        let hadamards = round
            .iter()
            .filter(|i| matches!(i, Instruction::H(_)))
            .count();
        assert_eq!(hadamards, 2 * x_checks);
    }

    #[test]
    fn cnot_direction_follows_basis() {
        let layout = rotated_surface_code(3);
        let round = parity_check_round(&layout);
        let mut basis_of: HashMap<QubitId, StabilizerBasis> = HashMap::new();
        for stab in layout.stabilizers() {
            basis_of.insert(stab.ancilla, stab.basis);
        }
        for instruction in round.iter() {
            if let Instruction::Cnot { control, target } = instruction {
                if let Some(basis) = basis_of.get(control) {
                    assert_eq!(
                        *basis,
                        StabilizerBasis::X,
                        "ancilla control implies X check"
                    );
                } else {
                    let basis = basis_of.get(target).expect("target must be an ancilla");
                    assert_eq!(*basis, StabilizerBasis::Z);
                }
            }
        }
    }

    #[test]
    fn repetition_round_is_compact() {
        let layout = repetition_code(3);
        let round = parity_check_round(&layout);
        // 2 resets + 4 CNOTs + 2 measurements, no Hadamards.
        assert_eq!(round.len(), 8);
    }

    #[test]
    fn ancillas_measured_after_all_their_cnots() {
        let layout = rotated_surface_code(3);
        let round = parity_check_round(&layout);
        let mut last_cnot_pos: HashMap<QubitId, usize> = HashMap::new();
        let mut measure_pos: HashMap<QubitId, usize> = HashMap::new();
        for (pos, instruction) in round.iter().enumerate() {
            match instruction {
                Instruction::Cnot { control, target } => {
                    last_cnot_pos.insert(*control, pos);
                    last_cnot_pos.insert(*target, pos);
                }
                Instruction::Measure(q) => {
                    measure_pos.insert(*q, pos);
                }
                _ => {}
            }
        }
        for stab in layout.stabilizers() {
            assert!(measure_pos[&stab.ancilla] > last_cnot_pos[&stab.ancilla]);
        }
    }
}
