//! Lattice-surgery workloads (§8 of the paper).
//!
//! Logical two-qubit operations on surface codes are performed by *lattice
//! surgery*: two neighbouring distance-`d` patches are merged into one
//! rectangular patch for `d` rounds of parity checks (measuring the joint
//! logical operator), then split again. The paper argues (§8) that because
//! the merged-patch circuits have the same local parity-check structure as a
//! single patch, the architectural conclusions — capacity-2 traps, grid
//! topology, constant round time — carry over to multi-logical-qubit
//! systems.
//!
//! This module provides the workloads needed to *check* that claim with the
//! compiler rather than assume it:
//!
//! * [`merged_zz_patch`] / [`merged_xx_patch`] — the merged patch that exists
//!   during a ZZ (rough) or XX (smooth) merge of two distance-`d` patches;
//! * [`seam_data_qubits`] — the column/row of data qubits that is introduced
//!   between the two patches by the merge;
//! * [`SurgeryWorkload`] — the pair (single patch, merged patch) that the
//!   extension experiment compiles on the same architecture to compare round
//!   times and error rates.
//!
//! # Modelling note
//!
//! The merged patch is modelled as a static rectangular code
//! ([`crate::rectangular_rotated_surface_code`]); the dynamic merge/split
//! boundary rounds (whose first-round seam stabilizers are non-deterministic
//! and yield the logical ZZ outcome) are not simulated. For the
//! *architectural* questions — QEC round time, movement operations, memory
//! logical error rate of the merged patch — the static merged-phase workload
//! exercises exactly the circuits that dominate a surgery operation, which
//! is the paper's own argument for why its results extend to lattice
//! surgery.

use serde::{Deserialize, Serialize};

use qccd_circuit::QubitId;

use crate::{rectangular_rotated_surface_code, rotated_surface_code, CodeLayout};

/// The orientation of a lattice-surgery merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MergeKind {
    /// Rough merge along the Z boundaries: measures the joint logical Z⊗Z.
    ZZ,
    /// Smooth merge along the X boundaries: measures the joint logical X⊗X.
    XX,
}

impl MergeKind {
    /// A short lowercase label (`"zz"` / `"xx"`).
    pub fn label(self) -> &'static str {
        match self {
            MergeKind::ZZ => "zz",
            MergeKind::XX => "xx",
        }
    }
}

/// The merged patch present while measuring Z⊗Z of two distance-`d` patches.
///
/// Two `d × d` patches sitting side by side are joined through one extra
/// column of seam data qubits, producing a `d × (2d+1)` rectangular patch.
///
/// # Panics
///
/// Panics if `distance < 2`.
///
/// # Examples
///
/// ```
/// use qccd_qec::merged_zz_patch;
///
/// let merged = merged_zz_patch(3);
/// assert_eq!(merged.data_qubits().len(), 3 * 7);
/// assert_eq!(merged.distance(), 3);
/// assert_eq!(merged.validate(), Ok(()));
/// ```
pub fn merged_zz_patch(distance: usize) -> CodeLayout {
    assert!(distance >= 2, "surface code distance must be at least 2");
    rectangular_rotated_surface_code(distance, 2 * distance + 1)
}

/// The merged patch present while measuring X⊗X of two distance-`d` patches
/// stacked vertically: a `(2d+1) × d` rectangle.
///
/// # Panics
///
/// Panics if `distance < 2`.
pub fn merged_xx_patch(distance: usize) -> CodeLayout {
    assert!(distance >= 2, "surface code distance must be at least 2");
    rectangular_rotated_surface_code(2 * distance + 1, distance)
}

/// The seam data qubits introduced by the merge: the middle column (for a
/// [`MergeKind::ZZ`] merge) or middle row ([`MergeKind::XX`]) of the merged
/// patch, i.e. the `d` data qubits that do not belong to either original
/// patch.
///
/// # Examples
///
/// ```
/// use qccd_qec::{merged_zz_patch, seam_data_qubits, MergeKind};
///
/// let merged = merged_zz_patch(3);
/// let seam = seam_data_qubits(&merged, MergeKind::ZZ);
/// assert_eq!(seam.len(), 3);
/// ```
pub fn seam_data_qubits(merged: &CodeLayout, kind: MergeKind) -> Vec<QubitId> {
    // Data qubits sit at even (row, col) coordinates; the seam is the middle
    // column (ZZ) or row (XX) of the rectangle.
    let data = merged.data_qubits();
    let (max_row, max_col) = data.iter().fold((0, 0), |(mr, mc), &q| {
        let c = merged.coord(q);
        (mr.max(c.row), mc.max(c.col))
    });
    data.into_iter()
        .filter(|&q| {
            let c = merged.coord(q);
            match kind {
                MergeKind::ZZ => c.col == max_col / 2,
                MergeKind::XX => c.row == max_row / 2,
            }
        })
        .collect()
}

/// The pair of workloads compiled by the lattice-surgery extension
/// experiment: one isolated distance-`d` patch and the merged patch of the
/// corresponding surgery operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurgeryWorkload {
    /// Code distance of the individual patches.
    pub distance: usize,
    /// Merge orientation.
    pub kind: MergeKind,
    /// A single isolated patch (the idle / memory workload).
    pub patch: CodeLayout,
    /// The merged two-patch layout (the surgery-phase workload).
    pub merged: CodeLayout,
}

impl SurgeryWorkload {
    /// Number of physical qubits added by the merge (seam data qubits plus
    /// the extra ancillas of the merged patch) relative to two isolated
    /// patches.
    pub fn merge_overhead_qubits(&self) -> usize {
        self.merged.num_qubits() - 2 * self.patch.num_qubits()
    }
}

/// Builds the surgery workload for two distance-`d` patches.
///
/// # Panics
///
/// Panics if `distance < 2`.
///
/// # Examples
///
/// ```
/// use qccd_qec::{surgery_workload, MergeKind};
///
/// let workload = surgery_workload(3, MergeKind::ZZ);
/// assert_eq!(workload.patch.num_qubits(), 17);
/// assert_eq!(workload.merged.num_qubits(), 2 * 3 * 7 - 1);
/// ```
pub fn surgery_workload(distance: usize, kind: MergeKind) -> SurgeryWorkload {
    let patch = rotated_surface_code(distance);
    let merged = match kind {
        MergeKind::ZZ => merged_zz_patch(distance),
        MergeKind::XX => merged_xx_patch(distance),
    };
    SurgeryWorkload {
        distance,
        kind,
        patch,
        merged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QubitRole;

    #[test]
    fn merged_patch_counts() {
        // d × (2d+1) data qubits; 2·d·(2d+1) − 1 physical qubits in total.
        for d in 2..=6 {
            let merged = merged_zz_patch(d);
            assert_eq!(merged.data_qubits().len(), d * (2 * d + 1));
            assert_eq!(merged.num_qubits(), 2 * d * (2 * d + 1) - 1);
            assert_eq!(merged.distance(), d);
        }
    }

    #[test]
    fn merged_patches_are_valid_codes() {
        for d in 2..=5 {
            assert_eq!(merged_zz_patch(d).validate(), Ok(()), "zz d={d}");
            assert_eq!(merged_xx_patch(d).validate(), Ok(()), "xx d={d}");
        }
    }

    #[test]
    fn xx_patch_is_the_transpose_of_the_zz_patch() {
        let zz = merged_zz_patch(3);
        let xx = merged_xx_patch(3);
        assert_eq!(zz.num_qubits(), xx.num_qubits());
        assert_eq!(zz.stabilizers().len(), xx.stabilizers().len());
        // Logical operator weights swap between the two orientations.
        assert_eq!(zz.logical_z().len(), xx.logical_x().len());
        assert_eq!(zz.logical_x().len(), xx.logical_z().len());
    }

    #[test]
    fn seam_has_exactly_d_data_qubits_in_the_middle() {
        for d in 2..=5 {
            let merged = merged_zz_patch(d);
            let seam = seam_data_qubits(&merged, MergeKind::ZZ);
            assert_eq!(seam.len(), d, "d={d}");
            for q in &seam {
                assert_eq!(merged.role(*q), QubitRole::Data);
                // The seam is the middle data column, at doubled column 2d.
                assert_eq!(merged.coord(*q).col, 2 * d as i64);
            }
        }
        let merged = merged_xx_patch(4);
        let seam = seam_data_qubits(&merged, MergeKind::XX);
        assert_eq!(seam.len(), 4);
    }

    #[test]
    fn merge_overhead_is_the_seam_plus_boundary_ancillas() {
        // Two isolated d×d patches have 2(2d²−1) qubits; the merged patch
        // has 2d(2d+1)−1. The difference (2d+1 extra qubits for ZZ) is the
        // seam data column plus the ancillas that stitch it to the patches.
        for d in 2..=5 {
            let workload = surgery_workload(d, MergeKind::ZZ);
            assert_eq!(workload.merge_overhead_qubits(), 2 * d + 1, "d={d}");
        }
    }

    #[test]
    fn workload_patch_is_the_standard_square_code() {
        let workload = surgery_workload(5, MergeKind::XX);
        assert_eq!(workload.patch.num_qubits(), 2 * 5 * 5 - 1);
        assert_eq!(workload.distance, 5);
        assert_eq!(workload.kind.label(), "xx");
    }
}
