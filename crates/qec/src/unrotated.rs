//! The unrotated (planar) surface code.
//!
//! The distance-`d` unrotated surface code uses `d² + (d−1)²` data qubits and
//! `2d(d−1)` ancilla qubits, laid out on a `(2d−1) × (2d−1)` lattice where
//! data and ancilla sites alternate in a checkerboard. It is less efficient
//! than the rotated code and serves as a secondary compiler-validation
//! benchmark in the paper (§6.1, Table 2).

use qccd_circuit::QubitId;

use crate::{CodeLayout, Coord, QubitInfo, QubitRole, Stabilizer, StabilizerBasis};

/// Builds the distance-`d` unrotated surface code layout.
///
/// Lattice sites `(r, c)` with `r + c` even are data qubits; sites with
/// `r + c` odd are ancillas. Ancillas on odd rows measure X-type (vertex)
/// checks; ancillas on even rows measure Z-type (plaquette) checks. The
/// logical Z operator is a vertical Z string along the first column and the
/// logical X operator is a horizontal X string along the first row.
///
/// # Panics
///
/// Panics if `distance < 2`.
///
/// # Examples
///
/// ```
/// use qccd_qec::unrotated_surface_code;
///
/// let code = unrotated_surface_code(3);
/// assert_eq!(code.data_qubits().len(), 3 * 3 + 2 * 2);
/// assert_eq!(code.ancilla_qubits().len(), 2 * 3 * 2);
/// assert_eq!(code.validate(), Ok(()));
/// ```
pub fn unrotated_surface_code(distance: usize) -> CodeLayout {
    assert!(distance >= 2, "surface code distance must be at least 2");
    let d = distance as i64;
    let size = 2 * d - 1;

    // Assign ids: data qubits first (row-major), then ancillas (row-major).
    let mut data_ids = std::collections::HashMap::new();
    let mut qubits = Vec::new();
    let mut next_id = 0u32;
    for r in 0..size {
        for c in 0..size {
            if (r + c) % 2 == 0 {
                let id = QubitId::new(next_id);
                next_id += 1;
                data_ids.insert((r, c), id);
                qubits.push(QubitInfo {
                    id,
                    coord: Coord::new(r, c),
                    role: QubitRole::Data,
                });
            }
        }
    }

    let mut stabilizers = Vec::new();
    for r in 0..size {
        for c in 0..size {
            if (r + c) % 2 == 0 {
                continue;
            }
            let ancilla = QubitId::new(next_id);
            next_id += 1;
            qubits.push(QubitInfo {
                id: ancilla,
                coord: Coord::new(r, c),
                role: QubitRole::Ancilla,
            });
            let basis = if r % 2 == 1 {
                StabilizerBasis::X
            } else {
                StabilizerBasis::Z
            };
            let up = data_ids.get(&(r - 1, c)).copied();
            let down = data_ids.get(&(r + 1, c)).copied();
            let left = data_ids.get(&(r, c - 1)).copied();
            let right = data_ids.get(&(r, c + 1)).copied();
            // Step orderings chosen so that no qubit is touched twice in the
            // same step (see unit test below).
            let schedule = match basis {
                StabilizerBasis::X => vec![up, left, right, down],
                StabilizerBasis::Z => vec![up, right, left, down],
            };
            stabilizers.push(Stabilizer {
                ancilla,
                basis,
                schedule,
            });
        }
    }

    // Logical Z: vertical string on the first column (rows 0, 2, ..., 2d-2).
    let logical_z = (0..d).map(|i| data_ids[&(2 * i, 0)]).collect();
    // Logical X: horizontal string on the first row.
    let logical_x = (0..d).map(|i| data_ids[&(0, 2 * i)]).collect();

    CodeLayout::new(
        format!("unrotated_surface_d{distance}"),
        distance,
        qubits,
        stabilizers,
        logical_z,
        logical_x,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_counts() {
        for d in 2..=7 {
            let code = unrotated_surface_code(d);
            assert_eq!(code.data_qubits().len(), d * d + (d - 1) * (d - 1));
            assert_eq!(code.ancilla_qubits().len(), 2 * d * (d - 1));
            assert_eq!(code.num_qubits(), (2 * d - 1) * (2 * d - 1));
        }
    }

    #[test]
    fn layout_is_consistent() {
        for d in 2..=6 {
            assert_eq!(unrotated_surface_code(d).validate(), Ok(()), "distance {d}");
        }
    }

    #[test]
    fn equal_numbers_of_x_and_z_checks() {
        for d in 2..=6 {
            let code = unrotated_surface_code(d);
            let x = code
                .stabilizers()
                .iter()
                .filter(|s| s.basis == StabilizerBasis::X)
                .count();
            assert_eq!(x * 2, code.stabilizers().len());
        }
    }

    #[test]
    fn boundary_checks_have_weight_three() {
        let code = unrotated_surface_code(4);
        for stab in code.stabilizers() {
            assert!(stab.weight() == 3 || stab.weight() == 4);
        }
        assert!(code.stabilizers().iter().any(|s| s.weight() == 3));
        assert!(code.stabilizers().iter().any(|s| s.weight() == 4));
    }

    #[test]
    fn logical_operators_have_weight_d() {
        for d in 2..=6 {
            let code = unrotated_surface_code(d);
            assert_eq!(code.logical_z().len(), d);
            assert_eq!(code.logical_x().len(), d);
        }
    }

    #[test]
    fn schedule_has_four_steps() {
        let code = unrotated_surface_code(3);
        assert_eq!(code.num_entangling_steps(), 4);
    }

    #[test]
    fn data_and_ancilla_alternate_on_lattice() {
        let code = unrotated_surface_code(3);
        for q in code.qubits() {
            let parity = (q.coord.row + q.coord.col).rem_euclid(2);
            match q.role {
                QubitRole::Data => assert_eq!(parity, 0),
                QubitRole::Ancilla => assert_eq!(parity, 1),
            }
        }
    }
}
