//! Property-based tests for the QEC code constructors.
//!
//! Every code family the study compiles — repetition codes, rotated,
//! unrotated and rectangular surface codes, and the lattice-surgery merged
//! patches — must satisfy the stabilizer-code invariants for *all* the
//! distances the benchmarks sweep, not just the hand-written examples.

use proptest::prelude::*;

use qccd_qec::{
    memory_experiment, merged_xx_patch, merged_zz_patch, rectangular_rotated_surface_code,
    repetition_code, rotated_surface_code, unrotated_surface_code, CodeLayout, MemoryBasis,
    QubitRole, StabilizerBasis,
};

/// Checks the structural invariants every layout must satisfy.
fn check_layout(layout: &CodeLayout) -> Result<(), TestCaseError> {
    // Stabilizer commutation, logical-operator commutation and schedule
    // consistency.
    prop_assert_eq!(layout.validate(), Ok(()), "{}", layout.name());

    // Roles partition the qubits and match the stabilizer structure.
    let data = layout.data_qubits();
    let ancilla = layout.ancilla_qubits();
    prop_assert_eq!(data.len() + ancilla.len(), layout.num_qubits());
    prop_assert_eq!(layout.stabilizers().len(), ancilla.len());
    for stab in layout.stabilizers() {
        prop_assert_eq!(layout.role(stab.ancilla), QubitRole::Ancilla);
        prop_assert!(stab.weight() >= 1);
        for q in stab.data_support() {
            prop_assert_eq!(layout.role(q), QubitRole::Data);
        }
    }

    // Interaction edges connect ancillas to data qubits with positive weight.
    for edge in layout.interaction_edges() {
        prop_assert_eq!(layout.role(edge.ancilla), QubitRole::Ancilla);
        prop_assert_eq!(layout.role(edge.data), QubitRole::Data);
        prop_assert!(edge.weight > 0.0);
    }

    // No two qubits share a coordinate.
    let mut coords: Vec<_> = layout.qubits().iter().map(|q| q.coord).collect();
    coords.sort_unstable();
    coords.dedup();
    prop_assert_eq!(coords.len(), layout.num_qubits());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn repetition_codes_are_valid(distance in 2usize..12) {
        let layout = repetition_code(distance);
        prop_assert_eq!(layout.num_qubits(), 2 * distance - 1);
        check_layout(&layout)?;
        // A repetition code only checks one basis.
        prop_assert!(layout
            .stabilizers()
            .iter()
            .all(|s| s.basis == StabilizerBasis::Z));
    }

    #[test]
    fn rotated_surface_codes_are_valid(distance in 2usize..9) {
        let layout = rotated_surface_code(distance);
        prop_assert_eq!(layout.num_qubits(), 2 * distance * distance - 1);
        prop_assert_eq!(layout.logical_z().len(), distance);
        prop_assert_eq!(layout.logical_x().len(), distance);
        check_layout(&layout)?;
    }

    #[test]
    fn unrotated_surface_codes_are_valid(distance in 2usize..6) {
        let layout = unrotated_surface_code(distance);
        check_layout(&layout)?;
        // The unrotated code uses more qubits than the rotated code of the
        // same distance — that is exactly why the rotated code is the
        // primary workload.
        prop_assert!(layout.num_qubits() > rotated_surface_code(distance).num_qubits());
    }

    #[test]
    fn rectangular_codes_are_valid(rows in 2usize..7, cols in 2usize..7) {
        let layout = rectangular_rotated_surface_code(rows, cols);
        prop_assert_eq!(layout.num_qubits(), 2 * rows * cols - 1);
        prop_assert_eq!(layout.distance(), rows.min(cols));
        prop_assert_eq!(layout.logical_z().len(), cols);
        prop_assert_eq!(layout.logical_x().len(), rows);
        check_layout(&layout)?;
    }

    #[test]
    fn surgery_patches_are_valid(distance in 2usize..6) {
        check_layout(&merged_zz_patch(distance))?;
        check_layout(&merged_xx_patch(distance))?;
    }

    #[test]
    fn memory_experiments_have_consistent_annotations(
        distance in 2usize..5,
        rounds in 1usize..4,
        x_basis in any::<bool>(),
    ) {
        let layout = rotated_surface_code(distance);
        let basis = if x_basis { MemoryBasis::X } else { MemoryBasis::Z };
        let experiment = memory_experiment(&layout, rounds, basis);
        prop_assert_eq!(experiment.rounds, rounds);
        prop_assert_eq!(experiment.num_detectors, experiment.circuit.detectors().len());
        prop_assert!(experiment.circuit.validate_annotations().is_ok());
        // Every parity-check round measures each ancilla once, plus the
        // final transversal data measurement.
        let expected_measurements =
            rounds * layout.ancilla_qubits().len() + layout.data_qubits().len();
        prop_assert_eq!(experiment.circuit.num_measurements(), expected_measurements);
        // One logical observable.
        prop_assert_eq!(experiment.circuit.observables().len(), 1);
    }
}
