//! # qccd-service
//!
//! A **real-time streaming decode service**: the online counterpart of the
//! offline Monte-Carlo engine in `qccd-decoder`. Where the batch estimator
//! samples and decodes millions of shots per configuration after the fact,
//! this crate decodes *live* syndrome streams — one logical qubit (client)
//! per stream — at the data rate the trap produces them, which is what the
//! paper's architecture ultimately requires of its classical co-processor.
//!
//! # Architecture
//!
//! ```text
//! client streams ──► per-stream sessions ──► per-program batcher shards
//!   (own lock, inflight          (frames or shot-major   (own lock, pending
//!    + reorder state)             64-shot word blocks)    word + spare pool)
//!                                                  │ flush on full word,
//!                                                  │ deadline (dedicated
//!                                                  ▼ flusher thread), close
//!                                            decode job queue
//!                                                  │
//!                              worker pool (shared warm MemoSnapshot)
//!                                                  │
//!                per-stream reorder (stream's own lock) ──► ordered
//!                                                  corrections back
//! ```
//!
//! * [`DecodeService::open_stream`] compiles `(architecture, distance)`
//!   through the shared
//!   [`compile cache`](qccd_core::compile_cache) — opening many
//!   streams of the same configuration compiles once — builds the decoder,
//!   and warms one [`MemoSnapshot`](qccd_decoder::MemoSnapshot) per
//!   [`DecodeProgram`] that every worker adopts.
//! * Pending frames from **all** streams of a program are coalesced by that
//!   program's **batcher shard** into 64-shot words (the unit the PR-4
//!   word-parallel triage path decodes at full tilt) and flushed on a full
//!   word, when the oldest pending frame hits the configured deadline (a
//!   dedicated flusher thread waits out the exact deadline, so a busy
//!   worker pool never delays a partial word), or when the last stream
//!   contributing to the word closes. Each shard has its own mutex:
//!   submissions to different programs never contend, and delivery state
//!   lives behind each stream's own lock — there is no global hot-path
//!   lock.
//! * Shot-major clients (the loadgen harness, co-located front-ends) can
//!   submit pre-transposed [`WordBlock`]s
//!   ([`StreamSender::submit_word_batch`], the `frames_packed` wire
//!   command): the batcher folds each 64-shot plane word in with a
//!   shift-OR, deleting the per-frame transpose from the hot path.
//! * Per-stream queues are bounded ([`ServiceConfig::stream_queue_shots`]):
//!   submission blocks (or [`StreamSender::try_submit`] refuses) once a
//!   stream has that many frames in flight — backpressure instead of
//!   unbounded memory.
//! * Corrections are delivered **in submission order per stream**
//!   (a reorder stage undoes worker races), each as an observable-flip
//!   bitmask — bit-identical to what
//!   [`Decoder::decode_batch`](qccd_decoder::Decoder::decode_batch) would
//!   have produced offline on the same frames, whatever the batching,
//!   stream interleaving, deadline or worker count (property-tested in
//!   `tests/prop_service_identity.rs`).
//! * [`DecodeService::metrics`] exposes live counters: queue depth,
//!   shots/s, flush-cause split and a log-bucketed submit→correction
//!   latency histogram (p50/p99).
//!
//! The [`net`] module wires the service to a `std::net` TCP JSON-lines
//! front-end (the `artifacts serve` subcommand), and [`loadgen`] replays
//! sampled [`SyndromeChunk`](qccd_sim::SyndromeChunk)s against either the
//! in-process service or a remote endpoint at a target rate, verifying
//! bit-identity against the offline batch decode and reporting
//! p50/p99/throughput.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod loadgen;
pub mod metrics;
pub mod net;
mod program;
mod service;

pub use loadgen::{
    FrontierPoint, FrontierReport, LoadgenOptions, LoadgenReport, StageBreakdown, StageSummary,
};
pub use metrics::ServiceMetrics;
pub use net::{NetClient, NetServer};
pub use program::DecodeProgram;
// Re-exported so service hosts can configure and read telemetry without a
// direct qccd-telemetry dependency.
pub use qccd_telemetry::{Registry as TelemetryRegistry, RegistrySnapshot, TelemetryConfig};
pub use service::{
    Correction, DecodeService, ServiceConfig, StreamHandle, StreamReceiver, StreamSender, WordBlock,
};

/// Errors surfaced by the decode service.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// Compiling the requested `(architecture, distance)` failed.
    Compile(String),
    /// The circuit's detector/observable annotations are inconsistent.
    InvalidCircuit(String),
    /// The decoding problem predicts more than 64 observables (corrections
    /// are delivered as a `u64` flip bitmask).
    TooManyObservables(usize),
    /// A submitted frame fired a detector index outside the program.
    DetectorOutOfRange {
        /// The offending detector index.
        detector: usize,
        /// Number of detectors of the stream's program.
        num_detectors: usize,
    },
    /// A submitted shot-major word block is malformed (wrong plane count,
    /// shot count outside `1..=64`, or stray bits at or above the count).
    InvalidWordBlock(&'static str),
    /// A shot-major word block carries more shots than the stream's bounded
    /// queue can ever hold (blocks are never split, so it could not be
    /// submitted even against an empty queue).
    WordBlockTooLarge {
        /// Shots the block carries.
        count: usize,
        /// The configured per-stream queue bound.
        stream_queue_shots: usize,
    },
    /// The stream (or the whole service) has been closed.
    StreamClosed,
    /// The stream's bounded queue is full (returned by `try_submit`).
    Backpressure,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Compile(e) => write!(f, "compile failed: {e}"),
            ServiceError::InvalidCircuit(e) => write!(f, "invalid circuit annotations: {e}"),
            ServiceError::TooManyObservables(n) => {
                write!(f, "{n} observables exceed the 64-bit correction mask")
            }
            ServiceError::DetectorOutOfRange {
                detector,
                num_detectors,
            } => write!(
                f,
                "detector {detector} out of range (program has {num_detectors})"
            ),
            ServiceError::InvalidWordBlock(why) => write!(f, "invalid word block: {why}"),
            ServiceError::WordBlockTooLarge {
                count,
                stream_queue_shots,
            } => write!(
                f,
                "word block of {count} shots exceeds the stream queue bound of \
                 {stream_queue_shots}"
            ),
            ServiceError::StreamClosed => write!(f, "stream closed"),
            ServiceError::Backpressure => write!(f, "stream queue full"),
        }
    }
}

impl std::error::Error for ServiceError {}
