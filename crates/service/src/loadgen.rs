//! Replay load generator: samples syndrome frames offline, drives the
//! decode service with them at a target rate across many streams (and,
//! over TCP, across many **connections**), verifies that every correction
//! is bit-identical to the offline
//! [`Decoder::decode_batch`](qccd_decoder::Decoder::decode_batch) on the
//! same frames, and reports throughput and latency.
//!
//! Shots are distributed round-robin: global shot `i` goes to stream
//! `i % streams` as its `i / streams`-th frame, so the offline reference
//! and the per-stream corrections can be compared one to one. Over TCP,
//! stream `s` is driven by connection `s % connections`, each connection
//! on its own submission thread — the saturation harness that exercises
//! the sharded hot path from many sockets at once.
//!
//! [`run_frontier_over_tcp`] sweeps the throughput/latency **frontier**:
//! one unthrottled calibration run finds the saturation rate, then
//! throttled replays at fractions of it map out how latency grows as the
//! offered load approaches saturation.

use std::sync::Arc;
use std::time::{Duration, Instant};

use qccd_decoder::{DecodeScratch, DecoderKind};
use qccd_sim::{sample_detector_chunks, NoisyCircuit};
use qccd_telemetry::{snapshot_from_json, RegistrySnapshot};
use serde_json::Value;

use crate::net::NetClient;
use crate::service::{DecodeService, WordBlock};
use crate::{Correction, DecodeProgram, ServiceError, ServiceMetrics};

/// Load-generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadgenOptions {
    /// Concurrent logical syndrome streams.
    pub streams: usize,
    /// TCP connections the streams are partitioned over (stream `s` rides
    /// connection `s % connections`, each with its own submission thread).
    /// Clamped to `1..=streams`; ignored by the in-process runner.
    pub connections: usize,
    /// Total shots replayed (across all streams).
    pub shots: usize,
    /// Sampling seed of the replayed syndromes.
    pub seed: u64,
    /// Target aggregate submission rate in shots/s (`None` = as fast as
    /// backpressure allows).
    pub rate: Option<f64>,
    /// Submit shot-major 64-shot word blocks (`frames_packed` on the wire,
    /// [`StreamSender::submit_word_batch`](crate::StreamSender::submit_word_batch)
    /// in process) instead of per-shot frames — the pre-transposed fast
    /// path.
    pub shot_major: bool,
    /// Verify bit-identity of every correction against the offline batch
    /// decode (also enables the offline-throughput baseline).
    pub verify: bool,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        LoadgenOptions {
            streams: 4,
            connections: 1,
            shots: 16 * 1024,
            seed: 2026,
            rate: None,
            shot_major: true,
            verify: true,
        }
    }
}

/// Latency summary of one pipeline stage, read from the unified telemetry
/// snapshot: exact call/item counters plus quantiles of the (sampled)
/// duration histogram.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageSummary {
    /// Stage invocations (exact, unsampled).
    pub calls: u64,
    /// Items (frames/shots) the stage processed (exact, unsampled).
    pub items: u64,
    /// Invocations that were timed (at sampling period 1 this equals
    /// `calls`).
    pub timed: u64,
    /// Mean duration of the timed invocations (µs).
    pub mean_us: f64,
    /// Median duration (µs, linearly interpolated).
    pub p50_us: f64,
    /// 99th-percentile duration (µs, linearly interpolated).
    pub p99_us: f64,
}

impl StageSummary {
    fn from_snapshot(snapshot: &RegistrySnapshot, stage: &str) -> Option<StageSummary> {
        let hist = snapshot.histogram(&format!("{stage}_us"))?;
        Some(StageSummary {
            calls: snapshot.counter(&format!("{stage}_calls")),
            items: snapshot.counter(&format!("{stage}_items")),
            timed: hist.count,
            mean_us: hist.mean(),
            p50_us: hist.quantile(0.50),
            p99_us: hist.quantile(0.99),
        })
    }

    fn to_json(self) -> Value {
        serde_json::json!({
            "calls": self.calls,
            "items": self.items,
            "timed": self.timed,
            "mean_us": self.mean_us,
            "p50_us": self.p50_us,
            "p99_us": self.p99_us,
        })
    }
}

/// Per-stage latency breakdown of the service pipeline: how long frames
/// waited in the batcher, how long decode jobs took, and how long
/// correction routing took.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageBreakdown {
    /// Submit→flush wait in the batcher (items = frames).
    pub batcher_wait: StageSummary,
    /// Transpose + decode of one job (items = shots).
    pub decode: StageSummary,
    /// Correction routing and delivery (items = shots).
    pub delivery: StageSummary,
}

impl StageBreakdown {
    /// Reads the breakdown out of a unified telemetry snapshot (`None`
    /// when the service ran with telemetry disabled).
    pub fn from_snapshot(snapshot: &RegistrySnapshot) -> Option<StageBreakdown> {
        Some(StageBreakdown {
            batcher_wait: StageSummary::from_snapshot(snapshot, "service.stage.batcher_wait")?,
            decode: StageSummary::from_snapshot(snapshot, "service.stage.decode")?,
            delivery: StageSummary::from_snapshot(snapshot, "service.stage.delivery")?,
        })
    }

    /// The breakdown as a JSON object.
    pub fn to_json(&self) -> Value {
        serde_json::json!({
            "batcher_wait": self.batcher_wait.to_json(),
            "decode": self.decode.to_json(),
            "delivery": self.delivery.to_json(),
        })
    }

    /// One table line per stage.
    pub fn render_pretty(&self) -> String {
        let row = |name: &str, s: &StageSummary| {
            format!(
                "  {name:<13} {:>9} calls {:>11} items   mean {:>8.1} µs   p50 {:>8.1} µs   p99 {:>8.1} µs\n",
                s.calls, s.items, s.mean_us, s.p50_us, s.p99_us
            )
        };
        let mut out = String::from("per-stage breakdown (timing sampled):\n");
        out.push_str(&row("batcher_wait", &self.batcher_wait));
        out.push_str(&row("decode", &self.decode));
        out.push_str(&row("delivery", &self.delivery));
        out
    }
}

/// The load generator's result: throughput, latency and the bit-identity
/// verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenReport {
    /// Shots replayed.
    pub shots: usize,
    /// Streams driven.
    pub streams: usize,
    /// TCP connections used (1 for the in-process runner).
    pub connections: usize,
    /// Wall-clock seconds from first submission to last correction.
    pub wall_seconds: f64,
    /// Aggregate service throughput (shots / wall).
    pub shots_per_sec: f64,
    /// Offline single-thread `decode_batch` throughput on the same frames
    /// (`None` when verification was skipped).
    pub offline_shots_per_sec: Option<f64>,
    /// `shots_per_sec / offline_shots_per_sec` — the acceptance headroom
    /// (the service target is ≥ 0.8 at d=5, p=2e-3).
    pub throughput_ratio: Option<f64>,
    /// Corrections differing from the offline reference (must be 0).
    pub mismatches: usize,
    /// Median submit→correction latency (µs). Over TCP this is measured
    /// client-side (submit wall-clock to correction arrival), so it
    /// includes the wire.
    pub p50_latency_us: f64,
    /// 99th-percentile submit→correction latency (µs).
    pub p99_latency_us: f64,
    /// The service metrics snapshot at the end of the run.
    pub metrics: ServiceMetrics,
    /// Per-stage latency breakdown (batcher wait / decode / delivery) from
    /// the service's unified telemetry; `None` when telemetry is disabled.
    pub stages: Option<StageBreakdown>,
}

impl LoadgenReport {
    /// The report as a JSON object.
    pub fn to_json(&self) -> Value {
        serde_json::json!({
            "shots": self.shots as u64,
            "streams": self.streams as u64,
            "connections": self.connections as u64,
            "wall_seconds": self.wall_seconds,
            "shots_per_sec": self.shots_per_sec,
            "offline_shots_per_sec": match self.offline_shots_per_sec {
                Some(v) => Value::from(v),
                None => Value::Null,
            },
            "throughput_ratio": match self.throughput_ratio {
                Some(v) => Value::from(v),
                None => Value::Null,
            },
            "mismatches": self.mismatches as u64,
            "p50_latency_us": self.p50_latency_us,
            "p99_latency_us": self.p99_latency_us,
            "metrics": self.metrics.to_json(),
            "stages": match &self.stages {
                Some(stages) => stages.to_json(),
                None => Value::Null,
            },
        })
    }

    /// A human-readable multi-line summary.
    pub fn render_pretty(&self) -> String {
        let mut out = format!(
            "loadgen: {} shots over {} streams ({} connection{}) in {:.3} s → {:.0} shots/s\n",
            self.shots,
            self.streams,
            self.connections,
            if self.connections == 1 { "" } else { "s" },
            self.wall_seconds,
            self.shots_per_sec
        );
        if let (Some(offline), Some(ratio)) = (self.offline_shots_per_sec, self.throughput_ratio) {
            out.push_str(&format!(
                "offline decode_batch baseline: {offline:.0} shots/s → service at {:.1}% of offline\n",
                100.0 * ratio
            ));
        }
        out.push_str(&format!(
            "latency: p50 {:.0} µs, p99 {:.0} µs; flushes: {} full-word, {} deadline, {} close ({} words)\n",
            self.p50_latency_us,
            self.p99_latency_us,
            self.metrics.full_word_flushes,
            self.metrics.deadline_flushes,
            self.metrics.close_flushes,
            self.metrics.words_flushed,
        ));
        if let Some(stages) = &self.stages {
            out.push_str(&stages.render_pretty());
        }
        out.push_str(&if self.mismatches == 0 {
            "corrections bit-identical to offline decode_batch: OK".to_string()
        } else {
            format!("MISMATCHES vs offline decode_batch: {}", self.mismatches)
        });
        out
    }
}

/// One throttled point on the throughput/latency frontier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontierPoint {
    /// Offered load (shots/s) the replay was paced at.
    pub target_rate: f64,
    /// Achieved aggregate throughput (shots/s).
    pub shots_per_sec: f64,
    /// Median submit→correction latency (µs) at this load.
    pub p50_latency_us: f64,
    /// 99th-percentile submit→correction latency (µs) at this load.
    pub p99_latency_us: f64,
}

/// A throughput/latency frontier sweep: the unthrottled calibration run
/// plus throttled points at even fractions of the saturation rate.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierReport {
    /// The unthrottled calibration run (carries the bit-identity verdict
    /// and the offline baseline).
    pub calibration: LoadgenReport,
    /// Throttled replays at `saturation * i / n` for `i in 1..=n`.
    pub points: Vec<FrontierPoint>,
}

impl FrontierReport {
    /// The frontier as a JSON object.
    pub fn to_json(&self) -> Value {
        serde_json::json!({
            "calibration": self.calibration.to_json(),
            "points": Value::Array(
                self.points
                    .iter()
                    .map(|p| {
                        serde_json::json!({
                            "target_rate": p.target_rate,
                            "shots_per_sec": p.shots_per_sec,
                            "p50_latency_us": p.p50_latency_us,
                            "p99_latency_us": p.p99_latency_us,
                        })
                    })
                    .collect(),
            ),
        })
    }

    /// A human-readable frontier table.
    pub fn render_pretty(&self) -> String {
        let mut out = self.calibration.render_pretty();
        out.push_str("\nfrontier (offered → achieved shots/s, p50/p99 µs):\n");
        for point in &self.points {
            out.push_str(&format!(
                "  {:>10.0} → {:>10.0}   p50 {:>7.0}   p99 {:>7.0}\n",
                point.target_rate, point.shots_per_sec, point.p50_latency_us, point.p99_latency_us
            ));
        }
        out
    }
}

/// Samples `shots` frames of `circuit` (fired-detector lists, global shot
/// order) with the canonical chunked sampler.
pub fn sample_frames(
    circuit: &NoisyCircuit,
    shots: usize,
    seed: u64,
) -> Result<Vec<Vec<usize>>, ServiceError> {
    Ok(index_frames_from_chunks(&sampled_chunks(
        circuit, shots, seed,
    )?))
}

/// [`sample_frames`] in the detector-major **packed** wire format
/// ([`qccd_sim::SyndromeChunk::packed_frame_into`]) — what a real client
/// would put on the wire, and the fastest ingestion path
/// ([`crate::StreamSender::submit_packed_batch`]).
pub fn sample_packed_frames(
    circuit: &NoisyCircuit,
    shots: usize,
    seed: u64,
) -> Result<Vec<Vec<u64>>, ServiceError> {
    Ok(packed_frames_from_chunks(&sampled_chunks(
        circuit, shots, seed,
    )?))
}

/// Samples the replayed syndromes once; both the wire frames and the
/// offline reference derive from these chunks.
fn sampled_chunks(
    circuit: &NoisyCircuit,
    shots: usize,
    seed: u64,
) -> Result<Vec<qccd_sim::SyndromeChunk>, ServiceError> {
    let sampler = sample_detector_chunks(circuit, shots, seed, 16 * 4096)
        .map_err(|e| ServiceError::InvalidCircuit(format!("{e:?}")))?;
    Ok(sampler.chunks().collect())
}

/// The chunks' shots as fired-detector index lists, in global shot order.
fn index_frames_from_chunks(chunks: &[qccd_sim::SyndromeChunk]) -> Vec<Vec<usize>> {
    let mut frames = Vec::new();
    let mut fired = Vec::new();
    for chunk in chunks {
        for shot in 0..chunk.num_shots() {
            chunk.fired_detectors_into(shot, &mut fired);
            frames.push(fired.clone());
        }
    }
    frames
}

/// The chunks' shots as detector-major packed frames, in global shot order.
fn packed_frames_from_chunks(chunks: &[qccd_sim::SyndromeChunk]) -> Vec<Vec<u64>> {
    let mut frames = Vec::new();
    let mut packed = Vec::new();
    for chunk in chunks {
        for shot in 0..chunk.num_shots() {
            chunk.packed_frame_into(shot, &mut packed);
            frames.push(packed.clone());
        }
    }
    frames
}

/// Pre-transposes the round-robin replay into **shot-major word blocks**:
/// `result[s]` is stream `s`'s frames (global shots `s, s+streams, …`)
/// packed 64 shots at a time into `(planes, count)` — one `u64` plane per
/// detector, bit `j` of plane `d` set iff the block's `j`-th shot fired
/// detector `d`. This is the trap-side client's representation, so the
/// transpose happens before the replay clock starts.
fn shot_major_blocks(
    frames: &[Vec<usize>],
    streams: usize,
    num_detectors: usize,
) -> Vec<Vec<(Vec<u64>, usize)>> {
    let mut per_stream: Vec<Vec<(Vec<u64>, usize)>> = vec![Vec::new(); streams];
    for (i, fired) in frames.iter().enumerate() {
        let blocks = &mut per_stream[i % streams];
        let bit = (i / streams) % 64;
        if bit == 0 {
            blocks.push((vec![0u64; num_detectors], 0));
        }
        let block = blocks.last_mut().expect("block pushed above");
        for &detector in fired {
            block.0[detector] |= 1u64 << bit;
        }
        block.1 += 1;
    }
    per_stream
}

/// Decodes the sampled chunks offline on the word-parallel batch path (one
/// warm scratch, one thread) and returns the per-shot flip masks plus the
/// decode wall time — the baseline the service throughput is measured
/// against.
fn offline_from_chunks(
    program: &DecodeProgram,
    chunks: &[qccd_sim::SyndromeChunk],
) -> (Vec<u64>, f64) {
    let mut scratch = DecodeScratch::new();
    let mut flips = Vec::new();
    let start = Instant::now();
    for chunk in chunks {
        let prediction = program.decode_batch(chunk, &mut scratch);
        for shot in 0..chunk.num_shots() {
            let mut mask = 0u64;
            for observable in 0..prediction.num_observables() {
                if prediction.predicted(shot, observable) {
                    mask |= 1u64 << observable;
                }
            }
            flips.push(mask);
        }
    }
    (flips, start.elapsed().as_secs_f64())
}

/// Sleep-based pacing toward `rate` shots/s: called before submitting shot
/// `index`, sleeps off any accumulated lead over the target schedule.
fn pace(start: Instant, index: usize, rate: Option<f64>) {
    let Some(rate) = rate else { return };
    if rate <= 0.0 {
        return;
    }
    let due = Duration::from_secs_f64(index as f64 / rate);
    let elapsed = start.elapsed();
    if due > elapsed {
        let lead = due - elapsed;
        if lead > Duration::from_micros(50) {
            std::thread::sleep(lead);
        }
    }
}

/// `p`-th percentile (0..=100) of an unsorted latency sample, in place.
fn percentile_us(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = ((p / 100.0) * (samples.len() - 1) as f64).round() as usize;
    samples[rank.min(samples.len() - 1)]
}

/// Reconstructs a [`ServiceMetrics`] snapshot from the server's `metrics`
/// JSON (the wire inverse of [`ServiceMetrics::to_json`]).
fn metrics_from_json(metrics_json: &Value) -> ServiceMetrics {
    let read = |key: &str| metrics_json.get(key).and_then(Value::as_f64).unwrap_or(0.0);
    let read_u = |key: &str| metrics_json.get(key).and_then(Value::as_u64).unwrap_or(0);
    ServiceMetrics {
        streams_open: read_u("streams_open") as usize,
        frames_submitted: read_u("frames_submitted"),
        frames_completed: read_u("frames_completed"),
        queue_depth: read_u("queue_depth"),
        words_flushed: read_u("words_flushed"),
        full_word_flushes: read_u("full_word_flushes"),
        deadline_flushes: read_u("deadline_flushes"),
        close_flushes: read_u("close_flushes"),
        dense_hits: read_u("dense_hits"),
        dense_misses: read_u("dense_misses"),
        dense_evictions: read_u("dense_evictions"),
        cluster_lanes: read_u("cluster_lanes"),
        cluster_components: read_u("cluster_components"),
        cluster_conflicts: read_u("cluster_conflicts"),
        shots_per_sec: read("shots_per_sec"),
        p50_latency_us: read("p50_latency_us"),
        p99_latency_us: read("p99_latency_us"),
    }
}

/// Drives an **in-process** [`DecodeService`] with replayed frames of
/// `circuit` and verifies bit-identity against the offline batch decode.
///
/// # Errors
///
/// Propagates stream-opening and submission failures.
pub fn run_in_process(
    service: &DecodeService,
    key: &str,
    circuit: &NoisyCircuit,
    decoder: DecoderKind,
    options: &LoadgenOptions,
) -> Result<LoadgenReport, ServiceError> {
    let streams = options.streams.max(1);
    let shots = options.shots.max(1);
    // One sampling pass feeds both the wire frames and the offline
    // reference; one program serves both the streams and the baseline.
    // Producing the wire representation (packed frames, or the shot-major
    // block transpose) is the trap-side client's job, so it happens before
    // the clock starts.
    let chunks = sampled_chunks(circuit, shots, options.seed)?;
    let program = std::sync::Arc::new(DecodeProgram::from_circuit(key, circuit.clone(), decoder)?);
    let frames = (!options.shot_major).then(|| packed_frames_from_chunks(&chunks));
    let blocks = options.shot_major.then(|| {
        shot_major_blocks(
            &index_frames_from_chunks(&chunks),
            streams,
            program.num_detectors(),
        )
    });
    let offline = options
        .verify
        .then(|| offline_from_chunks(&program, &chunks));

    let mut senders = Vec::with_capacity(streams);
    let mut collectors = Vec::with_capacity(streams);
    let per_stream_shots: Vec<usize> = (0..streams)
        .map(|s| shots / streams + usize::from(s < shots % streams))
        .collect();
    for expected in per_stream_shots.iter().copied() {
        let (sender, mut receiver) = service.open_stream_program(&program)?.split();
        senders.push(sender);
        collectors.push(std::thread::spawn(move || {
            let mut corrections = Vec::with_capacity(expected);
            while let Some(correction) = receiver.recv() {
                corrections.push(correction);
            }
            corrections
        }));
    }

    // Submit in bursts of several full words per stream: `submit_*_batch`
    // pays the shard lock once per burst instead of once per frame, which
    // is what lets the replay keep up with the word-parallel decode itself.
    // Global shot `i` still maps to stream `i % streams`, frame
    // `i / streams`.
    let start = Instant::now();
    let words_per_burst = service.config().max_batch_words.max(1);
    let mut submitted = 0usize;
    if let Some(blocks) = &blocks {
        let mut cursor = vec![0usize; streams];
        while submitted < shots {
            pace(start, submitted, options.rate);
            for (s, stream_blocks) in blocks.iter().enumerate() {
                let end = (cursor[s] + words_per_burst).min(stream_blocks.len());
                if cursor[s] < end {
                    let refs: Vec<WordBlock<'_>> = stream_blocks[cursor[s]..end]
                        .iter()
                        .map(|(planes, count)| WordBlock {
                            planes,
                            count: *count,
                        })
                        .collect();
                    submitted += refs.iter().map(|b| b.count).sum::<usize>();
                    senders[s].submit_word_batch(&refs)?;
                    cursor[s] = end;
                }
            }
        }
    } else {
        let frames = frames.as_ref().expect("frames sampled when not shot-major");
        let mut per_stream: Vec<Vec<&[u64]>> =
            vec![Vec::with_capacity(64 * words_per_burst); streams];
        let burst = 64 * words_per_burst * streams;
        while submitted < shots {
            pace(start, submitted, options.rate);
            let end = (submitted + burst).min(shots);
            for bucket in per_stream.iter_mut() {
                bucket.clear();
            }
            for (i, frame) in frames[submitted..end].iter().enumerate() {
                per_stream[(submitted + i) % streams].push(frame.as_slice());
            }
            for (s, bucket) in per_stream.iter().enumerate() {
                if !bucket.is_empty() {
                    senders[s].submit_packed_batch(bucket)?;
                }
            }
            submitted = end;
        }
    }
    for sender in &senders {
        sender.close();
    }
    let collected: Vec<Vec<Correction>> = collectors
        .into_iter()
        .map(|collector| collector.join().expect("collector panicked"))
        .collect();
    let wall_seconds = start.elapsed().as_secs_f64();

    let mut mismatches = 0usize;
    for (s, corrections) in collected.iter().enumerate() {
        assert_eq!(
            corrections.len(),
            per_stream_shots[s],
            "stream {s} delivered every correction"
        );
        for (q, correction) in corrections.iter().enumerate() {
            assert_eq!(correction.seq, q as u64, "stream {s} ordered delivery");
            if let Some((reference, _)) = &offline {
                if reference[q * streams + s] != correction.flips {
                    mismatches += 1;
                }
            }
        }
    }

    let metrics = service.metrics();
    let stages = StageBreakdown::from_snapshot(&service.telemetry_snapshot());
    let offline_shots_per_sec = offline
        .as_ref()
        .map(|(_, seconds)| shots as f64 / seconds.max(1e-9));
    let shots_per_sec = shots as f64 / wall_seconds.max(1e-9);
    Ok(LoadgenReport {
        shots,
        streams,
        connections: 1,
        wall_seconds,
        shots_per_sec,
        offline_shots_per_sec,
        throughput_ratio: offline_shots_per_sec.map(|offline| shots_per_sec / offline),
        mismatches,
        p50_latency_us: metrics.p50_latency_us,
        p99_latency_us: metrics.p99_latency_us,
        metrics,
        stages,
    })
}

/// What one TCP connection thread brings home: its streams' ordered
/// corrections (tagged with the global stream index), the client-side
/// submit→arrival latencies, and any protocol errors its reader refused
/// to deliver.
struct ConnectionResult {
    per_stream: Vec<(usize, Vec<Correction>)>,
    latencies_us: Vec<f64>,
    protocol_errors: Vec<String>,
}

/// One connection's share of the replay: submits its streams' shots in
/// global order (paced against the shared schedule), collects corrections
/// per stream, and measures client-side latency.
#[allow(clippy::too_many_arguments)]
fn drive_connection(
    mut client: NetClient,
    streams_on_conn: Vec<(usize, crate::net::NetStream)>,
    frames: Arc<Vec<Vec<usize>>>,
    streams: usize,
    per_stream_shots: Arc<Vec<usize>>,
    start: Instant,
    rate: Option<f64>,
    shot_major: bool,
    num_detectors: usize,
) -> Result<ConnectionResult, String> {
    let mut collectors = Vec::with_capacity(streams_on_conn.len());
    // Maps a global stream index to its slot on this connection.
    let mut slot_of = std::collections::HashMap::new();
    let mut ids = Vec::with_capacity(streams_on_conn.len());
    for (slot, (global, stream)) in streams_on_conn.into_iter().enumerate() {
        slot_of.insert(global, slot);
        ids.push(stream.id);
        let expected = per_stream_shots[global];
        collectors.push((
            global,
            std::thread::spawn(move || {
                let mut corrections = Vec::with_capacity(expected);
                for _ in 0..expected {
                    match stream.corrections.recv_timeout(Duration::from_secs(120)) {
                        Ok(correction) => corrections.push((correction, Instant::now())),
                        Err(_) => break,
                    }
                }
                corrections
            }),
        ));
    }

    // Submission: walk the global shot order, keep only this connection's
    // streams, buffer up to 64 frames per stream per protocol line. For
    // shot-major mode the 64-frame buffer is transposed into one
    // `frames_packed` word block at flush time.
    let mut buffered: Vec<Vec<&[usize]>> = vec![Vec::with_capacity(64); ids.len()];
    let mut submit_times: Vec<Vec<Instant>> = vec![Vec::new(); ids.len()];
    let mut planes = vec![0u64; num_detectors];
    let flush = |client: &mut NetClient,
                 slot: usize,
                 buffered: &mut Vec<&[usize]>,
                 submit_times: &mut Vec<Instant>,
                 planes: &mut Vec<u64>|
     -> Result<(), String> {
        if buffered.is_empty() {
            return Ok(());
        }
        let now = Instant::now();
        submit_times.extend(std::iter::repeat_n(now, buffered.len()));
        if shot_major {
            planes.iter_mut().for_each(|w| *w = 0);
            for (j, fired) in buffered.iter().enumerate() {
                for &detector in *fired {
                    planes[detector] |= 1u64 << j;
                }
            }
            client.submit_packed_words(ids[slot], &[(planes.clone(), buffered.len())])?;
        } else {
            let frames: Vec<Vec<usize>> = buffered.iter().map(|f| f.to_vec()).collect();
            client.submit_frames(ids[slot], &frames)?;
        }
        buffered.clear();
        Ok(())
    };
    for (i, frame) in frames.iter().enumerate() {
        let Some(&slot) = slot_of.get(&(i % streams)) else {
            continue;
        };
        pace(start, i, rate);
        buffered[slot].push(frame.as_slice());
        if buffered[slot].len() >= 64 {
            let (bucket, times) = (&mut buffered[slot], &mut submit_times[slot]);
            flush(&mut client, slot, bucket, times, &mut planes)?;
        }
    }
    for slot in 0..ids.len() {
        let (bucket, times) = (&mut buffered[slot], &mut submit_times[slot]);
        flush(&mut client, slot, bucket, times, &mut planes)?;
    }
    for &id in &ids {
        client.close_stream(id)?;
    }

    let mut per_stream = Vec::with_capacity(collectors.len());
    let mut latencies_us = Vec::new();
    for (global, collector) in collectors {
        let collected = collector.join().expect("collector panicked");
        let slot = slot_of[&global];
        let mut corrections = Vec::with_capacity(collected.len());
        for (correction, arrival) in collected {
            if let Some(submitted) = submit_times[slot].get(correction.seq as usize) {
                latencies_us.push(arrival.duration_since(*submitted).as_secs_f64() * 1e6);
            }
            corrections.push(correction);
        }
        per_stream.push((global, corrections));
    }
    Ok(ConnectionResult {
        per_stream,
        latencies_us,
        protocol_errors: client.take_protocol_errors(),
    })
}

/// Drives a **remote** JSON-lines decode server with replayed frames for
/// the paper's `(arch, distance)` memory workload, over
/// `options.connections` concurrent TCP connections. The syndromes, and
/// the offline verification reference, are produced locally from the
/// identical (pure) compile, so bit-identity checking works across the
/// wire.
///
/// `wire` is `(topology, wiring)` in the protocol vocabulary (e.g.
/// `("grid", "standard")`); `shutdown_after` sends `{"cmd":"shutdown"}` at
/// the end (the CI smoke uses this to stop the server).
///
/// # Errors
///
/// Transport failures, server-side open failures, protocol errors the
/// client reader refused to deliver, and local compile errors (as strings,
/// ready for CLI display).
#[allow(clippy::too_many_arguments)]
pub fn run_over_tcp(
    addr: &str,
    wire: (&str, &str),
    capacity: usize,
    gate_improvement: f64,
    distance: usize,
    decoder: DecoderKind,
    options: &LoadgenOptions,
    shutdown_after: bool,
) -> Result<LoadgenReport, String> {
    let (topology, wiring) = wire;
    let arch = crate::net::parse_arch(topology, capacity, wiring, gate_improvement)?;
    let program = DecodeProgram::compile(&arch, distance, decoder).map_err(|e| e.to_string())?;
    let streams = options.streams.max(1);
    let connections = options.connections.clamp(1, streams);
    let shots = options.shots.max(1);
    // One sampling pass feeds both the wire frames (index lists — the JSON
    // protocol's vocabulary; shot-major blocks are transposed from them at
    // flush time) and the offline verification reference.
    let chunks =
        sampled_chunks(program.circuit(), shots, options.seed).map_err(|e| e.to_string())?;
    let frames = Arc::new(index_frames_from_chunks(&chunks));
    let offline = options
        .verify
        .then(|| offline_from_chunks(&program, &chunks));
    drop(chunks);
    let per_stream_shots: Arc<Vec<usize>> = Arc::new(
        (0..streams)
            .map(|s| shots / streams + usize::from(s < shots % streams))
            .collect(),
    );

    // Connect and open every stream before the clock starts: stream `s`
    // rides connection `s % connections`.
    let mut conn_streams: Vec<Vec<(usize, crate::net::NetStream)>> = Vec::new();
    let mut clients = Vec::with_capacity(connections);
    for _ in 0..connections {
        let mut client = NetClient::connect(addr).map_err(|e| e.to_string())?;
        client.ping()?;
        clients.push(client);
        conn_streams.push(Vec::new());
    }
    for s in 0..streams {
        let conn = s % connections;
        let stream = clients[conn].open_stream(
            topology,
            capacity,
            wiring,
            gate_improvement,
            distance,
            decoder,
        )?;
        conn_streams[conn].push((s, stream));
    }

    let start = Instant::now();
    let num_detectors = program.num_detectors();
    let workers: Vec<_> = clients
        .into_iter()
        .zip(conn_streams)
        .map(|(client, streams_on_conn)| {
            let frames = Arc::clone(&frames);
            let per_stream_shots = Arc::clone(&per_stream_shots);
            let rate = options.rate;
            let shot_major = options.shot_major;
            std::thread::spawn(move || {
                drive_connection(
                    client,
                    streams_on_conn,
                    frames,
                    streams,
                    per_stream_shots,
                    start,
                    rate,
                    shot_major,
                    num_detectors,
                )
            })
        })
        .collect();
    let mut results = Vec::with_capacity(workers.len());
    for worker in workers {
        results.push(worker.join().expect("connection thread panicked")?);
    }
    let wall_seconds = start.elapsed().as_secs_f64();

    let protocol_errors: Vec<&String> = results
        .iter()
        .flat_map(|r| r.protocol_errors.iter())
        .collect();
    if !protocol_errors.is_empty() {
        return Err(format!(
            "{} protocol errors, first: {}",
            protocol_errors.len(),
            protocol_errors[0]
        ));
    }

    let mut mismatches = 0usize;
    let mut missing = 0usize;
    let mut latencies_us = Vec::new();
    for result in &results {
        latencies_us.extend_from_slice(&result.latencies_us);
        for (s, corrections) in &result.per_stream {
            missing += per_stream_shots[*s] - corrections.len();
            for (q, correction) in corrections.iter().enumerate() {
                if correction.seq != q as u64 {
                    mismatches += 1;
                } else if let Some((reference, _)) = &offline {
                    if reference[q * streams + s] != correction.flips {
                        mismatches += 1;
                    }
                }
            }
        }
    }
    if missing > 0 {
        return Err(format!("{missing} corrections never arrived"));
    }
    let p50_latency_us = percentile_us(&mut latencies_us, 50.0);
    let p99_latency_us = percentile_us(&mut latencies_us, 99.0);

    let mut tail = NetClient::connect(addr).map_err(|e| e.to_string())?;
    let full = tail.metrics_full()?;
    let metrics = metrics_from_json(full.get("metrics").unwrap_or(&Value::Null));
    let stages = full
        .get("telemetry")
        .map(snapshot_from_json)
        .as_ref()
        .and_then(StageBreakdown::from_snapshot);
    if shutdown_after {
        tail.shutdown_server()?;
    }

    let offline_shots_per_sec = offline
        .as_ref()
        .map(|(_, seconds)| shots as f64 / seconds.max(1e-9));
    let shots_per_sec = shots as f64 / wall_seconds.max(1e-9);
    Ok(LoadgenReport {
        shots,
        streams,
        connections,
        wall_seconds,
        shots_per_sec,
        offline_shots_per_sec,
        throughput_ratio: offline_shots_per_sec.map(|offline| shots_per_sec / offline),
        mismatches,
        p50_latency_us,
        p99_latency_us,
        metrics,
        stages,
    })
}

/// Sweeps the **throughput/latency frontier** against a remote server: one
/// unthrottled calibration replay finds the saturation rate, then `points`
/// throttled replays at `saturation * i / points` (for `i in 1..=points`)
/// measure how client-observed latency grows with offered load. The
/// calibration run carries the bit-identity verdict (per `options.verify`);
/// the throttled points skip re-verification — the frames are identical.
///
/// # Errors
///
/// Any failure of the underlying [`run_over_tcp`] replays.
#[allow(clippy::too_many_arguments)]
pub fn run_frontier_over_tcp(
    addr: &str,
    wire: (&str, &str),
    capacity: usize,
    gate_improvement: f64,
    distance: usize,
    decoder: DecoderKind,
    options: &LoadgenOptions,
    points: usize,
    shutdown_after: bool,
) -> Result<FrontierReport, String> {
    let points = points.max(1);
    let calibration_options = LoadgenOptions {
        rate: None,
        ..*options
    };
    let calibration = run_over_tcp(
        addr,
        wire,
        capacity,
        gate_improvement,
        distance,
        decoder,
        &calibration_options,
        false,
    )?;
    let saturation = calibration.shots_per_sec.max(1.0);
    let mut frontier = Vec::with_capacity(points);
    for i in 1..=points {
        let target_rate = saturation * i as f64 / points as f64;
        let point_options = LoadgenOptions {
            rate: Some(target_rate),
            verify: false,
            ..*options
        };
        let report = run_over_tcp(
            addr,
            wire,
            capacity,
            gate_improvement,
            distance,
            decoder,
            &point_options,
            false,
        )?;
        frontier.push(FrontierPoint {
            target_rate,
            shots_per_sec: report.shots_per_sec,
            p50_latency_us: report.p50_latency_us,
            p99_latency_us: report.p99_latency_us,
        });
    }
    if shutdown_after {
        let mut tail = NetClient::connect(addr).map_err(|e| e.to_string())?;
        tail.shutdown_server()?;
    }
    Ok(FrontierReport {
        calibration,
        points: frontier,
    })
}
