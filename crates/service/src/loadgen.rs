//! Replay load generator: samples syndrome frames offline, drives the
//! decode service with them at a target rate across many streams, verifies
//! that every correction is bit-identical to the offline
//! [`Decoder::decode_batch`](qccd_decoder::Decoder::decode_batch) on the
//! same frames, and reports throughput and latency.
//!
//! Shots are distributed round-robin: global shot `i` goes to stream
//! `i % streams` as its `i / streams`-th frame, so the offline reference
//! and the per-stream corrections can be compared one to one.

use std::time::{Duration, Instant};

use qccd_decoder::{DecodeScratch, DecoderKind};
use qccd_sim::{sample_detector_chunks, NoisyCircuit};
use serde_json::Value;

use crate::net::NetClient;
use crate::service::DecodeService;
use crate::{DecodeProgram, ServiceError, ServiceMetrics};

/// Load-generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadgenOptions {
    /// Concurrent logical syndrome streams.
    pub streams: usize,
    /// Total shots replayed (across all streams).
    pub shots: usize,
    /// Sampling seed of the replayed syndromes.
    pub seed: u64,
    /// Target aggregate submission rate in shots/s (`None` = as fast as
    /// backpressure allows).
    pub rate: Option<f64>,
    /// Verify bit-identity of every correction against the offline batch
    /// decode (also enables the offline-throughput baseline).
    pub verify: bool,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        LoadgenOptions {
            streams: 4,
            shots: 16 * 1024,
            seed: 2026,
            rate: None,
            verify: true,
        }
    }
}

/// The load generator's result: throughput, latency and the bit-identity
/// verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenReport {
    /// Shots replayed.
    pub shots: usize,
    /// Streams driven.
    pub streams: usize,
    /// Wall-clock seconds from first submission to last correction.
    pub wall_seconds: f64,
    /// Aggregate service throughput (shots / wall).
    pub shots_per_sec: f64,
    /// Offline single-thread `decode_batch` throughput on the same frames
    /// (`None` when verification was skipped).
    pub offline_shots_per_sec: Option<f64>,
    /// `shots_per_sec / offline_shots_per_sec` — the acceptance headroom
    /// (the service target is ≥ 0.8 at d=5, p=2e-3).
    pub throughput_ratio: Option<f64>,
    /// Corrections differing from the offline reference (must be 0).
    pub mismatches: usize,
    /// Median submit→correction latency (µs).
    pub p50_latency_us: f64,
    /// 99th-percentile submit→correction latency (µs).
    pub p99_latency_us: f64,
    /// The service metrics snapshot at the end of the run.
    pub metrics: ServiceMetrics,
}

impl LoadgenReport {
    /// The report as a JSON object.
    pub fn to_json(&self) -> Value {
        serde_json::json!({
            "shots": self.shots as u64,
            "streams": self.streams as u64,
            "wall_seconds": self.wall_seconds,
            "shots_per_sec": self.shots_per_sec,
            "offline_shots_per_sec": match self.offline_shots_per_sec {
                Some(v) => Value::from(v),
                None => Value::Null,
            },
            "throughput_ratio": match self.throughput_ratio {
                Some(v) => Value::from(v),
                None => Value::Null,
            },
            "mismatches": self.mismatches as u64,
            "p50_latency_us": self.p50_latency_us,
            "p99_latency_us": self.p99_latency_us,
            "metrics": self.metrics.to_json(),
        })
    }

    /// A human-readable multi-line summary.
    pub fn render_pretty(&self) -> String {
        let mut out = format!(
            "loadgen: {} shots over {} streams in {:.3} s → {:.0} shots/s\n",
            self.shots, self.streams, self.wall_seconds, self.shots_per_sec
        );
        if let (Some(offline), Some(ratio)) = (self.offline_shots_per_sec, self.throughput_ratio) {
            out.push_str(&format!(
                "offline decode_batch baseline: {offline:.0} shots/s → service at {:.1}% of offline\n",
                100.0 * ratio
            ));
        }
        out.push_str(&format!(
            "latency: p50 {:.0} µs, p99 {:.0} µs; flushes: {} full-word, {} deadline ({} words)\n",
            self.p50_latency_us,
            self.p99_latency_us,
            self.metrics.full_word_flushes,
            self.metrics.deadline_flushes,
            self.metrics.words_flushed,
        ));
        out.push_str(&if self.mismatches == 0 {
            "corrections bit-identical to offline decode_batch: OK".to_string()
        } else {
            format!("MISMATCHES vs offline decode_batch: {}", self.mismatches)
        });
        out
    }
}

/// Samples `shots` frames of `circuit` (fired-detector lists, global shot
/// order) with the canonical chunked sampler.
pub fn sample_frames(
    circuit: &NoisyCircuit,
    shots: usize,
    seed: u64,
) -> Result<Vec<Vec<usize>>, ServiceError> {
    Ok(index_frames_from_chunks(&sampled_chunks(
        circuit, shots, seed,
    )?))
}

/// [`sample_frames`] in the detector-major **packed** wire format
/// ([`qccd_sim::SyndromeChunk::packed_frame_into`]) — what a real client
/// would put on the wire, and the fastest ingestion path
/// ([`crate::StreamSender::submit_packed_batch`]).
pub fn sample_packed_frames(
    circuit: &NoisyCircuit,
    shots: usize,
    seed: u64,
) -> Result<Vec<Vec<u64>>, ServiceError> {
    Ok(packed_frames_from_chunks(&sampled_chunks(
        circuit, shots, seed,
    )?))
}

/// Samples the replayed syndromes once; both the wire frames and the
/// offline reference derive from these chunks.
fn sampled_chunks(
    circuit: &NoisyCircuit,
    shots: usize,
    seed: u64,
) -> Result<Vec<qccd_sim::SyndromeChunk>, ServiceError> {
    let sampler = sample_detector_chunks(circuit, shots, seed, 16 * 4096)
        .map_err(|e| ServiceError::InvalidCircuit(format!("{e:?}")))?;
    Ok(sampler.chunks().collect())
}

/// The chunks' shots as fired-detector index lists, in global shot order.
fn index_frames_from_chunks(chunks: &[qccd_sim::SyndromeChunk]) -> Vec<Vec<usize>> {
    let mut frames = Vec::new();
    let mut fired = Vec::new();
    for chunk in chunks {
        for shot in 0..chunk.num_shots() {
            chunk.fired_detectors_into(shot, &mut fired);
            frames.push(fired.clone());
        }
    }
    frames
}

/// The chunks' shots as detector-major packed frames, in global shot order.
fn packed_frames_from_chunks(chunks: &[qccd_sim::SyndromeChunk]) -> Vec<Vec<u64>> {
    let mut frames = Vec::new();
    let mut packed = Vec::new();
    for chunk in chunks {
        for shot in 0..chunk.num_shots() {
            chunk.packed_frame_into(shot, &mut packed);
            frames.push(packed.clone());
        }
    }
    frames
}

/// Decodes the sampled chunks offline on the word-parallel batch path (one
/// warm scratch, one thread) and returns the per-shot flip masks plus the
/// decode wall time — the baseline the service throughput is measured
/// against.
fn offline_from_chunks(
    program: &DecodeProgram,
    chunks: &[qccd_sim::SyndromeChunk],
) -> (Vec<u64>, f64) {
    let mut scratch = DecodeScratch::new();
    let mut flips = Vec::new();
    let start = Instant::now();
    for chunk in chunks {
        let prediction = program.decode_batch(chunk, &mut scratch);
        for shot in 0..chunk.num_shots() {
            let mut mask = 0u64;
            for observable in 0..prediction.num_observables() {
                if prediction.predicted(shot, observable) {
                    mask |= 1u64 << observable;
                }
            }
            flips.push(mask);
        }
    }
    (flips, start.elapsed().as_secs_f64())
}

/// Sleep-based pacing toward `rate` shots/s: called before submitting shot
/// `index`, sleeps off any accumulated lead over the target schedule.
fn pace(start: Instant, index: usize, rate: Option<f64>) {
    let Some(rate) = rate else { return };
    if rate <= 0.0 {
        return;
    }
    let due = Duration::from_secs_f64(index as f64 / rate);
    let elapsed = start.elapsed();
    if due > elapsed {
        let lead = due - elapsed;
        if lead > Duration::from_micros(50) {
            std::thread::sleep(lead);
        }
    }
}

/// Drives an **in-process** [`DecodeService`] with replayed frames of
/// `circuit` and verifies bit-identity against the offline batch decode.
///
/// # Errors
///
/// Propagates stream-opening and submission failures.
pub fn run_in_process(
    service: &DecodeService,
    key: &str,
    circuit: &NoisyCircuit,
    decoder: DecoderKind,
    options: &LoadgenOptions,
) -> Result<LoadgenReport, ServiceError> {
    let streams = options.streams.max(1);
    let shots = options.shots.max(1);
    // One sampling pass feeds both the wire frames and the offline
    // reference; one program serves both the streams and the baseline.
    // Producing the packed wire frames is the trap-side client's job, so it
    // happens before the clock starts.
    let chunks = sampled_chunks(circuit, shots, options.seed)?;
    let frames = packed_frames_from_chunks(&chunks);
    let program = std::sync::Arc::new(DecodeProgram::from_circuit(key, circuit.clone(), decoder)?);
    let offline = options
        .verify
        .then(|| offline_from_chunks(&program, &chunks));

    let mut senders = Vec::with_capacity(streams);
    let mut collectors = Vec::with_capacity(streams);
    let per_stream_shots: Vec<usize> = (0..streams)
        .map(|s| shots / streams + usize::from(s < shots % streams))
        .collect();
    for expected in per_stream_shots.iter().copied() {
        let (sender, mut receiver) = service.open_stream_program(&program)?.split();
        senders.push(sender);
        collectors.push(std::thread::spawn(move || {
            let mut corrections = Vec::with_capacity(expected);
            while let Some(correction) = receiver.recv() {
                corrections.push(correction);
            }
            corrections
        }));
    }

    // Submit in bursts of several full words per stream: `submit_batch`
    // pays the service lock once per burst instead of once per frame, which
    // is what lets the replay keep up with the word-parallel decode itself.
    // Global shot `i` still maps to stream `i % streams`, frame
    // `i / streams`.
    let start = Instant::now();
    let words_per_burst = service.config().max_batch_words.max(1);
    let mut per_stream: Vec<Vec<&[u64]>> = vec![Vec::with_capacity(64 * words_per_burst); streams];
    let burst = 64 * words_per_burst * streams;
    let mut submitted = 0usize;
    while submitted < shots {
        pace(start, submitted, options.rate);
        let end = (submitted + burst).min(shots);
        for bucket in per_stream.iter_mut() {
            bucket.clear();
        }
        for (i, frame) in frames[submitted..end].iter().enumerate() {
            per_stream[(submitted + i) % streams].push(frame.as_slice());
        }
        for (s, bucket) in per_stream.iter().enumerate() {
            if !bucket.is_empty() {
                senders[s].submit_packed_batch(bucket)?;
            }
        }
        submitted = end;
    }
    for sender in &senders {
        sender.close();
    }
    let collected: Vec<Vec<crate::Correction>> = collectors
        .into_iter()
        .map(|collector| collector.join().expect("collector panicked"))
        .collect();
    let wall_seconds = start.elapsed().as_secs_f64();

    let mut mismatches = 0usize;
    for (s, corrections) in collected.iter().enumerate() {
        assert_eq!(
            corrections.len(),
            per_stream_shots[s],
            "stream {s} delivered every correction"
        );
        for (q, correction) in corrections.iter().enumerate() {
            assert_eq!(correction.seq, q as u64, "stream {s} ordered delivery");
            if let Some((reference, _)) = &offline {
                if reference[q * streams + s] != correction.flips {
                    mismatches += 1;
                }
            }
        }
    }

    let metrics = service.metrics();
    let offline_shots_per_sec = offline
        .as_ref()
        .map(|(_, seconds)| shots as f64 / seconds.max(1e-9));
    let shots_per_sec = shots as f64 / wall_seconds.max(1e-9);
    Ok(LoadgenReport {
        shots,
        streams,
        wall_seconds,
        shots_per_sec,
        offline_shots_per_sec,
        throughput_ratio: offline_shots_per_sec.map(|offline| shots_per_sec / offline),
        mismatches,
        p50_latency_us: metrics.p50_latency_us,
        p99_latency_us: metrics.p99_latency_us,
        metrics,
    })
}

/// Drives a **remote** JSON-lines decode server with replayed frames for
/// the paper's `(arch, distance)` memory workload. The syndromes, and the
/// offline verification reference, are produced locally from the identical
/// (pure) compile, so bit-identity checking works across the wire.
///
/// `wire` is `(topology, wiring)` in the protocol vocabulary (e.g.
/// `("grid", "standard")`); `shutdown_after` sends `{"cmd":"shutdown"}` at
/// the end (the CI smoke uses this to stop the server).
///
/// # Errors
///
/// Transport failures, server-side open failures, and local compile errors
/// (as strings, ready for CLI display).
#[allow(clippy::too_many_arguments)]
pub fn run_over_tcp(
    addr: &str,
    wire: (&str, &str),
    capacity: usize,
    gate_improvement: f64,
    distance: usize,
    decoder: DecoderKind,
    options: &LoadgenOptions,
    shutdown_after: bool,
) -> Result<LoadgenReport, String> {
    let (topology, wiring) = wire;
    let arch = crate::net::parse_arch(topology, capacity, wiring, gate_improvement)?;
    let program = DecodeProgram::compile(&arch, distance, decoder).map_err(|e| e.to_string())?;
    let streams = options.streams.max(1);
    let shots = options.shots.max(1);
    // One sampling pass feeds both the wire frames (index lists — the JSON
    // protocol's vocabulary) and the offline verification reference.
    let chunks =
        sampled_chunks(program.circuit(), shots, options.seed).map_err(|e| e.to_string())?;
    let frames = index_frames_from_chunks(&chunks);
    let offline = options
        .verify
        .then(|| offline_from_chunks(&program, &chunks));
    drop(chunks);

    let mut client = NetClient::connect(addr).map_err(|e| e.to_string())?;
    client.ping()?;
    let mut opened = Vec::with_capacity(streams);
    for _ in 0..streams {
        opened.push(client.open_stream(
            topology,
            capacity,
            wiring,
            gate_improvement,
            distance,
            decoder,
        )?);
    }
    let per_stream_shots: Vec<usize> = (0..streams)
        .map(|s| shots / streams + usize::from(s < shots % streams))
        .collect();
    let collectors: Vec<_> = opened
        .into_iter()
        .zip(per_stream_shots.iter().copied())
        .map(|(stream, expected)| {
            let id = stream.id;
            (
                id,
                std::thread::spawn(move || {
                    let mut corrections = Vec::with_capacity(expected);
                    for _ in 0..expected {
                        match stream.corrections.recv_timeout(Duration::from_secs(120)) {
                            Ok(correction) => corrections.push(correction),
                            Err(_) => break,
                        }
                    }
                    corrections
                }),
            )
        })
        .collect();

    // Submit in submission-order batches per stream: protocol `frames`
    // lines of up to 64 frames cut per-line overhead while pacing still
    // applies per shot.
    let start = Instant::now();
    let ids: Vec<u64> = collectors.iter().map(|(id, _)| *id).collect();
    let mut buffered: Vec<Vec<Vec<usize>>> = vec![Vec::new(); streams];
    for (i, frame) in frames.iter().enumerate() {
        pace(start, i, options.rate);
        let s = i % streams;
        buffered[s].push(frame.clone());
        if buffered[s].len() >= 64 {
            client.submit_frames(ids[s], &buffered[s])?;
            buffered[s].clear();
        }
    }
    for (s, pending) in buffered.iter().enumerate() {
        if !pending.is_empty() {
            client.submit_frames(ids[s], pending)?;
        }
    }
    for &id in &ids {
        client.close_stream(id)?;
    }
    let collected: Vec<Vec<crate::Correction>> = collectors
        .into_iter()
        .map(|(_, collector)| collector.join().expect("collector panicked"))
        .collect();
    let wall_seconds = start.elapsed().as_secs_f64();

    let mut mismatches = 0usize;
    let mut missing = 0usize;
    for (s, corrections) in collected.iter().enumerate() {
        missing += per_stream_shots[s] - corrections.len();
        for (q, correction) in corrections.iter().enumerate() {
            if correction.seq != q as u64 {
                mismatches += 1;
            } else if let Some((reference, _)) = &offline {
                if reference[q * streams + s] != correction.flips {
                    mismatches += 1;
                }
            }
        }
    }
    if missing > 0 {
        return Err(format!("{missing} corrections never arrived"));
    }

    let metrics_json = client.metrics()?;
    let read = |key: &str| metrics_json.get(key).and_then(Value::as_f64).unwrap_or(0.0);
    let read_u = |key: &str| metrics_json.get(key).and_then(Value::as_u64).unwrap_or(0);
    let metrics = ServiceMetrics {
        streams_open: read_u("streams_open") as usize,
        frames_submitted: read_u("frames_submitted"),
        frames_completed: read_u("frames_completed"),
        queue_depth: read_u("queue_depth"),
        words_flushed: read_u("words_flushed"),
        full_word_flushes: read_u("full_word_flushes"),
        deadline_flushes: read_u("deadline_flushes"),
        dense_hits: read_u("dense_hits"),
        dense_misses: read_u("dense_misses"),
        dense_evictions: read_u("dense_evictions"),
        cluster_lanes: read_u("cluster_lanes"),
        cluster_components: read_u("cluster_components"),
        cluster_conflicts: read_u("cluster_conflicts"),
        shots_per_sec: read("shots_per_sec"),
        p50_latency_us: read("p50_latency_us"),
        p99_latency_us: read("p99_latency_us"),
    };
    if shutdown_after {
        client.shutdown_server()?;
    }

    let offline_shots_per_sec = offline
        .as_ref()
        .map(|(_, seconds)| shots as f64 / seconds.max(1e-9));
    let shots_per_sec = shots as f64 / wall_seconds.max(1e-9);
    Ok(LoadgenReport {
        shots,
        streams,
        wall_seconds,
        shots_per_sec,
        offline_shots_per_sec,
        throughput_ratio: offline_shots_per_sec.map(|offline| shots_per_sec / offline),
        mismatches,
        p50_latency_us: metrics.p50_latency_us,
        p99_latency_us: metrics.p99_latency_us,
        metrics,
    })
}
