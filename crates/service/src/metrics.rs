//! Live service metrics: counters, gauges and a log-bucketed latency
//! histogram cheap enough to update on every frame.
//!
//! The legacy [`ServiceMetrics`] snapshot (stable JSON keys, served by the
//! TCP front-end since the first service release) is kept as-is; every
//! counter it reports is *also* mirrored into a shared
//! [`qccd_telemetry::Registry`] under `service.*` names, alongside the
//! per-stage spans (`service.stage.batcher_wait` / `decode` / `delivery`)
//! that have no legacy equivalent. The registry is the unified snapshot the
//! `metrics` command exports as JSON and Prometheus-style text.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use qccd_decoder::CacheStats;
use qccd_telemetry::{quantile_from_counts, Counter, Gauge, Registry, Stage};
use serde_json::Value;

/// Number of exponential latency buckets (bucket `i` covers
/// `[2^i, 2^(i+1))` microseconds; bucket 0 also absorbs sub-microsecond
/// completions).
const LATENCY_BUCKETS: usize = 32;

/// A fixed, lock-free latency histogram with power-of-two microsecond
/// buckets. Quantiles are estimated with the shared
/// [`qccd_telemetry::quantile_from_counts`] estimator: linear
/// interpolation of the quantile sample's rank within its covering bucket.
#[derive(Debug, Default)]
pub(crate) struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl LatencyHistogram {
    #[cfg(test)]
    pub(crate) fn record(&self, latency: Duration) {
        self.record_n(latency, 1);
    }

    /// Records `n` samples sharing one latency (frames of a batch
    /// submission share their submit timestamp, so this is exact for
    /// batched runs).
    pub(crate) fn record_n(&self, latency: Duration, n: u64) {
        let micros = latency.as_micros().max(1) as u64;
        let bucket = (63 - micros.leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.buckets[bucket].fetch_add(n, Ordering::Relaxed);
    }

    /// The `q`-quantile (0 < q ≤ 1) in microseconds, linearly interpolated
    /// within the bucket holding the quantile sample (bucket `i` covers
    /// `[2^i, 2^(i+1))` µs); 0 when nothing was recorded.
    pub(crate) fn quantile_us(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        quantile_from_counts(&counts, q)
    }
}

/// Which legacy flush counter a batcher flush books under (the service's
/// `FlushCause` folds shutdown into deadline before calling in).
#[derive(Debug, Clone, Copy)]
pub(crate) enum FlushStat {
    /// The batch reached its word bound.
    FullWord,
    /// The latency deadline (or the shutdown drain) forced the flush.
    Deadline,
    /// The last contributing stream closed.
    Close,
}

/// The unified-registry mirrors of the legacy counters, plus the per-stage
/// span handles. All handles are inert when the service's telemetry is
/// disabled, so every mirror call degenerates to one branch.
#[derive(Debug)]
pub(crate) struct UnifiedMetrics {
    frames_submitted: Counter,
    frames_completed: Counter,
    queue_depth: Gauge,
    words_flushed: Counter,
    full_word_flushes: Counter,
    deadline_flushes: Counter,
    close_flushes: Counter,
    dense_hits: Counter,
    dense_misses: Counter,
    dense_evictions: Counter,
    cluster_lanes: Counter,
    cluster_components: Counter,
    cluster_conflicts: Counter,
    latency_us: qccd_telemetry::Histogram,
    /// Submit→flush wait of each frame run, booked by the batcher at flush
    /// time from the run's own submit instant.
    pub(crate) batcher_wait: Stage,
    /// Transpose + decode of one job, timed around the decoder call.
    pub(crate) decode: Stage,
    /// Correction routing (reorder heaps, channel sends, backpressure).
    pub(crate) delivery: Stage,
}

impl UnifiedMetrics {
    fn new(registry: &Registry) -> Self {
        UnifiedMetrics {
            frames_submitted: registry.counter("service.frames_submitted"),
            frames_completed: registry.counter("service.frames_completed"),
            queue_depth: registry.gauge("service.queue_depth"),
            words_flushed: registry.counter("service.words_flushed"),
            full_word_flushes: registry.counter("service.flushes.full_word"),
            deadline_flushes: registry.counter("service.flushes.deadline"),
            close_flushes: registry.counter("service.flushes.close"),
            dense_hits: registry.counter("service.dense_hits"),
            dense_misses: registry.counter("service.dense_misses"),
            dense_evictions: registry.counter("service.dense_evictions"),
            cluster_lanes: registry.counter("service.cluster_lanes"),
            cluster_components: registry.counter("service.cluster_components"),
            cluster_conflicts: registry.counter("service.cluster_conflicts"),
            latency_us: registry.histogram("service.latency_us"),
            batcher_wait: registry.stage("service.stage.batcher_wait"),
            decode: registry.stage("service.stage.decode"),
            delivery: registry.stage("service.stage.delivery"),
        }
    }
}

/// The service's internal counter block (shared across workers and streams).
#[derive(Debug)]
pub(crate) struct MetricsInner {
    started: Instant,
    submitted: AtomicU64,
    completed: AtomicU64,
    /// Frames currently in flight across every stream (the live queue
    /// depth).
    queue_depth: AtomicU64,
    words_flushed: AtomicU64,
    full_word_flushes: AtomicU64,
    deadline_flushes: AtomicU64,
    close_flushes: AtomicU64,
    /// Dense-tier counters aggregated from every worker's per-batch
    /// `CacheStats` delta (see [`MetricsInner::note_decode_cache`]).
    dense_hits: AtomicU64,
    dense_misses: AtomicU64,
    dense_evictions: AtomicU64,
    cluster_lanes: AtomicU64,
    cluster_components: AtomicU64,
    cluster_conflicts: AtomicU64,
    /// Nanoseconds (since service start) of the first submission / the most
    /// recent completion — bounds of the active window shots/s is computed
    /// over. 0 = "not yet".
    first_submit_ns: AtomicU64,
    last_complete_ns: AtomicU64,
    pub(crate) latency: LatencyHistogram,
    /// Unified-registry mirrors and stage handles (inert when disabled).
    pub(crate) unified: UnifiedMetrics,
}

impl MetricsInner {
    pub(crate) fn new(registry: &Registry) -> Self {
        MetricsInner {
            started: Instant::now(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            words_flushed: AtomicU64::new(0),
            full_word_flushes: AtomicU64::new(0),
            deadline_flushes: AtomicU64::new(0),
            close_flushes: AtomicU64::new(0),
            dense_hits: AtomicU64::new(0),
            dense_misses: AtomicU64::new(0),
            dense_evictions: AtomicU64::new(0),
            cluster_lanes: AtomicU64::new(0),
            cluster_components: AtomicU64::new(0),
            cluster_conflicts: AtomicU64::new(0),
            first_submit_ns: AtomicU64::new(0),
            last_complete_ns: AtomicU64::new(0),
            latency: LatencyHistogram::default(),
            unified: UnifiedMetrics::new(registry),
        }
    }

    fn now_ns(&self) -> u64 {
        self.started.elapsed().as_nanos().max(1) as u64
    }

    #[cfg(test)]
    pub(crate) fn note_submitted(&self) {
        self.note_submitted_many(1);
    }

    pub(crate) fn note_submitted_many(&self, n: u64) {
        self.submitted.fetch_add(n, Ordering::Relaxed);
        self.queue_depth.fetch_add(n, Ordering::Relaxed);
        self.unified.frames_submitted.add(n);
        self.unified.queue_depth.add(n as i64);
        let now = self.now_ns();
        let _ = self
            .first_submit_ns
            .compare_exchange(0, now, Ordering::Relaxed, Ordering::Relaxed);
    }

    #[cfg(test)]
    pub(crate) fn note_completed(&self, latency: Duration) {
        self.note_completed_many(latency, 1);
    }

    /// Marks `n` frames sharing one submit timestamp as completed (frames
    /// of one batched run share their timestamp, so one histogram update
    /// covers the run exactly).
    pub(crate) fn note_completed_many(&self, latency: Duration, n: u64) {
        self.completed.fetch_add(n, Ordering::Relaxed);
        self.queue_depth.fetch_sub(n, Ordering::Relaxed);
        self.latency.record_n(latency, n);
        self.unified.frames_completed.add(n);
        self.unified.queue_depth.add(-(n as i64));
        self.unified
            .latency_us
            .record_n(latency.as_micros().max(1) as u64, n);
        self.last_complete_ns
            .store(self.now_ns(), Ordering::Relaxed);
    }

    /// Books one batcher flush: `words` 64-shot words left for the decode
    /// queue under `cause` (legacy counters and unified mirrors together).
    pub(crate) fn note_flush(&self, words: u64, cause: FlushStat) {
        self.words_flushed.fetch_add(words, Ordering::Relaxed);
        self.unified.words_flushed.add(words);
        let (legacy, mirror) = match cause {
            FlushStat::FullWord => (&self.full_word_flushes, &self.unified.full_word_flushes),
            FlushStat::Deadline => (&self.deadline_flushes, &self.unified.deadline_flushes),
            FlushStat::Close => (&self.close_flushes, &self.unified.close_flushes),
        };
        legacy.fetch_add(1, Ordering::Relaxed);
        mirror.inc();
    }

    /// Folds one decode batch's `CacheStats` delta (the scratch's counters
    /// after the batch minus before it) into the live dense-tier gauges.
    pub(crate) fn note_decode_cache(&self, delta: &CacheStats) {
        self.dense_hits
            .fetch_add(delta.dense_hits, Ordering::Relaxed);
        self.dense_misses
            .fetch_add(delta.dense_misses, Ordering::Relaxed);
        self.dense_evictions
            .fetch_add(delta.dense_evictions, Ordering::Relaxed);
        self.cluster_lanes
            .fetch_add(delta.cluster_lanes, Ordering::Relaxed);
        self.cluster_components
            .fetch_add(delta.cluster_components, Ordering::Relaxed);
        self.cluster_conflicts
            .fetch_add(delta.cluster_conflicts, Ordering::Relaxed);
        self.unified.dense_hits.add(delta.dense_hits);
        self.unified.dense_misses.add(delta.dense_misses);
        self.unified.dense_evictions.add(delta.dense_evictions);
        self.unified.cluster_lanes.add(delta.cluster_lanes);
        self.unified
            .cluster_components
            .add(delta.cluster_components);
        self.unified.cluster_conflicts.add(delta.cluster_conflicts);
    }

    pub(crate) fn snapshot(&self, streams_open: usize) -> ServiceMetrics {
        let completed = self.completed.load(Ordering::Relaxed);
        let first = self.first_submit_ns.load(Ordering::Relaxed);
        let last = self.last_complete_ns.load(Ordering::Relaxed);
        let window_s = if last > first && first > 0 {
            (last - first) as f64 / 1e9
        } else {
            0.0
        };
        ServiceMetrics {
            streams_open,
            frames_submitted: self.submitted.load(Ordering::Relaxed),
            frames_completed: completed,
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            words_flushed: self.words_flushed.load(Ordering::Relaxed),
            full_word_flushes: self.full_word_flushes.load(Ordering::Relaxed),
            deadline_flushes: self.deadline_flushes.load(Ordering::Relaxed),
            close_flushes: self.close_flushes.load(Ordering::Relaxed),
            dense_hits: self.dense_hits.load(Ordering::Relaxed),
            dense_misses: self.dense_misses.load(Ordering::Relaxed),
            dense_evictions: self.dense_evictions.load(Ordering::Relaxed),
            cluster_lanes: self.cluster_lanes.load(Ordering::Relaxed),
            cluster_components: self.cluster_components.load(Ordering::Relaxed),
            cluster_conflicts: self.cluster_conflicts.load(Ordering::Relaxed),
            shots_per_sec: if window_s > 0.0 {
                completed as f64 / window_s
            } else {
                0.0
            },
            p50_latency_us: self.latency.quantile_us(0.50),
            p99_latency_us: self.latency.quantile_us(0.99),
        }
    }
}

/// A point-in-time snapshot of the service's live metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceMetrics {
    /// Streams currently open.
    pub streams_open: usize,
    /// Frames accepted since service start.
    pub frames_submitted: u64,
    /// Frames decoded and routed back since service start.
    pub frames_completed: u64,
    /// Frames currently in flight (submitted − completed).
    pub queue_depth: u64,
    /// 64-shot words flushed to the decode queue.
    pub words_flushed: u64,
    /// Flushes triggered by a full word.
    pub full_word_flushes: u64,
    /// Flushes triggered by the latency deadline (partial words). Shutdown
    /// drains book here too.
    pub deadline_flushes: u64,
    /// Flushes triggered by the last contributing stream closing.
    pub close_flushes: u64,
    /// Dense-tier lane-LRU hits across every worker's decode batches.
    pub dense_hits: u64,
    /// Dense-tier LRU misses (lane and cluster probes that fell through).
    pub dense_misses: u64,
    /// Dense-tier LRU evictions under the configured entry cap.
    pub dense_evictions: u64,
    /// Above-cap lanes decomposed by the local cluster matcher.
    pub cluster_lanes: u64,
    /// Connected components produced by those decompositions.
    pub cluster_components: u64,
    /// Cluster decodes rolled back to a whole-lane union-find pass.
    pub cluster_conflicts: u64,
    /// Completed frames per second over the active window (first submission
    /// to latest completion).
    pub shots_per_sec: f64,
    /// Median submit→correction latency (µs, bucket-resolution).
    pub p50_latency_us: f64,
    /// 99th-percentile submit→correction latency (µs, bucket-resolution).
    pub p99_latency_us: f64,
}

impl ServiceMetrics {
    /// The metrics as a JSON object (the `metrics` response of the TCP
    /// front-end).
    pub fn to_json(&self) -> Value {
        serde_json::json!({
            "streams_open": self.streams_open as u64,
            "frames_submitted": self.frames_submitted,
            "frames_completed": self.frames_completed,
            "queue_depth": self.queue_depth,
            "words_flushed": self.words_flushed,
            "full_word_flushes": self.full_word_flushes,
            "deadline_flushes": self.deadline_flushes,
            "close_flushes": self.close_flushes,
            "dense_hits": self.dense_hits,
            "dense_misses": self.dense_misses,
            "dense_evictions": self.dense_evictions,
            "cluster_lanes": self.cluster_lanes,
            "cluster_components": self.cluster_components,
            "cluster_conflicts": self.cluster_conflicts,
            "shots_per_sec": self.shots_per_sec,
            "p50_latency_us": self.p50_latency_us,
            "p99_latency_us": self.p99_latency_us,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_follow_bucket_boundaries() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_us(0.5), 0.0);
        for _ in 0..99 {
            h.record(Duration::from_micros(10)); // bucket 3: [8, 16)
        }
        h.record(Duration::from_millis(100)); // bucket 16: [65536, ...)
        let p50 = h.quantile_us(0.50);
        assert!((8.0..16.0).contains(&p50), "{p50}");
        let p99 = h.quantile_us(0.99);
        assert!(p99 < 65536.0, "99 of 100 samples are fast: {p99}");
        let p100 = h.quantile_us(1.0);
        assert!(p100 >= 65536.0, "{p100}");
        // Sub-microsecond records land in the first bucket, not a panic.
        h.record(Duration::from_nanos(5));
    }

    #[test]
    fn histogram_quantiles_interpolate_linearly_not_at_bucket_edges() {
        // 100 identical 10 µs samples fill bucket [8, 16). The p50 sample
        // is the 50th of 100, so linear interpolation puts it half way into
        // the bucket — 12 exactly, not the edge (8/16) and not the old
        // geometric midpoint (8·√2 ≈ 11.31).
        let h = LatencyHistogram::default();
        h.record_n(Duration::from_micros(10), 100);
        assert_eq!(h.quantile_us(0.50), 12.0);
        assert_eq!(h.quantile_us(1.0), 16.0);

        // 99 fast + 1 slow: p50 = 8 + 8·(50/99), p99 is the last fast
        // sample (the bucket's upper edge), p100 the slow bucket's.
        let h = LatencyHistogram::default();
        h.record_n(Duration::from_micros(10), 99);
        h.record(Duration::from_millis(100)); // 100_000 µs → [65536, 131072)
        let p50 = h.quantile_us(0.50);
        assert!((p50 - (8.0 + 8.0 * 50.0 / 99.0)).abs() < 1e-9, "{p50}");
        assert_eq!(h.quantile_us(0.99), 16.0);
        assert_eq!(h.quantile_us(1.0), 131072.0);

        // Uniform 25/25/25/25 over four buckets: each quartile boundary
        // lands exactly on its bucket's upper edge.
        let h = LatencyHistogram::default();
        for v in [2u64, 4, 8, 16] {
            h.record_n(Duration::from_micros(v), 25);
        }
        assert_eq!(h.quantile_us(0.25), 4.0);
        assert_eq!(h.quantile_us(0.50), 8.0);
        assert_eq!(h.quantile_us(0.75), 16.0);
        assert_eq!(h.quantile_us(1.00), 32.0);
    }

    #[test]
    fn snapshot_reflects_counters() {
        let m = MetricsInner::new(&Registry::disabled());
        m.note_submitted();
        m.note_submitted();
        m.note_completed(Duration::from_micros(100));
        let snap = m.snapshot(3);
        assert_eq!(snap.streams_open, 3);
        assert_eq!(snap.frames_submitted, 2);
        assert_eq!(snap.frames_completed, 1);
        assert_eq!(snap.queue_depth, 1);
        assert!(snap.p50_latency_us > 0.0);
        let json = snap.to_json();
        assert_eq!(
            json.get("frames_submitted").and_then(|v| v.as_u64()),
            Some(2)
        );
    }

    #[test]
    fn unified_registry_mirrors_the_legacy_counters() {
        let registry = Registry::enabled();
        let m = MetricsInner::new(&registry);
        m.note_submitted_many(10);
        m.note_completed_many(Duration::from_micros(100), 4);
        m.note_flush(2, FlushStat::FullWord);
        m.note_flush(1, FlushStat::Deadline);
        m.note_flush(1, FlushStat::Close);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("service.frames_submitted"), 10);
        assert_eq!(snap.counter("service.frames_completed"), 4);
        assert_eq!(snap.gauges.get("service.queue_depth"), Some(&6));
        assert_eq!(snap.counter("service.words_flushed"), 4);
        assert_eq!(snap.counter("service.flushes.full_word"), 1);
        assert_eq!(snap.counter("service.flushes.deadline"), 1);
        assert_eq!(snap.counter("service.flushes.close"), 1);
        let latency = snap.histogram("service.latency_us").expect("registered");
        assert_eq!(latency.count, 4);
        // The legacy snapshot reports the same story from its own atomics.
        let legacy = m.snapshot(0);
        assert_eq!(legacy.frames_submitted, 10);
        assert_eq!(legacy.words_flushed, 4);
        assert_eq!(legacy.full_word_flushes, 1);
    }
}
