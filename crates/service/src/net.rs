//! `std::net` TCP front-end: a JSON-lines protocol over the decode service,
//! plus the matching client used by the load generator and the CI smoke
//! test.
//!
//! # Protocol
//!
//! One JSON object per line in each direction. Requests:
//!
//! ```text
//! {"cmd":"open","topology":"grid","capacity":2,"wiring":"standard",
//!  "gate_improvement":5.0,"distance":3,"decoder":"union_find"}
//! {"cmd":"frame","stream":0,"detectors":[1,5]}
//! {"cmd":"frames","stream":0,"frames":[[1,5],[],[2]]}
//! {"cmd":"frames_packed","stream":0,"blocks":[{"count":64,"planes":[3,0]}]}
//! {"cmd":"close","stream":0}
//! {"cmd":"metrics"}
//! {"cmd":"metrics","format":"text"}
//! {"cmd":"ping"}
//! {"cmd":"shutdown"}
//! ```
//!
//! `metrics` answers with the legacy counter object under `"metrics"`
//! **and** the unified telemetry snapshot (stage spans, histograms) under
//! `"telemetry"`; with `"format":"text"` it instead answers
//! `{"ok":true,"text":...}` carrying a Prometheus-style exposition of the
//! same snapshot.
//!
//! Every command except `frame`/`frames` is answered synchronously with an
//! `{"ok":...}` object (in request order). Frames are answered
//! *asynchronously*, one `{"stream":S,"seq":Q,"flips":[..]}` line per frame
//! in per-stream submission order, interleaved with command responses;
//! `flips` lists the flipped logical observables. An invalid frame batch
//! produces an `{"ok":false,"async":true,"stream":S,"error":...}` line
//! instead (nothing from that line is enqueued) — the `"async"` tag tells
//! clients not to pair it with a pending command response.
//!
//! `frames_packed` is the **shot-major** wire mode: each block carries up to
//! 64 shots pre-transposed into one `u64` plane word per detector (bit `s`
//! of word `d` = shot `s` fired detector `d` — the
//! [`WordBlock`](crate::WordBlock) layout), so the per-frame transpose
//! disappears from the service hot path. The vendored JSON layer preserves
//! `u64` values exactly, so plane words round-trip bit-for-bit.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use qccd_core::ArchitectureConfig;
use qccd_decoder::DecoderKind;
use serde_json::Value;

use crate::service::{Correction, DecodeService, ServiceConfig, StreamSender, WordBlock};

/// Parses the wire name of a decoder kind.
pub fn parse_decoder(name: &str) -> Result<DecoderKind, String> {
    match name {
        "union_find" => Ok(DecoderKind::UnionFind),
        "greedy" => Ok(DecoderKind::GreedyMatching),
        "exact" => Ok(DecoderKind::ExactMatching),
        other => Err(format!(
            "unknown decoder `{other}` (union_find|greedy|exact)"
        )),
    }
}

/// The wire name of a decoder kind (inverse of [`parse_decoder`]).
pub fn decoder_name(kind: DecoderKind) -> &'static str {
    match kind {
        DecoderKind::UnionFind => "union_find",
        DecoderKind::GreedyMatching => "greedy",
        DecoderKind::ExactMatching => "exact",
    }
}

/// Builds an [`ArchitectureConfig`] from wire parameters.
pub fn parse_arch(
    topology: &str,
    capacity: usize,
    wiring: &str,
    gate_improvement: f64,
) -> Result<ArchitectureConfig, String> {
    use qccd_hardware::{TopologyKind, WiringMethod};
    let topology = match topology {
        "grid" => TopologyKind::Grid,
        "linear" => TopologyKind::Linear,
        "switch" => TopologyKind::Switch,
        other => return Err(format!("unknown topology `{other}` (grid|linear|switch)")),
    };
    let wiring = match wiring {
        "standard" => WiringMethod::Standard,
        "wise" => WiringMethod::Wise,
        other => return Err(format!("unknown wiring `{other}` (standard|wise)")),
    };
    if capacity == 0 {
        return Err("capacity must be positive".into());
    }
    if gate_improvement <= 0.0 || gate_improvement.is_nan() {
        return Err("gate_improvement must be positive".into());
    }
    Ok(ArchitectureConfig::new(
        topology,
        capacity,
        wiring,
        gate_improvement,
    ))
}

/// A bound JSON-lines decode server.
pub struct NetServer {
    listener: TcpListener,
    service: Arc<DecodeService>,
    shutdown: Arc<AtomicBool>,
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("addr", &self.listener.local_addr().ok())
            .finish()
    }
}

impl NetServer {
    /// Binds `addr` (e.g. `127.0.0.1:7878`, port 0 for ephemeral) over a
    /// fresh [`DecodeService`].
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind(addr: &str, config: ServiceConfig) -> io::Result<NetServer> {
        Ok(NetServer {
            listener: TcpListener::bind(addr)?,
            service: Arc::new(DecodeService::new(config)),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound socket address.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The underlying service (for in-process metrics inspection).
    pub fn service(&self) -> &Arc<DecodeService> {
        &self.service
    }

    /// Serves connections until a client sends `{"cmd":"shutdown"}`, then
    /// drains and shuts the service down.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from the accept loop.
    pub fn run(self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut connections: Vec<JoinHandle<()>> = Vec::new();
        while !self.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let service = Arc::clone(&self.service);
                    let shutdown = Arc::clone(&self.shutdown);
                    connections.push(std::thread::spawn(move || {
                        let _ = handle_connection(stream, service, shutdown);
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    // Long-lived servers must not accumulate one handle per
                    // past connection.
                    connections.retain(|connection| !connection.is_finished());
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(e),
            }
        }
        // Connection readers poll the shutdown flag on a read timeout, so
        // even an idle client's handler exits promptly.
        for connection in connections {
            let _ = connection.join();
        }
        self.service.shutdown();
        Ok(())
    }
}

type SharedWriter = Arc<Mutex<BufWriter<TcpStream>>>;

fn write_line(writer: &SharedWriter, value: &Value) -> io::Result<()> {
    let text = serde_json::to_string(value).expect("response serialization cannot fail");
    // A panic on a sibling thread of this connection (e.g. a correction
    // pump) poisons the shared writer. Treat that as a dead connection —
    // every writer backs off and the handler tears the connection down —
    // instead of cascading the panic through all subsequent writes.
    let mut writer = writer.lock().map_err(|_| {
        io::Error::new(
            io::ErrorKind::BrokenPipe,
            "connection writer poisoned by a panicked sibling thread",
        )
    })?;
    writeln!(writer, "{text}")?;
    writer.flush()
}

fn flips_json(flips: u64) -> Value {
    let mut list = Vec::new();
    let mut rest = flips;
    while rest != 0 {
        list.push(Value::from(rest.trailing_zeros() as u64));
        rest &= rest - 1;
    }
    Value::Array(list)
}

fn error_json(message: impl std::fmt::Display) -> Value {
    serde_json::json!({"ok": false, "error": format!("{message}")})
}

fn handle_connection(
    stream: TcpStream,
    service: Arc<DecodeService>,
    shutdown: Arc<AtomicBool>,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    // A read timeout keeps this handler responsive to a server shutdown
    // triggered on *another* connection: the read loop polls the flag on
    // every timeout instead of parking in `read` forever.
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    let writer: SharedWriter = Arc::new(Mutex::new(BufWriter::new(stream.try_clone()?)));
    let mut reader = BufReader::new(stream);
    let mut senders: HashMap<u64, StreamSender> = HashMap::new();
    let mut pumps: Vec<JoinHandle<()>> = Vec::new();
    // The serve loop's result is captured — not propagated with `?` — so
    // this connection's streams are closed and its pumps joined on *every*
    // exit path, error teardowns included.
    let result = serve_connection(
        &mut reader,
        &service,
        &shutdown,
        &writer,
        &mut senders,
        &mut pumps,
    );
    for sender in senders.values() {
        sender.close();
    }
    drop(senders);
    for pump in pumps {
        let _ = pump.join();
    }
    result
}

fn serve_connection(
    reader: &mut BufReader<TcpStream>,
    service: &Arc<DecodeService>,
    shutdown: &Arc<AtomicBool>,
    writer: &SharedWriter,
    senders: &mut HashMap<u64, StreamSender>,
    pumps: &mut Vec<JoinHandle<()>>,
) -> io::Result<()> {
    let mut line = String::new();
    loop {
        // Poll the flag between lines too: a continuously-sending client
        // never hits the read timeout, and must not pin the server past a
        // shutdown issued on another connection.
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        // `read_line` may return a timeout error with a partial line
        // already appended; `line` is only cleared after a complete line is
        // processed, so partial reads accumulate correctly.
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let done = handle_line(&line, service, shutdown, writer, senders, pumps)?;
                line.clear();
                if done {
                    break;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Parses and dispatches one request line; returns `true` when the
/// connection should end (shutdown).
fn handle_line(
    line: &str,
    service: &Arc<DecodeService>,
    shutdown: &Arc<AtomicBool>,
    writer: &SharedWriter,
    senders: &mut HashMap<u64, StreamSender>,
    pumps: &mut Vec<JoinHandle<()>>,
) -> io::Result<bool> {
    if line.trim().is_empty() {
        return Ok(false);
    }
    let request = match serde_json::from_str(line) {
        Ok(value) => value,
        Err(_) => {
            write_line(writer, &error_json("invalid JSON"))?;
            return Ok(false);
        }
    };
    dispatch(&request, service, shutdown, writer, senders, pumps)
}

/// Handles one request line; returns `true` when the connection should end
/// (shutdown).
fn dispatch(
    request: &Value,
    service: &Arc<DecodeService>,
    shutdown: &Arc<AtomicBool>,
    writer: &SharedWriter,
    senders: &mut HashMap<u64, StreamSender>,
    pumps: &mut Vec<JoinHandle<()>>,
) -> io::Result<bool> {
    let cmd = request.get("cmd").and_then(Value::as_str).unwrap_or("");
    match cmd {
        "ping" => write_line(writer, &serde_json::json!({"ok": true}))?,
        "metrics" => {
            let snapshot = service.telemetry_snapshot();
            if request.get("format").and_then(Value::as_str) == Some("text") {
                let text = qccd_telemetry::snapshot_to_text(&snapshot, "qccd");
                write_line(writer, &serde_json::json!({"ok": true, "text": text}))?;
            } else {
                let metrics = service.metrics().to_json();
                let telemetry = qccd_telemetry::snapshot_to_json(&snapshot);
                write_line(
                    writer,
                    &serde_json::json!({"ok": true, "metrics": metrics, "telemetry": telemetry}),
                )?;
            }
        }
        "shutdown" => {
            shutdown.store(true, Ordering::SeqCst);
            write_line(writer, &serde_json::json!({"ok": true}))?;
            return Ok(true);
        }
        "open" => match open_from_request(request, service) {
            Ok(handle) => {
                let (sender, mut receiver) = handle.split();
                let id = sender.id();
                let response = serde_json::json!({
                    "ok": true,
                    "stream": id,
                    "detectors": sender.num_detectors() as u64,
                    "observables": sender.num_observables() as u64,
                });
                senders.insert(id, sender);
                let pump_writer = Arc::clone(writer);
                pumps.push(std::thread::spawn(move || {
                    while let Some(Correction { seq, flips }) = receiver.recv() {
                        let line = serde_json::json!({
                            "stream": id,
                            "seq": seq,
                            "flips": flips_json(flips),
                        });
                        if write_line(&pump_writer, &line).is_err() {
                            break;
                        }
                    }
                }));
                write_line(writer, &response)?;
            }
            Err(e) => write_line(writer, &error_json(e))?,
        },
        "frame" | "frames" => {
            let id = request
                .get("stream")
                .and_then(Value::as_u64)
                .unwrap_or(u64::MAX);
            // Frames are fire-and-forget, so their errors are emitted as
            // *asynchronous* lines, tagged `"async": true` — clients must
            // not pair them with a pending command response.
            let Some(sender) = senders.get(&id) else {
                let mut response = error_json(format!("unknown stream {id}"));
                response["async"] = Value::Bool(true);
                response["stream"] = Value::from(id);
                write_line(writer, &response)?;
                return Ok(false);
            };
            let parsed: Result<Vec<Vec<usize>>, String> = if cmd == "frame" {
                parse_detectors(request.get("detectors")).map(|fired| vec![fired])
            } else {
                request
                    .get("frames")
                    .and_then(Value::as_array)
                    .ok_or("`frames` must be an array of frames".to_string())
                    .and_then(|frames| {
                        frames
                            .iter()
                            .map(|frame| parse_detectors(Some(frame)))
                            .collect()
                    })
            };
            // One batched submission per line: the whole line parses and
            // validates before anything is enqueued, and the service lock
            // is paid once instead of once per frame.
            let outcome = parsed.and_then(|frames| {
                let refs: Vec<&[usize]> = frames.iter().map(Vec::as_slice).collect();
                sender.submit_batch(&refs).map_err(|e| e.to_string())
            });
            if let Err(e) = outcome {
                let mut response = error_json(e);
                response["async"] = Value::Bool(true);
                response["stream"] = Value::from(id);
                write_line(writer, &response)?;
            }
        }
        "frames_packed" => {
            let id = request
                .get("stream")
                .and_then(Value::as_u64)
                .unwrap_or(u64::MAX);
            let Some(sender) = senders.get(&id) else {
                let mut response = error_json(format!("unknown stream {id}"));
                response["async"] = Value::Bool(true);
                response["stream"] = Value::from(id);
                write_line(writer, &response)?;
                return Ok(false);
            };
            // Parse the whole line before anything is enqueued, mirroring
            // `frames`: shot-major blocks of up to 64 pre-transposed shots.
            let parsed = parse_word_blocks(request.get("blocks"));
            let outcome = parsed.and_then(|blocks| {
                let refs: Vec<WordBlock<'_>> = blocks
                    .iter()
                    .map(|(count, planes)| WordBlock {
                        planes,
                        count: *count,
                    })
                    .collect();
                sender.submit_word_batch(&refs).map_err(|e| e.to_string())
            });
            if let Err(e) = outcome {
                let mut response = error_json(e);
                response["async"] = Value::Bool(true);
                response["stream"] = Value::from(id);
                write_line(writer, &response)?;
            }
        }
        "close" => {
            let id = request
                .get("stream")
                .and_then(Value::as_u64)
                .unwrap_or(u64::MAX);
            match senders.get(&id) {
                Some(sender) => {
                    sender.close();
                    write_line(writer, &serde_json::json!({"ok": true}))?;
                }
                None => write_line(writer, &error_json(format!("unknown stream {id}")))?,
            }
        }
        other => write_line(writer, &error_json(format!("unknown command `{other}`")))?,
    }
    Ok(false)
}

/// Parses one frame's detector list strictly: anything other than an array
/// of non-negative integers is an error (a silently-coerced frame would
/// decode wrong syndromes while looking healthy).
fn parse_detectors(value: Option<&Value>) -> Result<Vec<usize>, String> {
    let list = value
        .and_then(Value::as_array)
        .ok_or("frame detectors must be an array")?;
    list.iter()
        .map(|entry| {
            entry
                .as_u64()
                .map(|d| d as usize)
                .ok_or_else(|| "detector indices must be non-negative integers".to_string())
        })
        .collect()
}

/// Parses a `frames_packed` block list strictly: each block is an object
/// with a `count` (shots, 1..=64) and a `planes` array of `u64` words (one
/// per detector, preserved bit-exactly by the vendored JSON layer).
fn parse_word_blocks(value: Option<&Value>) -> Result<Vec<(usize, Vec<u64>)>, String> {
    let list = value
        .and_then(Value::as_array)
        .ok_or("`blocks` must be an array of word blocks")?;
    list.iter()
        .map(|block| {
            let count = block
                .get("count")
                .and_then(Value::as_u64)
                .ok_or("a word block needs a `count` of shots")? as usize;
            let planes = block
                .get("planes")
                .and_then(Value::as_array)
                .ok_or("a word block needs a `planes` array")?
                .iter()
                .map(|word| {
                    word.as_u64()
                        .ok_or_else(|| "plane words must be non-negative integers".to_string())
                })
                .collect::<Result<Vec<u64>, String>>()?;
            Ok((count, planes))
        })
        .collect()
}

fn open_from_request(
    request: &Value,
    service: &Arc<DecodeService>,
) -> Result<crate::StreamHandle, String> {
    let topology = request
        .get("topology")
        .and_then(Value::as_str)
        .unwrap_or("grid");
    let capacity = request.get("capacity").and_then(Value::as_u64).unwrap_or(2) as usize;
    let wiring = request
        .get("wiring")
        .and_then(Value::as_str)
        .unwrap_or("standard");
    let improvement = request
        .get("gate_improvement")
        .and_then(Value::as_f64)
        .unwrap_or(1.0);
    let distance = request
        .get("distance")
        .and_then(Value::as_u64)
        .ok_or("open needs a `distance`")? as usize;
    if distance < 2 {
        return Err("distance must be at least 2".into());
    }
    let decoder = parse_decoder(
        request
            .get("decoder")
            .and_then(Value::as_str)
            .unwrap_or("union_find"),
    )?;
    let arch = parse_arch(topology, capacity, wiring, improvement)?;
    service
        .open_stream(&arch, distance, decoder)
        .map_err(|e| e.to_string())
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// A JSON-lines client for [`NetServer`] — the transport of the TCP load
/// generator and the CI smoke test.
///
/// Commands are synchronous (one response per command, in order);
/// corrections arrive asynchronously and are routed into per-stream
/// channels.
pub struct NetClient {
    writer: BufWriter<TcpStream>,
    responses: mpsc::Receiver<Value>,
    corrections: Arc<Mutex<HashMap<u64, mpsc::Sender<Correction>>>>,
    /// Malformed or unroutable lines the reader refused to deliver — a
    /// correction without a valid `stream`/`seq` is *dropped*, never
    /// guessed onto stream 0 (see [`NetClient::take_protocol_errors`]).
    protocol_errors: Arc<Mutex<Vec<String>>>,
    reader: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for NetClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetClient").finish()
    }
}

/// A stream opened over a [`NetClient`].
#[derive(Debug)]
pub struct NetStream {
    /// Server-assigned stream id.
    pub id: u64,
    /// Detectors per frame.
    pub num_detectors: usize,
    /// Observables per correction.
    pub num_observables: usize,
    /// Ordered corrections for this stream.
    pub corrections: mpsc::Receiver<Correction>,
}

impl NetClient {
    /// Connects to a running [`NetServer`].
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(addr: &str) -> io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let (response_tx, responses) = mpsc::channel();
        let corrections: Arc<Mutex<HashMap<u64, mpsc::Sender<Correction>>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let protocol_errors: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let reader_corrections = Arc::clone(&corrections);
        let reader_errors = Arc::clone(&protocol_errors);
        let reader_stream = stream.try_clone()?;
        let reader = std::thread::spawn(move || {
            let note_error = |message: String| {
                if let Ok(mut errors) = reader_errors.lock() {
                    errors.push(message);
                }
            };
            let reader = BufReader::new(reader_stream);
            for line in reader.lines() {
                let Ok(line) = line else { break };
                if line.trim().is_empty() {
                    continue;
                }
                let Ok(value) = serde_json::from_str(&line) else {
                    note_error(format!("unparseable server line: {line}"));
                    continue;
                };
                let value: Value = value;
                // Asynchronous lines (frame errors) must never be paired
                // with a pending command response.
                if value.get("async").is_some() {
                    note_error(format!(
                        "server reported: {}",
                        value.get("error").and_then(Value::as_str).unwrap_or("?")
                    ));
                    continue;
                }
                let is_correction = value.get("seq").is_some() && value.get("ok").is_none();
                if is_correction {
                    // Route strictly: a correction without a well-formed
                    // `stream` or `seq` is dropped and surfaced as a
                    // protocol error — never defaulted onto stream 0,
                    // which would silently corrupt whichever stream
                    // happened to open first.
                    let Some(stream) = value.get("stream").and_then(Value::as_u64) else {
                        note_error(format!("correction without a valid `stream`: {line}"));
                        continue;
                    };
                    let Some(seq) = value.get("seq").and_then(Value::as_u64) else {
                        note_error(format!("correction without a valid `seq`: {line}"));
                        continue;
                    };
                    let mut flips = 0u64;
                    if let Some(list) = value.get("flips").and_then(Value::as_array) {
                        for observable in list.iter().filter_map(Value::as_u64) {
                            flips |= 1u64 << observable;
                        }
                    }
                    let tx = reader_corrections
                        .lock()
                        .expect("correction router lock")
                        .get(&stream)
                        .cloned();
                    match tx {
                        Some(tx) => {
                            let _ = tx.send(Correction { seq, flips });
                        }
                        None => note_error(format!("correction for unknown stream {stream}")),
                    }
                } else {
                    let _ = response_tx.send(value);
                }
            }
        });
        Ok(NetClient {
            writer: BufWriter::new(stream),
            responses,
            corrections,
            protocol_errors,
            reader: Some(reader),
        })
    }

    /// Drains the protocol errors the reader refused to deliver (malformed
    /// correction lines, corrections for unknown streams, async server
    /// errors). An empty result means every server line routed cleanly.
    pub fn take_protocol_errors(&self) -> Vec<String> {
        std::mem::take(&mut *self.protocol_errors.lock().expect("protocol error lock"))
    }

    fn request(&mut self, command: &Value) -> Result<Value, String> {
        self.send(command)?;
        self.responses
            .recv_timeout(Duration::from_secs(120))
            .map_err(|_| "server closed the connection".to_string())
    }

    fn send(&mut self, command: &Value) -> Result<(), String> {
        let text = serde_json::to_string(command).expect("command serialization cannot fail");
        writeln!(self.writer, "{text}").map_err(|e| e.to_string())?;
        self.writer.flush().map_err(|e| e.to_string())
    }

    /// Round-trips a `ping`.
    ///
    /// # Errors
    ///
    /// Transport errors or a non-ok response.
    pub fn ping(&mut self) -> Result<(), String> {
        let response = self.request(&serde_json::json!({"cmd": "ping"}))?;
        expect_ok(&response)
    }

    /// Opens a stream for `(topology, capacity, wiring, gate_improvement,
    /// distance, decoder)` using the wire vocabulary of [`parse_arch`] /
    /// [`parse_decoder`].
    ///
    /// # Errors
    ///
    /// Transport errors or a server-side open failure.
    #[allow(clippy::too_many_arguments)]
    pub fn open_stream(
        &mut self,
        topology: &str,
        capacity: usize,
        wiring: &str,
        gate_improvement: f64,
        distance: usize,
        decoder: DecoderKind,
    ) -> Result<NetStream, String> {
        let response = self.request(&serde_json::json!({
            "cmd": "open",
            "topology": topology,
            "capacity": capacity as u64,
            "wiring": wiring,
            "gate_improvement": gate_improvement,
            "distance": distance as u64,
            "decoder": decoder_name(decoder),
        }))?;
        expect_ok(&response)?;
        let id = response
            .get("stream")
            .and_then(Value::as_u64)
            .ok_or("open response lacks a stream id")?;
        let (tx, rx) = mpsc::channel();
        self.corrections
            .lock()
            .expect("correction router lock")
            .insert(id, tx);
        Ok(NetStream {
            id,
            num_detectors: response
                .get("detectors")
                .and_then(Value::as_u64)
                .unwrap_or(0) as usize,
            num_observables: response
                .get("observables")
                .and_then(Value::as_u64)
                .unwrap_or(0) as usize,
            corrections: rx,
        })
    }

    /// Submits a batch of frames on a stream (fire-and-forget; corrections
    /// arrive on the stream's channel).
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn submit_frames(&mut self, stream: u64, frames: &[Vec<usize>]) -> Result<(), String> {
        let frames_json: Vec<Value> = frames
            .iter()
            .map(|fired| Value::Array(fired.iter().map(|&d| Value::from(d as u64)).collect()))
            .collect();
        self.send(&serde_json::json!({
            "cmd": "frames",
            "stream": stream,
            "frames": Value::Array(frames_json),
        }))
    }

    /// Submits shot-major 64-shot word blocks on a stream (fire-and-forget;
    /// corrections arrive on the stream's channel). Each block is
    /// `(planes, count)`: one `u64` plane per detector, bit `s` of plane
    /// `d` set iff shot `s` fired detector `d`, with `count` shots in
    /// `1..=64`. This is the `frames_packed` wire command — the server
    /// folds the planes straight into the batcher word, skipping the
    /// per-frame transpose.
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn submit_packed_words(
        &mut self,
        stream: u64,
        blocks: &[(Vec<u64>, usize)],
    ) -> Result<(), String> {
        let blocks_json: Vec<Value> = blocks
            .iter()
            .map(|(planes, count)| {
                serde_json::json!({
                    "count": *count as u64,
                    "planes": Value::Array(planes.iter().map(|&w| Value::from(w)).collect()),
                })
            })
            .collect();
        self.send(&serde_json::json!({
            "cmd": "frames_packed",
            "stream": stream,
            "blocks": Value::Array(blocks_json),
        }))
    }

    /// Closes a stream (already-submitted frames still decode).
    ///
    /// # Errors
    ///
    /// Transport errors or a non-ok response.
    pub fn close_stream(&mut self, stream: u64) -> Result<(), String> {
        let response = self.request(&serde_json::json!({"cmd": "close", "stream": stream}))?;
        expect_ok(&response)
    }

    /// Fetches the server's live metrics object.
    ///
    /// # Errors
    ///
    /// Transport errors or a non-ok response.
    pub fn metrics(&mut self) -> Result<Value, String> {
        let response = self.request(&serde_json::json!({"cmd": "metrics"}))?;
        expect_ok(&response)?;
        Ok(response.get("metrics").cloned().unwrap_or(Value::Null))
    }

    /// Fetches the full `metrics` response — the legacy counter object
    /// under `"metrics"` plus the unified telemetry snapshot under
    /// `"telemetry"`.
    ///
    /// # Errors
    ///
    /// Transport errors or a non-ok response.
    pub fn metrics_full(&mut self) -> Result<Value, String> {
        let response = self.request(&serde_json::json!({"cmd": "metrics"}))?;
        expect_ok(&response)?;
        Ok(response)
    }

    /// Fetches the server's metrics as Prometheus-style exposition text.
    ///
    /// # Errors
    ///
    /// Transport errors or a non-ok response.
    pub fn metrics_text(&mut self) -> Result<String, String> {
        let response = self.request(&serde_json::json!({"cmd": "metrics", "format": "text"}))?;
        expect_ok(&response)?;
        response
            .get("text")
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| "metrics response lacks a `text` field".to_string())
    }

    /// Asks the server to shut down after this connection.
    ///
    /// # Errors
    ///
    /// Transport errors or a non-ok response.
    pub fn shutdown_server(&mut self) -> Result<(), String> {
        let response = self.request(&serde_json::json!({"cmd": "shutdown"}))?;
        expect_ok(&response)
    }
}

impl Drop for NetClient {
    fn drop(&mut self) {
        // Closing the write half ends the server's read loop; the reader
        // thread ends when the server closes its side.
        let _ = self.writer.flush();
        if let Some(reader) = self.reader.take() {
            drop(self.writer.get_ref().shutdown(std::net::Shutdown::Both));
            let _ = reader.join();
        }
    }
}

fn expect_ok(response: &Value) -> Result<(), String> {
    if response.get("ok").and_then(Value::as_bool) == Some(true) {
        Ok(())
    } else {
        Err(response
            .get("error")
            .and_then(Value::as_str)
            .unwrap_or("request failed")
            .to_string())
    }
}
