//! Compiled decode programs: everything a stream needs to decode online.

use std::sync::atomic::{AtomicU64, Ordering};

use qccd_core::{compile_cache, ArchitectureConfig, Compiler};
use qccd_decoder::{DecodeScratch, Decoder, DecoderKind, DecodingGraph, MemoConfig, MemoSnapshot};
use qccd_qec::{rotated_surface_code, MemoryBasis};
use qccd_sim::{DetectorErrorModel, NoisyCircuit};

use crate::ServiceError;

fn next_program_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// One compiled decoding setup shared by every stream of the same
/// `(architecture, distance, decoder)` configuration: the noisy circuit the
/// syndromes are assumed to come from, the decoder over its detector error
/// model, and a warm [`MemoSnapshot`] every service worker adopts before
/// decoding a batch (warmed exactly once per program, so the word path's
/// singles/pair fast lanes are hot from the first frame).
pub struct DecodeProgram {
    id: u64,
    key: String,
    noisy: NoisyCircuit,
    num_detectors: usize,
    num_observables: usize,
    decoder_kind: DecoderKind,
    decoder: Box<dyn Decoder + Send + Sync>,
    memo: MemoConfig,
    snapshot: Option<MemoSnapshot>,
}

impl std::fmt::Debug for DecodeProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecodeProgram")
            .field("id", &self.id)
            .field("key", &self.key)
            .field("num_detectors", &self.num_detectors)
            .field("num_observables", &self.num_observables)
            .field("decoder_kind", &self.decoder_kind)
            .field("warm_entries", &self.snapshot.as_ref().map(|s| s.len()))
            .finish()
    }
}

impl DecodeProgram {
    /// Compiles the paper's memory workload for `(arch, distance)` — through
    /// the process-wide [`compile_cache`], so repeated `open_stream`s of the
    /// same configuration compile once — and builds the decode setup over
    /// its detector error model.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Compile`] when the architecture cannot host the code,
    /// [`ServiceError::InvalidCircuit`] / [`ServiceError::TooManyObservables`]
    /// as in [`DecodeProgram::from_circuit`].
    pub fn compile(
        arch: &ArchitectureConfig,
        distance: usize,
        decoder: DecoderKind,
    ) -> Result<Self, ServiceError> {
        Self::compile_with_memo(arch, distance, decoder, MemoConfig::default())
    }

    /// [`DecodeProgram::compile`] with an explicit memo configuration: the
    /// warm snapshot (and every worker scratch adopting it) runs with
    /// `memo`'s defect/entry caps and dense-tier knobs.
    ///
    /// # Errors
    ///
    /// As [`DecodeProgram::compile`].
    pub fn compile_with_memo(
        arch: &ArchitectureConfig,
        distance: usize,
        decoder: DecoderKind,
        memo: MemoConfig,
    ) -> Result<Self, ServiceError> {
        let rounds = distance.max(1);
        let compile_key = compile_cache::memory_key(arch, distance, rounds, MemoryBasis::Z);
        let layout = rotated_surface_code(distance);
        let compiler = Compiler::new(arch.clone());
        let program = compile_cache::shared()
            .get_or_compile(&compile_key, || {
                compiler.compile_memory_experiment(&layout, rounds, MemoryBasis::Z)
            })
            .map_err(|e| ServiceError::Compile(e.to_string()))?;
        DecodeProgram::from_circuit_with_memo(
            DecodeProgram::config_key(arch, distance, decoder),
            program.to_noisy_circuit(),
            decoder,
            memo,
        )
    }

    /// The canonical program key of one `(arch, distance, decoder)`
    /// configuration — what [`DecodeProgram::compile`] registers under and
    /// what stream-opening deduplicates by.
    pub fn config_key(arch: &ArchitectureConfig, distance: usize, decoder: DecoderKind) -> String {
        let compile_key =
            compile_cache::memory_key(arch, distance, distance.max(1), MemoryBasis::Z);
        format!("{compile_key}|{decoder:?}")
    }

    /// Builds a decode program over an arbitrary noisy circuit (the
    /// replay/load-generation entry point; [`DecodeProgram::compile`] lowers
    /// onto this).
    ///
    /// # Errors
    ///
    /// [`ServiceError::InvalidCircuit`] if the circuit's annotations dangle,
    /// [`ServiceError::TooManyObservables`] if more than 64 observables are
    /// predicted.
    pub fn from_circuit(
        key: impl Into<String>,
        noisy: NoisyCircuit,
        decoder_kind: DecoderKind,
    ) -> Result<Self, ServiceError> {
        Self::from_circuit_with_memo(key, noisy, decoder_kind, MemoConfig::default())
    }

    /// [`DecodeProgram::from_circuit`] with an explicit memo configuration
    /// (see [`DecodeProgram::compile_with_memo`]).
    ///
    /// # Errors
    ///
    /// As [`DecodeProgram::from_circuit`].
    pub fn from_circuit_with_memo(
        key: impl Into<String>,
        noisy: NoisyCircuit,
        decoder_kind: DecoderKind,
        memo: MemoConfig,
    ) -> Result<Self, ServiceError> {
        let dem = DetectorErrorModel::from_circuit(&noisy)
            .map_err(|e| ServiceError::InvalidCircuit(format!("{e:?}")))?;
        if dem.num_observables > 64 {
            return Err(ServiceError::TooManyObservables(dem.num_observables));
        }
        let num_detectors = dem.num_detectors;
        let num_observables = dem.num_observables;
        let decoder = decoder_kind.build(DecodingGraph::from_dem(&dem));
        // Warm once per program: every worker adopts this snapshot, so no
        // stream ever pays a cold-start prefill. The snapshot carries the
        // memo configuration, so adoption installs `memo`'s caps and
        // dense-tier knobs in every worker scratch.
        let mut warm = DecodeScratch::with_memo_config(memo);
        let snapshot = decoder.warm_memo_snapshot(num_detectors, &mut warm);
        Ok(DecodeProgram {
            id: next_program_id(),
            key: key.into(),
            noisy,
            num_detectors,
            num_observables,
            decoder_kind,
            decoder,
            memo,
            snapshot,
        })
    }

    /// Process-unique identity of this program instance.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The canonical configuration key streams are deduplicated by.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Number of detectors per frame.
    pub fn num_detectors(&self) -> usize {
        self.num_detectors
    }

    /// Number of logical observables per correction.
    pub fn num_observables(&self) -> usize {
        self.num_observables
    }

    /// The decoder kind this program decodes with.
    pub fn decoder_kind(&self) -> DecoderKind {
        self.decoder_kind
    }

    /// The memo configuration the program was warmed with (what every
    /// worker scratch decodes under after adopting the snapshot).
    pub fn memo_config(&self) -> MemoConfig {
        self.memo
    }

    /// The noisy circuit the program assumes frames are sampled from (used
    /// by the replay load generator).
    pub fn circuit(&self) -> &NoisyCircuit {
        &self.noisy
    }

    /// Decodes one bit-packed chunk exactly as a service worker would —
    /// word-parallel, with the program's warm snapshot adopted into
    /// `scratch` first. This is the offline baseline the load generator
    /// verifies the streamed corrections against.
    pub fn decode_batch(
        &self,
        chunk: &qccd_sim::SyndromeChunk,
        scratch: &mut DecodeScratch,
    ) -> qccd_decoder::PredictionChunk {
        self.decoder
            .decode_batch_with_snapshot(chunk, scratch, self.snapshot.as_ref())
    }

    /// The decoder instance.
    pub(crate) fn decoder(&self) -> &(dyn Decoder + Send + Sync) {
        self.decoder.as_ref()
    }

    /// The warm memo snapshot workers adopt (absent when the decoder or
    /// memo opts out).
    pub(crate) fn snapshot(&self) -> Option<&MemoSnapshot> {
        self.snapshot.as_ref()
    }
}
