//! The streaming decode service core: sessions, the cross-stream
//! latency-deadline batcher, the worker pool and ordered per-stream
//! delivery.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use qccd_core::ArchitectureConfig;
use qccd_decoder::{DecodeScratch, DecoderKind, MemoConfig};
use qccd_sim::{NoisyCircuit, SyndromeChunkBuilder};

use crate::metrics::{MetricsInner, ServiceMetrics};
use crate::{DecodeProgram, ServiceError};

/// Tuning knobs of the decode service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Decode worker threads.
    pub workers: usize,
    /// Latency deadline of the batcher: a pending partial word is flushed
    /// once its *oldest* frame has waited this long. `Duration::ZERO`
    /// flushes on every submission (minimum latency, minimum batching).
    pub flush_deadline: Duration,
    /// Words (64-shot groups) the batcher coalesces into one decode job
    /// before flushing without waiting for the deadline. `1` flushes on
    /// every full word (the default); raising it amortises per-job overhead
    /// under sustained load at the cost of batching latency.
    pub max_batch_words: usize,
    /// Per-stream bound on frames in flight (submitted, correction not yet
    /// produced). Submission blocks — or `try_submit` refuses — beyond it.
    pub stream_queue_shots: usize,
    /// Memo configuration programs are warmed with and worker scratches
    /// decode under (defect/entry caps plus the dense-tier LRU knobs).
    pub memo: MemoConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            flush_deadline: Duration::from_micros(500),
            max_batch_words: 1,
            stream_queue_shots: 4096,
            memo: MemoConfig::default(),
        }
    }
}

impl ServiceConfig {
    /// Overrides the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Overrides the flush deadline.
    pub fn with_flush_deadline(mut self, deadline: Duration) -> Self {
        self.flush_deadline = deadline;
        self
    }

    /// Overrides the per-job word coalescing bound.
    pub fn with_max_batch_words(mut self, words: usize) -> Self {
        self.max_batch_words = words.max(1);
        self
    }

    /// Overrides the per-stream in-flight bound.
    pub fn with_stream_queue_shots(mut self, shots: usize) -> Self {
        self.stream_queue_shots = shots.max(1);
        self
    }

    /// Overrides the memo configuration (defect/entry caps and dense-tier
    /// knobs) applied to programs compiled by this service.
    pub fn with_memo(mut self, memo: MemoConfig) -> Self {
        self.memo = memo;
        self
    }

    fn flush_shots(&self) -> usize {
        self.max_batch_words.max(1) * 64
    }
}

/// One ordered correction delivered back on a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Correction {
    /// Submission sequence number this correction answers (per stream,
    /// starting at 0; delivery is in `seq` order).
    pub seq: u64,
    /// Observable-flip bitmask: bit `o` set means the decoder predicts
    /// logical observable `o` flipped.
    pub flips: u64,
}

/// A contiguous segment of frames of one stream inside a batch: `count`
/// frames with consecutive sequence numbers from `first_seq`, sharing one
/// submit timestamp (batched submissions arrive as whole segments, so
/// bookkeeping is per segment, not per frame).
#[derive(Debug, Clone, Copy)]
struct FrameRun {
    stream: u64,
    first_seq: u64,
    count: u32,
    submitted: Instant,
}

/// One burst of frames in either wire representation: fired-detector index
/// lists or detector-major packed words.
#[derive(Debug, Clone, Copy)]
enum FrameBatch<'a> {
    Indices(&'a [&'a [usize]]),
    Packed(&'a [&'a [u64]]),
}

impl<'a> FrameBatch<'a> {
    fn len(&self) -> usize {
        match self {
            FrameBatch::Indices(frames) => frames.len(),
            FrameBatch::Packed(frames) => frames.len(),
        }
    }

    fn split_at(self, mid: usize) -> (FrameBatch<'a>, FrameBatch<'a>) {
        match self {
            FrameBatch::Indices(frames) => {
                let (a, b) = frames.split_at(mid);
                (FrameBatch::Indices(a), FrameBatch::Indices(b))
            }
            FrameBatch::Packed(frames) => {
                let (a, b) = frames.split_at(mid);
                (FrameBatch::Packed(a), FrameBatch::Packed(b))
            }
        }
    }

    /// Rejects frames naming detectors outside the program before anything
    /// is enqueued.
    fn validate(&self, num_detectors: usize) -> Result<(), ServiceError> {
        match self {
            FrameBatch::Indices(frames) => {
                for fired in *frames {
                    if let Some(&bad) = fired.iter().find(|&&d| d >= num_detectors) {
                        return Err(ServiceError::DetectorOutOfRange {
                            detector: bad,
                            num_detectors,
                        });
                    }
                }
            }
            FrameBatch::Packed(frames) => {
                let frame_words = num_detectors.div_ceil(64);
                let tail_mask = if num_detectors.is_multiple_of(64) {
                    u64::MAX
                } else {
                    (1u64 << (num_detectors % 64)) - 1
                };
                for packed in *frames {
                    let tail_ok = packed.last().is_none_or(|&last| last & !tail_mask == 0);
                    if packed.len() != frame_words || !tail_ok {
                        return Err(ServiceError::DetectorOutOfRange {
                            detector: num_detectors,
                            num_detectors,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    fn push_into(&self, index: usize, builder: &mut SyndromeChunkBuilder) {
        match self {
            FrameBatch::Indices(frames) => builder.push_frame(frames[index]),
            FrameBatch::Packed(frames) => builder.push_packed_frame(frames[index]),
        }
    }
}

/// The reusable allocations of one batch: the frame-ingestion builder and
/// the routing list. Recycled through [`State::spares`] so the steady-state
/// submit path allocates nothing.
struct BatchParts {
    builder: SyndromeChunkBuilder,
    runs: Vec<FrameRun>,
}

/// The pending partial batch of one program.
struct Batch {
    program: Arc<DecodeProgram>,
    parts: BatchParts,
    oldest: Instant,
}

/// A flushed decode job: the packed frames of any number of streams plus
/// the routing information to hand each lane's correction back. The
/// frame→plane transpose (`builder.finish`) runs on the *worker*, outside
/// the service lock.
struct DecodeJob {
    program: Arc<DecodeProgram>,
    parts: BatchParts,
}

/// A contiguous run of corrections of one stream (`seq` =
/// `first_seq + index`). Corrections travel the delivery channel in runs —
/// one send per run instead of one per frame — and the
/// [`StreamReceiver`] flattens them back into single [`Correction`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CorrectionRun {
    first_seq: u64,
    flips: Vec<u64>,
}

impl CorrectionRun {
    fn len(&self) -> u64 {
        self.flips.len() as u64
    }
}

/// Min-heap ordering by `first_seq` for the per-stream reorder buffer.
impl Ord for CorrectionRun {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.first_seq.cmp(&other.first_seq)
    }
}

impl PartialOrd for CorrectionRun {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct StreamState {
    next_submit_seq: u64,
    inflight: usize,
    closed: bool,
    /// Out-of-order completed runs awaiting delivery. Runs are
    /// non-overlapping and gapless per stream (sequence numbers are
    /// assigned in submission order), so ordering by `first_seq` is enough.
    reorder: BinaryHeap<Reverse<CorrectionRun>>,
    next_deliver: u64,
    tx: mpsc::Sender<CorrectionRun>,
}

#[derive(Default)]
struct State {
    programs: HashMap<String, Arc<DecodeProgram>>,
    /// Pending partial batches, keyed by program id.
    pending: HashMap<u64, Batch>,
    jobs: VecDeque<DecodeJob>,
    streams: HashMap<u64, StreamState>,
    /// Recycled batch allocations per program id (workers return their
    /// job's parts here after routing).
    spares: HashMap<u64, Vec<BatchParts>>,
    next_stream: u64,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers wait here for jobs (and for flush deadlines).
    job_ready: Condvar,
    /// Submitters wait here for backpressure headroom.
    space_ready: Condvar,
    metrics: MetricsInner,
    config: ServiceConfig,
}

impl Shared {
    /// Flushes one program's pending batch into the job queue. Caller holds
    /// the state lock. The transpose into a bit-packed chunk is deferred to
    /// the worker, so the flush itself is O(1).
    fn flush_pending(&self, state: &mut State, program_id: u64, deadline_flush: bool) {
        use std::sync::atomic::Ordering;
        let Some(batch) = state.pending.remove(&program_id) else {
            return;
        };
        if batch.parts.builder.is_empty() {
            return;
        }
        self.metrics.words_flushed.fetch_add(
            (batch.parts.builder.pending_frames() as u64).div_ceil(64),
            Ordering::Relaxed,
        );
        if deadline_flush {
            self.metrics
                .deadline_flushes
                .fetch_add(1, Ordering::Relaxed);
        } else {
            self.metrics
                .full_word_flushes
                .fetch_add(1, Ordering::Relaxed);
        }
        state.jobs.push_back(DecodeJob {
            program: batch.program,
            parts: batch.parts,
        });
        self.job_ready.notify_one();
    }

    /// Flushes every pending batch whose oldest frame is overdue; returns
    /// the wait until the next deadline, if any batch remains pending.
    fn flush_overdue(&self, state: &mut State, now: Instant) -> Option<Duration> {
        let deadline = self.config.flush_deadline;
        let overdue: Vec<u64> = state
            .pending
            .iter()
            .filter(|(_, batch)| now.saturating_duration_since(batch.oldest) >= deadline)
            .map(|(&id, _)| id)
            .collect();
        for id in overdue {
            self.flush_pending(state, id, true);
        }
        state
            .pending
            .values()
            .map(|batch| (batch.oldest + deadline).saturating_duration_since(now))
            .min()
    }

    /// Routes one decoded job's corrections back to their streams (in-order
    /// per stream via the reorder heap) and releases backpressure.
    ///
    /// Contiguous same-stream frames (the common case under batched
    /// submission) are grouped into [`CorrectionRun`]s outside the lock, so
    /// the per-frame cost under the state lock — and the per-frame channel
    /// sends — collapse to per-run costs.
    fn route_corrections(&self, mut job: DecodeJob, flips_per_lane: &[u64]) {
        let now = Instant::now();
        // Materialise each frame run's correction run outside the lock.
        // Frames of a run share their submit timestamp, so the bulk latency
        // update is exact.
        let mut runs: Vec<(u64, CorrectionRun, Instant)> = Vec::with_capacity(job.parts.runs.len());
        let mut offset = 0usize;
        for run in &job.parts.runs {
            let count = run.count as usize;
            runs.push((
                run.stream,
                CorrectionRun {
                    first_seq: run.first_seq,
                    flips: flips_per_lane[offset..offset + count].to_vec(),
                },
                run.submitted,
            ));
            offset += count;
        }
        let mut state = self.state.lock().expect("service state lock");
        for (stream_id, run, submitted) in runs {
            self.metrics
                .note_completed_many(now.saturating_duration_since(submitted), run.len());
            let Some(stream) = state.streams.get_mut(&stream_id) else {
                continue;
            };
            stream.inflight -= run.flips.len();
            stream.reorder.push(Reverse(run));
            while let Some(Reverse(ready)) = stream.reorder.peek() {
                if ready.first_seq != stream.next_deliver {
                    break;
                }
                let Some(Reverse(ready)) = stream.reorder.pop() else {
                    unreachable!("peeked entry exists");
                };
                stream.next_deliver += ready.len();
                // A dropped receiver just discards the corrections.
                let _ = stream.tx.send(ready);
            }
            if stream.closed && stream.inflight == 0 {
                state.streams.remove(&stream_id);
            }
        }
        // Recycle the job's allocations for the next batch of its program.
        job.parts.runs.clear();
        let spares = state.spares.entry(job.program.id()).or_default();
        if spares.len() < 16 {
            spares.push(job.parts);
        }
        drop(state);
        self.space_ready.notify_all();
    }
}

fn worker_loop(shared: Arc<Shared>) {
    // One scratch per (worker, program): the memo stays owned by the right
    // decoder across interleaved jobs of different programs.
    let mut scratches: HashMap<u64, DecodeScratch> = HashMap::new();
    let mut flips: Vec<u64> = Vec::new();
    loop {
        let job = {
            let mut state = shared.state.lock().expect("service state lock");
            loop {
                // Enforce the latency deadline *before* popping queued
                // work, so a pending partial word is flushed on time even
                // while full-word jobs keep the queue busy (the scan is one
                // map entry per program with pending frames).
                let next_deadline = shared.flush_overdue(&mut state, Instant::now());
                if let Some(job) = state.jobs.pop_front() {
                    break Some(job);
                }
                if state.shutdown {
                    break None;
                }
                match next_deadline {
                    Some(wait) => {
                        let (next, _) = shared
                            .job_ready
                            .wait_timeout(state, wait.min(Duration::from_secs(1)))
                            .expect("service state lock");
                        state = next;
                    }
                    None => {
                        state = shared.job_ready.wait(state).expect("service state lock");
                    }
                }
            }
        };
        let Some(mut job) = job else { break };
        // Transpose the packed frames into bit planes and decode — both
        // outside the service lock.
        let chunk = job.parts.builder.finish(0, 0);
        let scratch = scratches
            .entry(job.program.id())
            .or_insert_with(|| DecodeScratch::with_memo_config(job.program.memo_config()));
        let before = scratch.cache_stats();
        let prediction = job.program.decoder().decode_batch_with_snapshot(
            &chunk,
            scratch,
            job.program.snapshot(),
        );
        shared
            .metrics
            .note_decode_cache(&scratch.cache_stats().since(&before));
        flips.clear();
        flips.resize(chunk.num_shots(), 0);
        for observable in 0..prediction.num_observables() {
            for (word_index, &word) in prediction.plane(observable).iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let shot = word_index * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    // The final word of a plane carries no bits beyond the
                    // shot count, so `shot` is always in range.
                    flips[shot] |= 1u64 << observable;
                }
            }
        }
        shared.route_corrections(job, &flips);
    }
}

/// The real-time decode service (see the [crate docs](crate) for the
/// architecture). Create with [`DecodeService::new`], open streams, submit
/// frames, receive ordered corrections; [`DecodeService::shutdown`] (or
/// drop) drains the queue and joins the workers.
#[derive(Debug)]
pub struct DecodeService {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("config", &self.config)
            .finish()
    }
}

impl DecodeService {
    /// Starts a service with `config.workers` decode workers.
    pub fn new(config: ServiceConfig) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State::default()),
            job_ready: Condvar::new(),
            space_ready: Condvar::new(),
            metrics: MetricsInner::new(),
            config,
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("qccd-decode-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn decode worker")
            })
            .collect();
        DecodeService {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// The service configuration.
    pub fn config(&self) -> ServiceConfig {
        self.shared.config
    }

    /// Opens a stream decoding the paper's memory workload for
    /// `(arch, distance)` with `decoder`. Streams of the same configuration
    /// share one [`DecodeProgram`] (one compile, one decoder, one warm memo
    /// snapshot) and coalesce into the same 64-shot words.
    ///
    /// # Errors
    ///
    /// Propagates [`DecodeProgram::compile`] errors; [`ServiceError::StreamClosed`]
    /// after shutdown.
    pub fn open_stream(
        &self,
        arch: &ArchitectureConfig,
        distance: usize,
        decoder: DecoderKind,
    ) -> Result<StreamHandle, ServiceError> {
        let key = DecodeProgram::config_key(arch, distance, decoder);
        let memo = self.shared.config.memo;
        self.open_stream_with(&key, || {
            DecodeProgram::compile_with_memo(arch, distance, decoder, memo).map(Arc::new)
        })
    }

    /// Opens a stream decoding an arbitrary noisy circuit under `key`
    /// (streams sharing a key share the program — the replay/load-generation
    /// entry point).
    ///
    /// # Errors
    ///
    /// Propagates [`DecodeProgram::from_circuit`] errors;
    /// [`ServiceError::StreamClosed`] after shutdown.
    pub fn open_stream_circuit(
        &self,
        key: &str,
        circuit: &NoisyCircuit,
        decoder: DecoderKind,
    ) -> Result<StreamHandle, ServiceError> {
        let memo = self.shared.config.memo;
        self.open_stream_with(key, || {
            DecodeProgram::from_circuit_with_memo(key, circuit.clone(), decoder, memo).map(Arc::new)
        })
    }

    /// Opens a stream over a caller-built [`DecodeProgram`] (registered
    /// under the program's own key; streams sharing the key share the
    /// registered program). Lets replay tools reuse one program for both
    /// the service streams and their offline verification reference.
    ///
    /// # Errors
    ///
    /// [`ServiceError::StreamClosed`] after shutdown.
    pub fn open_stream_program(
        &self,
        program: &Arc<DecodeProgram>,
    ) -> Result<StreamHandle, ServiceError> {
        let key = program.key().to_string();
        self.open_stream_with(&key, || Ok(Arc::clone(program)))
    }

    fn open_stream_with(
        &self,
        key: &str,
        build: impl FnOnce() -> Result<Arc<DecodeProgram>, ServiceError>,
    ) -> Result<StreamHandle, ServiceError> {
        let existing = {
            let state = self.shared.state.lock().expect("service state lock");
            if state.shutdown {
                return Err(ServiceError::StreamClosed);
            }
            state.programs.get(key).cloned()
        };
        // Build (compile + warm) outside the lock; a racing open of the
        // same key keeps the first-registered program.
        let program = match existing {
            Some(program) => program,
            None => build()?,
        };
        let (tx, rx) = mpsc::channel();
        let mut state = self.shared.state.lock().expect("service state lock");
        if state.shutdown {
            return Err(ServiceError::StreamClosed);
        }
        let program = state
            .programs
            .entry(key.to_string())
            .or_insert(program)
            .clone();
        let id = state.next_stream;
        state.next_stream += 1;
        state.streams.insert(
            id,
            StreamState {
                next_submit_seq: 0,
                inflight: 0,
                closed: false,
                reorder: BinaryHeap::new(),
                next_deliver: 0,
                tx,
            },
        );
        Ok(StreamHandle {
            sender: StreamSender {
                shared: Arc::clone(&self.shared),
                id,
                program,
            },
            receiver: StreamReceiver {
                id,
                rx,
                current: None,
            },
        })
    }

    /// A live snapshot of the service metrics.
    pub fn metrics(&self) -> ServiceMetrics {
        let streams_open = self
            .shared
            .state
            .lock()
            .expect("service state lock")
            .streams
            .len();
        self.shared.metrics.snapshot(streams_open)
    }

    /// Drains every queued frame, stops the workers and closes every
    /// stream. Idempotent; also invoked on drop.
    pub fn shutdown(&self) {
        {
            let mut state = self.shared.state.lock().expect("service state lock");
            if state.shutdown {
                return;
            }
            state.shutdown = true;
            let pending: Vec<u64> = state.pending.keys().copied().collect();
            for id in pending {
                self.shared.flush_pending(&mut state, id, true);
            }
            self.shared.job_ready.notify_all();
            self.shared.space_ready.notify_all();
        }
        let workers = std::mem::take(&mut *self.workers.lock().expect("worker list lock"));
        for worker in workers {
            worker.join().expect("decode worker panicked");
        }
        // Drop every sender so receivers observe end-of-stream after
        // draining what was decoded.
        let mut state = self.shared.state.lock().expect("service state lock");
        state.streams.clear();
    }
}

impl Drop for DecodeService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Both halves of an open stream. [`StreamHandle::split`] separates the
/// (cloneable) submission side from the receiving side so they can live on
/// different threads.
#[derive(Debug)]
pub struct StreamHandle {
    /// The submission half.
    pub sender: StreamSender,
    /// The ordered-correction half.
    pub receiver: StreamReceiver,
}

impl StreamHandle {
    /// Splits the handle into its submission and receiving halves.
    pub fn split(self) -> (StreamSender, StreamReceiver) {
        (self.sender, self.receiver)
    }

    /// [`StreamSender::submit`] on the handle.
    ///
    /// # Errors
    ///
    /// See [`StreamSender::submit`].
    pub fn submit(&self, fired: &[usize]) -> Result<u64, ServiceError> {
        self.sender.submit(fired)
    }

    /// [`StreamReceiver::recv`] on the handle.
    pub fn recv(&mut self) -> Option<Correction> {
        self.receiver.recv()
    }
}

/// The submission half of a stream (cloneable; all clones feed the same
/// sequence).
#[derive(Debug, Clone)]
pub struct StreamSender {
    shared: Arc<Shared>,
    id: u64,
    program: Arc<DecodeProgram>,
}

impl StreamSender {
    /// Number of detectors a frame of this stream must stay within.
    pub fn num_detectors(&self) -> usize {
        self.program.num_detectors()
    }

    /// Number of observables each correction covers.
    pub fn num_observables(&self) -> usize {
        self.program.num_observables()
    }

    /// The stream id (diagnostics).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Submits one frame (the fired-detector index list of one shot) and
    /// returns its sequence number. **Blocks** while the stream's bounded
    /// queue is full (backpressure).
    ///
    /// # Errors
    ///
    /// [`ServiceError::DetectorOutOfRange`] for invalid frames,
    /// [`ServiceError::StreamClosed`] once the stream or service is closed.
    pub fn submit(&self, fired: &[usize]) -> Result<u64, ServiceError> {
        self.submit_inner(fired, true)
    }

    /// Non-blocking [`StreamSender::submit`]: refuses with
    /// [`ServiceError::Backpressure`] instead of waiting for queue space.
    ///
    /// # Errors
    ///
    /// As [`StreamSender::submit`], plus [`ServiceError::Backpressure`].
    pub fn try_submit(&self, fired: &[usize]) -> Result<u64, ServiceError> {
        self.submit_inner(fired, false)
    }

    /// Submits many frames in one call: one lock acquisition, one
    /// timestamp and one bulk metrics update for the whole burst — the
    /// high-rate entry point (a per-frame [`StreamSender::submit`] loop
    /// pays the service lock per frame and tops out an order of magnitude
    /// lower). Returns the sequence range assigned to the burst. **Blocks**
    /// whenever the bounded queue is full, submitting what fits first.
    ///
    /// # Errors
    ///
    /// As [`StreamSender::submit`]; on a bad frame nothing is submitted.
    pub fn submit_batch(&self, frames: &[&[usize]]) -> Result<std::ops::Range<u64>, ServiceError> {
        self.submit_batch_inner(FrameBatch::Indices(frames), true)
    }

    /// [`StreamSender::submit_batch`] for frames already in the
    /// detector-major **packed** wire format (bit `d` = detector `d` fired,
    /// `ceil(num_detectors / 64)` words per frame — what
    /// [`qccd_sim::SyndromeChunk::packed_frame_into`] produces). Packed
    /// ingestion is a word-level copy per frame, the fastest path through
    /// the batcher.
    ///
    /// # Errors
    ///
    /// As [`StreamSender::submit_batch`]; a frame with the wrong word count
    /// or with out-of-range detector bits set is rejected
    /// ([`ServiceError::DetectorOutOfRange`]) before anything is submitted.
    pub fn submit_packed_batch(
        &self,
        frames: &[&[u64]],
    ) -> Result<std::ops::Range<u64>, ServiceError> {
        self.submit_batch_inner(FrameBatch::Packed(frames), true)
    }

    fn submit_batch_inner(
        &self,
        frames: FrameBatch<'_>,
        block: bool,
    ) -> Result<std::ops::Range<u64>, ServiceError> {
        frames.validate(self.program.num_detectors())?;
        if frames.len() == 0 {
            return Ok(0..0);
        }
        let shared = &self.shared;
        let mut remaining = frames;
        let mut first_seq = None;
        let mut next_seq = 0;
        let mut state = shared.state.lock().expect("service state lock");
        while remaining.len() > 0 {
            // Wait for queue headroom (backpressure), then take what fits.
            let room = loop {
                let Some(stream) = state.streams.get(&self.id) else {
                    return Err(ServiceError::StreamClosed);
                };
                if stream.closed || state.shutdown {
                    return Err(ServiceError::StreamClosed);
                }
                let room = shared.config.stream_queue_shots - stream.inflight;
                if room > 0 {
                    break room;
                }
                if !block {
                    return Err(ServiceError::Backpressure);
                }
                state = shared.space_ready.wait(state).expect("service state lock");
            };
            let take = remaining.len().min(room);
            let (burst, rest) = remaining.split_at(take);
            remaining = rest;
            let now = Instant::now();
            let stream = state.streams.get_mut(&self.id).expect("checked above");
            let mut seq = stream.next_submit_seq;
            first_seq.get_or_insert(seq);
            stream.next_submit_seq += take as u64;
            stream.inflight += take;
            shared.metrics.note_submitted_many(take as u64);
            let program_id = self.program.id();
            let flush_shots = shared.config.flush_shots();
            let mut filled_word = false;
            let mut index = 0;
            // Fill flush-bounded segments: one pending-map lookup per
            // segment, not per frame.
            while index < burst.len() {
                if !state.pending.contains_key(&program_id) {
                    let parts = state
                        .spares
                        .get_mut(&program_id)
                        .and_then(Vec::pop)
                        .unwrap_or_else(|| BatchParts {
                            builder: SyndromeChunkBuilder::new(
                                self.program.num_detectors(),
                                self.program.num_observables(),
                            ),
                            runs: Vec::new(),
                        });
                    state.pending.insert(
                        program_id,
                        Batch {
                            program: Arc::clone(&self.program),
                            parts,
                            oldest: now,
                        },
                    );
                }
                let batch = state.pending.get_mut(&program_id).expect("just ensured");
                if batch.parts.builder.is_empty() {
                    batch.oldest = now;
                }
                // One frame run (and one bookkeeping record) per
                // flush-bounded segment.
                let segment =
                    (burst.len() - index).min(flush_shots - batch.parts.builder.pending_frames());
                for i in index..index + segment {
                    burst.push_into(i, &mut batch.parts.builder);
                }
                batch.parts.runs.push(FrameRun {
                    stream: self.id,
                    first_seq: seq,
                    count: segment as u32,
                    submitted: now,
                });
                seq += segment as u64;
                index += segment;
                if batch.parts.builder.pending_frames() >= flush_shots {
                    shared.flush_pending(&mut state, program_id, false);
                    filled_word = true;
                }
            }
            next_seq = seq;
            if shared.config.flush_deadline.is_zero() {
                shared.flush_pending(&mut state, program_id, true);
            } else if !filled_word {
                // Frames are pending behind the deadline: make sure a
                // worker's deadline timer is ticking.
                shared.job_ready.notify_one();
            }
        }
        let first = first_seq.expect("frames is non-empty when the loop ran");
        Ok(first..next_seq)
    }

    fn submit_inner(&self, fired: &[usize], block: bool) -> Result<u64, ServiceError> {
        self.submit_batch_inner(FrameBatch::Indices(&[fired]), block)
            .map(|range| range.start)
    }

    /// Closes the stream: no further submissions are accepted, frames
    /// already submitted still decode, and the receiver drains the remaining
    /// corrections before observing end-of-stream. The stream's pending
    /// partial word is flushed immediately. Idempotent.
    pub fn close(&self) {
        let mut state = self.shared.state.lock().expect("service state lock");
        let program_id = self.program.id();
        let remove = match state.streams.get_mut(&self.id) {
            Some(stream) => {
                stream.closed = true;
                stream.inflight == 0
            }
            None => false,
        };
        // Don't strand this stream's queued frames behind the deadline —
        // but only when it actually has frames in the shared pending batch
        // (an idle stream's close must not force-flush other streams'
        // partial words).
        let has_pending = state
            .pending
            .get(&program_id)
            .is_some_and(|batch| batch.parts.runs.iter().any(|run| run.stream == self.id));
        if has_pending {
            self.shared.flush_pending(&mut state, program_id, true);
        }
        if remove {
            state.streams.remove(&self.id);
        }
        drop(state);
        self.shared.space_ready.notify_all();
    }
}

/// The receiving half of a stream: corrections arrive in submission order.
///
/// Corrections travel the delivery channel as contiguous runs (one channel
/// send per decoded run, not per frame); the receiver flattens them back
/// into single [`Correction`]s, so the API stays frame-granular.
#[derive(Debug)]
pub struct StreamReceiver {
    id: u64,
    rx: mpsc::Receiver<CorrectionRun>,
    /// The run currently being flattened and the next index within it.
    current: Option<(CorrectionRun, usize)>,
}

impl StreamReceiver {
    /// The stream id (diagnostics).
    pub fn id(&self) -> u64 {
        self.id
    }

    fn next_buffered(&mut self) -> Option<Correction> {
        let (run, index) = self.current.as_mut()?;
        let correction = Correction {
            seq: run.first_seq + *index as u64,
            flips: run.flips[*index],
        };
        *index += 1;
        if *index == run.flips.len() {
            self.current = None;
        }
        Some(correction)
    }

    fn buffer(&mut self, run: CorrectionRun) -> Correction {
        debug_assert!(!run.flips.is_empty(), "runs are never empty");
        self.current = Some((run, 0));
        self.next_buffered().expect("freshly buffered run")
    }

    /// Blocks for the next in-order correction; `None` once the stream is
    /// closed and fully drained.
    pub fn recv(&mut self) -> Option<Correction> {
        if let Some(correction) = self.next_buffered() {
            return Some(correction);
        }
        self.rx.recv().ok().map(|run| self.buffer(run))
    }

    /// Non-blocking receive.
    pub fn try_recv(&mut self) -> Option<Correction> {
        if let Some(correction) = self.next_buffered() {
            return Some(correction);
        }
        self.rx.try_recv().ok().map(|run| self.buffer(run))
    }

    /// Receive with a timeout (`None` on timeout or end-of-stream).
    pub fn recv_timeout(&mut self, timeout: Duration) -> Option<Correction> {
        if let Some(correction) = self.next_buffered() {
            return Some(correction);
        }
        self.rx
            .recv_timeout(timeout)
            .ok()
            .map(|run| self.buffer(run))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qccd_circuit::{Detector, Instruction, LogicalObservable, MeasurementRef, QubitId};
    use qccd_sim::NoiseChannel;

    /// A one-qubit circuit whose single detector mirrors its single
    /// observable: the decoder's correction for frame `[0]` is flip, for
    /// `[]` no flip — easy to assert exactly.
    fn mirror_circuit() -> NoisyCircuit {
        let q = QubitId::new(0);
        let mut c = NoisyCircuit::new();
        c.push_gate(Instruction::Reset(q));
        c.push_noise(NoiseChannel::BitFlip { qubit: q, p: 0.25 });
        c.push_gate(Instruction::Measure(q));
        c.add_detector(Detector::new(vec![MeasurementRef::new(q, 0)]));
        c.add_observable(LogicalObservable::new(vec![MeasurementRef::new(q, 0)]));
        c
    }

    /// Six independent qubits, one detector each, observable on qubit 0:
    /// frames can fire enough detectors to overflow the memo defect cap.
    fn six_detector_circuit() -> NoisyCircuit {
        let mut c = NoisyCircuit::new();
        for i in 0..6 {
            let q = QubitId::new(i);
            c.push_gate(Instruction::Reset(q));
            c.push_noise(NoiseChannel::BitFlip { qubit: q, p: 0.25 });
            c.push_gate(Instruction::Measure(q));
            c.add_detector(Detector::new(vec![MeasurementRef::new(q, 0)]));
        }
        c.add_observable(LogicalObservable::new(vec![MeasurementRef::new(
            QubitId::new(0),
            0,
        )]));
        c
    }

    #[test]
    fn dense_frames_surface_in_the_live_metrics() {
        let service = DecodeService::new(
            ServiceConfig::default()
                .with_workers(1)
                .with_flush_deadline(Duration::from_micros(50)),
        );
        let circuit = six_detector_circuit();
        let mut handle = service
            .open_stream_circuit("dense", &circuit, DecoderKind::UnionFind)
            .unwrap();
        // Five fired detectors exceed the default memo cap of four: the
        // lane takes the dense tier. Submitted twice, the second frame is
        // answered by the lane LRU.
        let dense_frame = [0usize, 1, 2, 3, 4];
        for _ in 0..2 {
            handle.submit(&dense_frame).unwrap();
        }
        for _ in 0..2 {
            let correction = handle.recv().expect("correction");
            assert_eq!(correction.flips, 1, "detector 0 mirrors observable 0");
        }
        let metrics = service.metrics();
        assert!(
            metrics.dense_misses >= 1,
            "the first dense frame misses the lane LRU: {metrics:?}"
        );
        assert!(
            metrics.dense_hits >= 1,
            "the repeat frame hits the lane LRU: {metrics:?}"
        );
        assert_eq!(metrics.cluster_conflicts, 0, "isolated defects never clash");
        let json = metrics.to_json();
        assert_eq!(
            json.get("dense_misses").and_then(|v| v.as_u64()),
            Some(metrics.dense_misses),
            "dense counters ride the metrics JSON"
        );
        service.shutdown();
    }

    #[test]
    fn dense_tier_can_be_disabled_through_the_service_config() {
        let service = DecodeService::new(
            ServiceConfig::default()
                .with_workers(1)
                .with_flush_deadline(Duration::from_micros(50))
                .with_memo(qccd_decoder::MemoConfig::default().with_dense_max_entries(0)),
        );
        let circuit = six_detector_circuit();
        let mut handle = service
            .open_stream_circuit("dense-off", &circuit, DecoderKind::UnionFind)
            .unwrap();
        for _ in 0..2 {
            handle.submit(&[0, 1, 2, 3, 4]).unwrap();
        }
        for _ in 0..2 {
            assert_eq!(handle.recv().expect("correction").flips, 1);
        }
        let metrics = service.metrics();
        assert_eq!(metrics.dense_hits, 0, "disabled tier never counts");
        assert_eq!(metrics.dense_misses, 0);
        service.shutdown();
    }

    #[test]
    fn corrections_come_back_in_order_with_correct_flips() {
        let service = DecodeService::new(
            ServiceConfig::default()
                .with_workers(2)
                .with_flush_deadline(Duration::from_micros(50)),
        );
        let circuit = mirror_circuit();
        let mut handle = service
            .open_stream_circuit("mirror", &circuit, DecoderKind::UnionFind)
            .unwrap();
        assert_eq!(handle.sender.num_detectors(), 1);
        assert_eq!(handle.sender.num_observables(), 1);
        let fired: Vec<bool> = (0..300).map(|i| i % 3 == 0).collect();
        for &f in &fired {
            handle
                .submit(if f { &[0][..] } else { &[][..] })
                .expect("submit");
        }
        for (i, &f) in fired.iter().enumerate() {
            let correction = handle.recv().expect("correction");
            assert_eq!(correction.seq, i as u64);
            assert_eq!(correction.flips, u64::from(f), "frame {i}");
        }
        handle.sender.close();
        assert!(handle.recv().is_none(), "closed stream drains to None");
        let metrics = service.metrics();
        assert_eq!(metrics.frames_submitted, 300);
        assert_eq!(metrics.frames_completed, 300);
        assert_eq!(metrics.queue_depth, 0);
        assert!(metrics.words_flushed >= 5);
        assert!(metrics.p50_latency_us > 0.0);
        service.shutdown();
    }

    #[test]
    fn streams_share_programs_and_words() {
        let service = DecodeService::new(
            ServiceConfig::default().with_flush_deadline(Duration::from_millis(5)),
        );
        let circuit = mirror_circuit();
        let mut a = service
            .open_stream_circuit("shared", &circuit, DecoderKind::UnionFind)
            .unwrap();
        let mut b = service
            .open_stream_circuit("shared", &circuit, DecoderKind::UnionFind)
            .unwrap();
        // 32 frames per stream coalesce into exactly one full 64-shot word.
        for i in 0..32 {
            a.submit(if i % 2 == 0 { &[0][..] } else { &[][..] })
                .unwrap();
            b.submit(&[0]).unwrap();
        }
        for i in 0..32u64 {
            assert_eq!(
                a.recv().unwrap(),
                Correction {
                    seq: i,
                    flips: (i % 2 == 0) as u64
                }
            );
            assert_eq!(b.recv().unwrap(), Correction { seq: i, flips: 1 });
        }
        let metrics = service.metrics();
        assert_eq!(metrics.words_flushed, 1, "cross-stream frames share a word");
        assert_eq!(metrics.full_word_flushes, 1);
        assert_eq!(metrics.deadline_flushes, 0);
        service.shutdown();
    }

    #[test]
    fn deadline_flushes_partial_words() {
        let service = DecodeService::new(
            ServiceConfig::default().with_flush_deadline(Duration::from_micros(100)),
        );
        let circuit = mirror_circuit();
        let mut handle = service
            .open_stream_circuit("partial", &circuit, DecoderKind::UnionFind)
            .unwrap();
        handle.submit(&[0]).unwrap();
        // A lone frame cannot fill a word; only the deadline can flush it.
        let correction = handle
            .receiver
            .recv_timeout(Duration::from_secs(10))
            .expect("deadline flush must deliver the lone frame");
        assert_eq!(correction, Correction { seq: 0, flips: 1 });
        let metrics = service.metrics();
        assert_eq!(metrics.deadline_flushes, 1);
        assert_eq!(metrics.full_word_flushes, 0);
        service.shutdown();
    }

    #[test]
    fn backpressure_bounds_the_stream_queue() {
        // One worker, huge deadline, tiny queue: the queue must fill.
        let service = DecodeService::new(
            ServiceConfig::default()
                .with_workers(1)
                .with_flush_deadline(Duration::from_secs(30))
                .with_stream_queue_shots(4),
        );
        let circuit = mirror_circuit();
        let mut handle = service
            .open_stream_circuit("bp", &circuit, DecoderKind::UnionFind)
            .unwrap();
        for _ in 0..4 {
            handle.sender.try_submit(&[0]).expect("queue has room");
        }
        assert_eq!(
            handle.sender.try_submit(&[0]),
            Err(ServiceError::Backpressure)
        );
        assert_eq!(service.metrics().queue_depth, 4);
        // Closing flushes the partial word; the queue drains and the
        // receiver sees all four corrections.
        handle.sender.close();
        for i in 0..4u64 {
            assert_eq!(handle.recv().unwrap().seq, i);
        }
        assert!(handle.recv().is_none());
        service.shutdown();
    }

    #[test]
    fn bad_frames_and_closed_streams_error() {
        let service = DecodeService::new(ServiceConfig::default());
        let circuit = mirror_circuit();
        let handle = service
            .open_stream_circuit("err", &circuit, DecoderKind::UnionFind)
            .unwrap();
        assert_eq!(
            handle.submit(&[7]),
            Err(ServiceError::DetectorOutOfRange {
                detector: 7,
                num_detectors: 1
            })
        );
        handle.sender.close();
        assert_eq!(handle.submit(&[]), Err(ServiceError::StreamClosed));
        service.shutdown();
        assert!(service
            .open_stream_circuit("late", &circuit, DecoderKind::UnionFind)
            .is_err());
    }

    #[test]
    fn shutdown_drains_queued_frames() {
        let service = DecodeService::new(
            ServiceConfig::default()
                .with_workers(1)
                .with_flush_deadline(Duration::from_secs(30)),
        );
        let circuit = mirror_circuit();
        let mut handle = service
            .open_stream_circuit("drain", &circuit, DecoderKind::UnionFind)
            .unwrap();
        for _ in 0..10 {
            handle.submit(&[0]).unwrap();
        }
        // Shutdown flushes the partial word and decodes it before joining.
        service.shutdown();
        let mut received = 0;
        while handle.recv().is_some() {
            received += 1;
        }
        assert_eq!(received, 10);
    }
}
