//! The streaming decode service core: sessions, the per-program sharded
//! latency-deadline batcher, the worker pool, the dedicated deadline
//! flusher and ordered per-stream delivery.
//!
//! # Locking
//!
//! The hot path touches three lock tiers, always in this order:
//! per-stream delivery lock → per-program shard lock → job-queue lock.
//! The flusher's own lock is never held while a shard lock is taken (the
//! flusher drains its armed list first, then scans shards lock-free of
//! it), and the stream/shard/program registries are only locked on cold
//! paths (open, close, metrics, shutdown) — never nested inside a stream
//! or shard lock.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use qccd_core::ArchitectureConfig;
use qccd_decoder::{DecodeScratch, DecoderKind, MemoConfig};
use qccd_sim::{NoisyCircuit, SyndromeChunkBuilder};
use qccd_telemetry::{Registry, RegistrySnapshot, TelemetryConfig};

use crate::metrics::{FlushStat, MetricsInner, ServiceMetrics};
use crate::{DecodeProgram, ServiceError};

/// Tuning knobs of the decode service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Decode worker threads.
    pub workers: usize,
    /// Latency deadline of the batcher: a pending partial word is flushed
    /// once its *oldest* frame has waited this long. `Duration::ZERO`
    /// flushes on every submission (minimum latency, minimum batching).
    pub flush_deadline: Duration,
    /// Words (64-shot groups) the batcher coalesces into one decode job
    /// before flushing without waiting for the deadline. `1` flushes on
    /// every full word (the default); raising it amortises per-job overhead
    /// under sustained load at the cost of batching latency.
    pub max_batch_words: usize,
    /// Per-stream bound on frames in flight (submitted, correction not yet
    /// produced). Submission blocks — or `try_submit` refuses — beyond it.
    pub stream_queue_shots: usize,
    /// Memo configuration programs are warmed with and worker scratches
    /// decode under (defect/entry caps plus the dense-tier LRU knobs).
    pub memo: MemoConfig,
    /// Telemetry configuration of the service's unified metrics registry
    /// (per-stage spans, mirrors of the legacy counters). Disabling it
    /// reduces every instrumentation site to a single branch; the legacy
    /// [`ServiceMetrics`] snapshot keeps working either way.
    pub telemetry: TelemetryConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            flush_deadline: Duration::from_micros(500),
            max_batch_words: 1,
            stream_queue_shots: 4096,
            memo: MemoConfig::default(),
            telemetry: TelemetryConfig::default(),
        }
    }
}

impl ServiceConfig {
    /// Overrides the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Overrides the flush deadline.
    pub fn with_flush_deadline(mut self, deadline: Duration) -> Self {
        self.flush_deadline = deadline;
        self
    }

    /// Overrides the per-job word coalescing bound.
    pub fn with_max_batch_words(mut self, words: usize) -> Self {
        self.max_batch_words = words.max(1);
        self
    }

    /// Overrides the per-stream in-flight bound.
    pub fn with_stream_queue_shots(mut self, shots: usize) -> Self {
        self.stream_queue_shots = shots.max(1);
        self
    }

    /// Overrides the memo configuration (defect/entry caps and dense-tier
    /// knobs) applied to programs compiled by this service.
    pub fn with_memo(mut self, memo: MemoConfig) -> Self {
        self.memo = memo;
        self
    }

    /// Overrides the telemetry configuration (master switch and span
    /// sampling period).
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }

    fn flush_shots(&self) -> usize {
        self.max_batch_words.max(1) * 64
    }
}

/// One ordered correction delivered back on a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Correction {
    /// Submission sequence number this correction answers (per stream,
    /// starting at 0; delivery is in `seq` order).
    pub seq: u64,
    /// Observable-flip bitmask: bit `o` set means the decoder predicts
    /// logical observable `o` flipped.
    pub flips: u64,
}

/// A **shot-major** group of up to 64 frames in the pre-transposed wire
/// layout: one `u64` per detector, bit `s` of word `d` = "shot `s` of the
/// block fired detector `d`" — exactly what
/// [`qccd_sim::SyndromeChunk::word_block_into`] extracts and
/// [`qccd_sim::SyndromeChunkBuilder::push_word_block`] ingests. Submitting
/// blocks ([`StreamSender::submit_word_batch`]) deletes the per-frame
/// transpose from the service hot path: the batcher folds each plane in
/// with a shift-OR instead of scattering bits frame by frame.
#[derive(Debug, Clone, Copy)]
pub struct WordBlock<'a> {
    /// `num_detectors` plane words (bit `s` of word `d` = shot `s` fired
    /// detector `d`).
    pub planes: &'a [u64],
    /// Shots carried by the block (`1..=64`); bits at or above `count`
    /// must be clear in every plane word.
    pub count: usize,
}

/// Why a pending batch was flushed to the decode queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlushCause {
    /// The batch reached `max_batch_words` full words.
    FullWord,
    /// The oldest pending frame hit the latency deadline.
    Deadline,
    /// Every stream contributing to the batch closed.
    Close,
    /// Service shutdown drained the batch (books as a deadline flush).
    Shutdown,
}

/// A contiguous segment of frames of one stream inside a batch: `count`
/// frames with consecutive sequence numbers from `first_seq`, sharing one
/// submit timestamp (batched submissions arrive as whole segments, so
/// bookkeeping is per segment, not per frame).
#[derive(Debug, Clone)]
struct FrameRun {
    stream: Arc<StreamCore>,
    first_seq: u64,
    count: u32,
    submitted: Instant,
}

/// One burst of frames in any wire representation: fired-detector index
/// lists, detector-major packed words, or shot-major word blocks.
#[derive(Debug, Clone, Copy)]
enum FrameBatch<'a> {
    Indices(&'a [&'a [usize]]),
    Packed(&'a [&'a [u64]]),
    Blocks(&'a [WordBlock<'a>]),
}

impl<'a> FrameBatch<'a> {
    /// Total shots carried by the burst.
    fn shots(&self) -> usize {
        match self {
            FrameBatch::Indices(frames) => frames.len(),
            FrameBatch::Packed(frames) => frames.len(),
            FrameBatch::Blocks(blocks) => blocks.iter().map(|b| b.count).sum(),
        }
    }

    /// Smallest number of queue slots the next indivisible unit needs:
    /// one frame, or the whole leading word block (blocks are
    /// pre-transposed and never split).
    fn min_take(&self) -> usize {
        match self {
            FrameBatch::Indices(_) | FrameBatch::Packed(_) => 1,
            FrameBatch::Blocks(blocks) => blocks.first().map_or(1, |b| b.count),
        }
    }

    /// Splits off the largest prefix fitting `room` queue slots; returns
    /// `(taken, rest, shots_taken)`.
    fn take_for_room(self, room: usize) -> (FrameBatch<'a>, FrameBatch<'a>, usize) {
        match self {
            FrameBatch::Indices(frames) => {
                let take = frames.len().min(room);
                let (a, b) = frames.split_at(take);
                (FrameBatch::Indices(a), FrameBatch::Indices(b), take)
            }
            FrameBatch::Packed(frames) => {
                let take = frames.len().min(room);
                let (a, b) = frames.split_at(take);
                (FrameBatch::Packed(a), FrameBatch::Packed(b), take)
            }
            FrameBatch::Blocks(blocks) => {
                let mut shots = 0;
                let mut take = 0;
                for block in blocks {
                    if shots + block.count > room {
                        break;
                    }
                    shots += block.count;
                    take += 1;
                }
                let (a, b) = blocks.split_at(take);
                (FrameBatch::Blocks(a), FrameBatch::Blocks(b), shots)
            }
        }
    }

    /// Rejects malformed frames or blocks before anything is enqueued.
    fn validate(&self, num_detectors: usize, queue_shots: usize) -> Result<(), ServiceError> {
        match self {
            FrameBatch::Indices(frames) => {
                for fired in *frames {
                    if let Some(&bad) = fired.iter().find(|&&d| d >= num_detectors) {
                        return Err(ServiceError::DetectorOutOfRange {
                            detector: bad,
                            num_detectors,
                        });
                    }
                }
            }
            FrameBatch::Packed(frames) => {
                let frame_words = num_detectors.div_ceil(64);
                let tail_mask = if num_detectors.is_multiple_of(64) {
                    u64::MAX
                } else {
                    (1u64 << (num_detectors % 64)) - 1
                };
                for packed in *frames {
                    let tail_ok = packed.last().is_none_or(|&last| last & !tail_mask == 0);
                    if packed.len() != frame_words || !tail_ok {
                        return Err(ServiceError::DetectorOutOfRange {
                            detector: num_detectors,
                            num_detectors,
                        });
                    }
                }
            }
            FrameBatch::Blocks(blocks) => {
                for block in *blocks {
                    if block.planes.len() != num_detectors {
                        return Err(ServiceError::InvalidWordBlock(
                            "a word block must carry one plane word per detector",
                        ));
                    }
                    if !(1..=64).contains(&block.count) {
                        return Err(ServiceError::InvalidWordBlock(
                            "a word block carries 1..=64 shots",
                        ));
                    }
                    if block.count < 64 {
                        let valid = (1u64 << block.count) - 1;
                        if block.planes.iter().any(|&w| w & !valid != 0) {
                            return Err(ServiceError::InvalidWordBlock(
                                "a word block must clear bits at or above its shot count",
                            ));
                        }
                    }
                    if block.count > queue_shots {
                        return Err(ServiceError::WordBlockTooLarge {
                            count: block.count,
                            stream_queue_shots: queue_shots,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    fn push_into(&self, index: usize, builder: &mut SyndromeChunkBuilder) {
        match self {
            FrameBatch::Indices(frames) => builder.push_frame(frames[index]),
            FrameBatch::Packed(frames) => builder.push_packed_frame(frames[index]),
            FrameBatch::Blocks(_) => unreachable!("blocks are pushed whole"),
        }
    }
}

/// The reusable allocations of one batch: the frame-ingestion builder and
/// the routing list. Recycled through [`ShardState::spares`] so the
/// steady-state submit path allocates nothing.
#[derive(Debug)]
struct BatchParts {
    builder: SyndromeChunkBuilder,
    runs: Vec<FrameRun>,
}

/// The pending partial batch of one program shard.
#[derive(Debug)]
struct PendingBatch {
    parts: BatchParts,
    oldest: Instant,
}

/// A flushed decode job: the packed frames of any number of streams plus
/// the routing information to hand each lane's correction back. The
/// frame→plane transpose (`builder.finish`) runs on the *worker*, outside
/// every service lock.
#[derive(Debug)]
struct DecodeJob {
    shard: Arc<ProgramShard>,
    parts: BatchParts,
}

/// A contiguous run of corrections of one stream (`seq` =
/// `first_seq + index`). Corrections travel the delivery channel in runs —
/// one send per run instead of one per frame — and the
/// [`StreamReceiver`] flattens them back into single [`Correction`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CorrectionRun {
    first_seq: u64,
    flips: Vec<u64>,
}

impl CorrectionRun {
    fn len(&self) -> u64 {
        self.flips.len() as u64
    }
}

/// Min-heap ordering by `first_seq` for the per-stream reorder buffer.
impl Ord for CorrectionRun {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.first_seq.cmp(&other.first_seq)
    }
}

impl PartialOrd for CorrectionRun {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Delivery bookkeeping of one stream, guarded by the stream's own lock.
#[derive(Debug)]
struct StreamDelivery {
    next_submit_seq: u64,
    inflight: usize,
    /// Out-of-order completed runs awaiting delivery. Runs are
    /// non-overlapping and gapless per stream (sequence numbers are
    /// assigned in submission order), so ordering by `first_seq` is enough.
    reorder: BinaryHeap<Reverse<CorrectionRun>>,
    next_deliver: u64,
    /// `None` once the stream finished (closed with nothing in flight):
    /// dropping the sender is how the receiver observes end-of-stream.
    tx: Option<mpsc::Sender<CorrectionRun>>,
}

/// The shared per-stream state: routing touches only the streams of its
/// job, never a global map.
#[derive(Debug)]
struct StreamCore {
    id: u64,
    /// Set by [`StreamSender::close`] (and shutdown). Read lock-free under
    /// shard locks, so close never needs a stream lock nested inside one.
    closed: AtomicBool,
    delivery: Mutex<StreamDelivery>,
    /// Submitters wait here for backpressure headroom on *this* stream.
    space: Condvar,
}

impl StreamCore {
    fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }
}

/// The batcher shard of one program: its own pending batch, spare pool and
/// deadline arming, under its own mutex. Submissions to different programs
/// never contend.
#[derive(Debug)]
struct ProgramShard {
    program: Arc<DecodeProgram>,
    state: Mutex<ShardState>,
}

#[derive(Debug)]
struct ShardState {
    pending: Option<PendingBatch>,
    /// Recycled batch allocations (workers return their job's parts here
    /// after routing).
    spares: Vec<BatchParts>,
    /// Whether the shard is registered with the deadline flusher. Only
    /// read or written under the shard lock.
    armed: bool,
}

/// Cap on recycled batch allocations retained per shard.
const SPARE_PARTS_CAP: usize = 16;

/// The decode job queue workers pull from.
#[derive(Debug, Default)]
struct JobQueue {
    jobs: Mutex<VecDeque<DecodeJob>>,
    ready: Condvar,
}

/// Registration state of the dedicated deadline-flusher thread.
#[derive(Debug, Default)]
struct FlusherState {
    /// Shards armed since the flusher's last drain.
    armed: Vec<Arc<ProgramShard>>,
    shutdown: bool,
}

#[derive(Debug, Default)]
struct Flusher {
    state: Mutex<FlusherState>,
    wake: Condvar,
}

struct Shared {
    /// Program registry (cold path: stream opens only).
    programs: Mutex<HashMap<String, Arc<DecodeProgram>>>,
    /// Shard registry by program id (cold path: stream opens, shutdown).
    shards: Mutex<HashMap<u64, Arc<ProgramShard>>>,
    /// Stream registry (cold path: open, close, metrics, shutdown).
    streams: Mutex<HashMap<u64, Arc<StreamCore>>>,
    queue: JobQueue,
    flusher: Flusher,
    next_stream: AtomicU64,
    shutdown: AtomicBool,
    metrics: MetricsInner,
    /// The unified telemetry registry (a no-op registry when disabled).
    telemetry: Registry,
    config: ServiceConfig,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("config", &self.config)
            .finish()
    }
}

impl Shared {
    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Flushes a shard's pending batch into the job queue. Caller holds the
    /// shard lock. The transpose into a bit-packed chunk is deferred to the
    /// worker, so the flush itself is O(1).
    fn flush_shard(&self, shard: &Arc<ProgramShard>, state: &mut ShardState, cause: FlushCause) {
        let Some(batch) = state.pending.take() else {
            return;
        };
        if batch.parts.builder.is_empty() {
            if state.spares.len() < SPARE_PARTS_CAP {
                state.spares.push(batch.parts);
            }
            return;
        }
        self.metrics.note_flush(
            (batch.parts.builder.pending_frames() as u64).div_ceil(64),
            match cause {
                FlushCause::FullWord => FlushStat::FullWord,
                FlushCause::Deadline | FlushCause::Shutdown => FlushStat::Deadline,
                FlushCause::Close => FlushStat::Close,
            },
        );
        // Each run's submit→flush wait, from its own submit instant (the
        // enabled check keeps the disabled-telemetry flush O(1)).
        let batcher_wait = &self.metrics.unified.batcher_wait;
        if batcher_wait.is_enabled() {
            let now = Instant::now();
            for run in &batch.parts.runs {
                batcher_wait.record_duration(
                    now.saturating_duration_since(run.submitted),
                    u64::from(run.count),
                );
            }
        }
        let mut jobs = self.queue.jobs.lock().expect("job queue lock");
        jobs.push_back(DecodeJob {
            shard: Arc::clone(shard),
            parts: batch.parts,
        });
        drop(jobs);
        self.queue.ready.notify_one();
    }

    /// Registers a shard with the deadline flusher. Callers must have set
    /// the shard's `armed` flag (under its lock) and *dropped the shard
    /// lock* first — the flusher takes shard locks while scanning, so
    /// holding one here would invert the order.
    fn arm_flusher(&self, shard: &Arc<ProgramShard>) {
        let mut flusher = self.flusher.state.lock().expect("flusher lock");
        if flusher.shutdown {
            // The shutdown sweep flushes every shard regardless.
            return;
        }
        flusher.armed.push(Arc::clone(shard));
        drop(flusher);
        self.flusher.wake.notify_one();
    }
}

/// Records a frame run, merging into the tail run when it extends the same
/// stream contiguously (the common case under bursts).
fn push_run(
    runs: &mut Vec<FrameRun>,
    stream: &Arc<StreamCore>,
    first_seq: u64,
    count: u32,
    submitted: Instant,
) {
    if let Some(last) = runs.last_mut() {
        if Arc::ptr_eq(&last.stream, stream) && last.first_seq + u64::from(last.count) == first_seq
        {
            last.count += count;
            return;
        }
    }
    runs.push(FrameRun {
        stream: Arc::clone(stream),
        first_seq,
        count,
        submitted,
    });
}

/// Routes one decoded job's corrections back to their streams (in-order per
/// stream via each stream's reorder heap) and releases backpressure.
/// Channel sends happen under the owning stream's lock only — never a
/// shared one — so two workers finishing runs of one stream cannot
/// interleave deliveries out of heap order.
fn route_corrections(
    shared: &Shared,
    shard: &Arc<ProgramShard>,
    mut parts: BatchParts,
    flips_per_lane: &[u64],
) {
    let span = shared.metrics.unified.delivery.start();
    let now = Instant::now();
    let mut offset = 0usize;
    let mut finished: Vec<u64> = Vec::new();
    for run in &parts.runs {
        let count = run.count as usize;
        let flips = flips_per_lane[offset..offset + count].to_vec();
        offset += count;
        shared
            .metrics
            .note_completed_many(now.saturating_duration_since(run.submitted), count as u64);
        let stream = &run.stream;
        let mut delivery = stream.delivery.lock().expect("stream delivery lock");
        delivery.inflight -= count;
        delivery.reorder.push(Reverse(CorrectionRun {
            first_seq: run.first_seq,
            flips,
        }));
        while let Some(Reverse(ready)) = delivery.reorder.peek() {
            if ready.first_seq != delivery.next_deliver {
                break;
            }
            let Some(Reverse(ready)) = delivery.reorder.pop() else {
                unreachable!("peeked entry exists");
            };
            delivery.next_deliver += ready.len();
            // A dropped receiver just discards the corrections.
            if let Some(tx) = &delivery.tx {
                let _ = tx.send(ready);
            }
        }
        let stream_finished = stream.is_closed() && delivery.inflight == 0;
        if stream_finished {
            delivery.tx = None;
        }
        drop(delivery);
        stream.space.notify_all();
        if stream_finished {
            finished.push(stream.id);
        }
    }
    span.finish(flips_per_lane.len() as u64);
    // Recycle the job's allocations for the shard's next batch.
    parts.runs.clear();
    {
        let mut state = shard.state.lock().expect("program shard lock");
        if state.spares.len() < SPARE_PARTS_CAP {
            state.spares.push(parts);
        }
    }
    if !finished.is_empty() {
        let mut streams = shared.streams.lock().expect("stream registry lock");
        for id in finished {
            streams.remove(&id);
        }
    }
}

/// Decodes one job and routes its corrections (shared by workers and the
/// shutdown drain).
fn decode_job(
    shared: &Shared,
    job: DecodeJob,
    scratches: &mut HashMap<u64, DecodeScratch>,
    flips: &mut Vec<u64>,
) {
    let DecodeJob { shard, mut parts } = job;
    let program = Arc::clone(&shard.program);
    // Transpose the packed frames into bit planes and decode — both
    // outside every service lock. The stage span times around the decode;
    // it never touches the data, so corrections stay bit-identical.
    let span = shared.metrics.unified.decode.start();
    let chunk = parts.builder.finish(0, 0);
    let scratch = scratches
        .entry(program.id())
        .or_insert_with(|| DecodeScratch::with_memo_config(program.memo_config()));
    let before = scratch.cache_stats();
    let prediction =
        program
            .decoder()
            .decode_batch_with_snapshot(&chunk, scratch, program.snapshot());
    span.finish(chunk.num_shots() as u64);
    shared
        .metrics
        .note_decode_cache(&scratch.cache_stats().since(&before));
    flips.clear();
    flips.resize(chunk.num_shots(), 0);
    for observable in 0..prediction.num_observables() {
        for (word_index, &word) in prediction.plane(observable).iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let shot = word_index * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                // The final word of a plane carries no bits beyond the
                // shot count, so `shot` is always in range.
                flips[shot] |= 1u64 << observable;
            }
        }
    }
    route_corrections(shared, &shard, parts, flips);
}

fn worker_loop(shared: Arc<Shared>) {
    // One scratch per (worker, program): the memo stays owned by the right
    // decoder across interleaved jobs of different programs.
    let mut scratches: HashMap<u64, DecodeScratch> = HashMap::new();
    let mut flips: Vec<u64> = Vec::new();
    loop {
        let job = {
            let mut jobs = shared.queue.jobs.lock().expect("job queue lock");
            loop {
                if let Some(job) = jobs.pop_front() {
                    break Some(job);
                }
                if shared.is_shutdown() {
                    break None;
                }
                jobs = shared.queue.ready.wait(jobs).expect("job queue lock");
            }
        };
        let Some(job) = job else { break };
        decode_job(&shared, job, &mut scratches, &mut flips);
    }
}

/// The dedicated deadline flusher: waits out each armed shard's exact
/// deadline (no 1 s polling cap, no dependence on a free worker) and
/// flushes overdue partial words.
fn flusher_loop(shared: Arc<Shared>) {
    let deadline = shared.config.flush_deadline;
    // Shards armed and not yet overdue, carried across scan rounds.
    let mut scan: Vec<Arc<ProgramShard>> = Vec::new();
    loop {
        {
            let mut flusher = shared.flusher.state.lock().expect("flusher lock");
            loop {
                if flusher.shutdown {
                    return;
                }
                scan.append(&mut flusher.armed);
                if !scan.is_empty() {
                    break;
                }
                flusher = shared.flusher.wake.wait(flusher).expect("flusher lock");
            }
        }
        // Scan with no flusher lock held: each shard under its own lock.
        let now = Instant::now();
        let mut next_due: Option<Instant> = None;
        scan.retain(|shard| {
            let mut state = shard.state.lock().expect("program shard lock");
            let due = match &state.pending {
                Some(batch) => batch.oldest + deadline,
                None => {
                    // Flushed by a full word (or close) in the meantime;
                    // the next partial will re-arm.
                    state.armed = false;
                    return false;
                }
            };
            if due <= now {
                shared.flush_shard(shard, &mut state, FlushCause::Deadline);
                state.armed = false;
                false
            } else {
                next_due = Some(next_due.map_or(due, |d| d.min(due)));
                true
            }
        });
        if let Some(due) = next_due {
            let mut flusher = shared.flusher.state.lock().expect("flusher lock");
            if flusher.shutdown {
                return;
            }
            if flusher.armed.is_empty() {
                let wait = due.saturating_duration_since(Instant::now());
                let (next, _) = shared
                    .flusher
                    .wake
                    .wait_timeout(flusher, wait)
                    .expect("flusher lock");
                flusher = next;
                if flusher.shutdown {
                    return;
                }
            }
            scan.append(&mut flusher.armed);
        }
    }
}

/// The real-time decode service (see the [crate docs](crate) for the
/// architecture). Create with [`DecodeService::new`], open streams, submit
/// frames, receive ordered corrections; [`DecodeService::shutdown`] (or
/// drop) drains the queue and joins the workers.
#[derive(Debug)]
pub struct DecodeService {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    flusher: Mutex<Option<JoinHandle<()>>>,
}

impl DecodeService {
    /// Starts a service with `config.workers` decode workers plus one
    /// deadline-flusher thread.
    pub fn new(config: ServiceConfig) -> Self {
        let telemetry = Registry::new(config.telemetry);
        let shared = Arc::new(Shared {
            programs: Mutex::new(HashMap::new()),
            shards: Mutex::new(HashMap::new()),
            streams: Mutex::new(HashMap::new()),
            queue: JobQueue::default(),
            flusher: Flusher::default(),
            next_stream: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            metrics: MetricsInner::new(&telemetry),
            telemetry,
            config,
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("qccd-decode-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn decode worker")
            })
            .collect();
        let flusher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("qccd-flush".to_string())
                .spawn(move || flusher_loop(shared))
                .expect("spawn deadline flusher")
        };
        DecodeService {
            shared,
            workers: Mutex::new(workers),
            flusher: Mutex::new(Some(flusher)),
        }
    }

    /// The service configuration.
    pub fn config(&self) -> ServiceConfig {
        self.shared.config
    }

    /// Opens a stream decoding the paper's memory workload for
    /// `(arch, distance)` with `decoder`. Streams of the same configuration
    /// share one [`DecodeProgram`] (one compile, one decoder, one warm memo
    /// snapshot) and coalesce into the same 64-shot words.
    ///
    /// # Errors
    ///
    /// Propagates [`DecodeProgram::compile`] errors; [`ServiceError::StreamClosed`]
    /// after shutdown.
    pub fn open_stream(
        &self,
        arch: &ArchitectureConfig,
        distance: usize,
        decoder: DecoderKind,
    ) -> Result<StreamHandle, ServiceError> {
        let key = DecodeProgram::config_key(arch, distance, decoder);
        let memo = self.shared.config.memo;
        self.open_stream_with(&key, || {
            DecodeProgram::compile_with_memo(arch, distance, decoder, memo).map(Arc::new)
        })
    }

    /// Opens a stream decoding an arbitrary noisy circuit under `key`
    /// (streams sharing a key share the program — the replay/load-generation
    /// entry point).
    ///
    /// # Errors
    ///
    /// Propagates [`DecodeProgram::from_circuit`] errors;
    /// [`ServiceError::StreamClosed`] after shutdown.
    pub fn open_stream_circuit(
        &self,
        key: &str,
        circuit: &NoisyCircuit,
        decoder: DecoderKind,
    ) -> Result<StreamHandle, ServiceError> {
        let memo = self.shared.config.memo;
        self.open_stream_with(key, || {
            DecodeProgram::from_circuit_with_memo(key, circuit.clone(), decoder, memo).map(Arc::new)
        })
    }

    /// Opens a stream over a caller-built [`DecodeProgram`] (registered
    /// under the program's own key; streams sharing the key share the
    /// registered program). Lets replay tools reuse one program for both
    /// the service streams and their offline verification reference.
    ///
    /// # Errors
    ///
    /// [`ServiceError::StreamClosed`] after shutdown.
    pub fn open_stream_program(
        &self,
        program: &Arc<DecodeProgram>,
    ) -> Result<StreamHandle, ServiceError> {
        let key = program.key().to_string();
        self.open_stream_with(&key, || Ok(Arc::clone(program)))
    }

    fn open_stream_with(
        &self,
        key: &str,
        build: impl FnOnce() -> Result<Arc<DecodeProgram>, ServiceError>,
    ) -> Result<StreamHandle, ServiceError> {
        let shared = &self.shared;
        if shared.is_shutdown() {
            return Err(ServiceError::StreamClosed);
        }
        let existing = shared
            .programs
            .lock()
            .expect("program registry lock")
            .get(key)
            .cloned();
        // Build (compile + warm) outside every lock; a racing open of the
        // same key keeps the first-registered program.
        let program = match existing {
            Some(program) => program,
            None => build()?,
        };
        let program = shared
            .programs
            .lock()
            .expect("program registry lock")
            .entry(key.to_string())
            .or_insert(program)
            .clone();
        let shard = shared
            .shards
            .lock()
            .expect("shard registry lock")
            .entry(program.id())
            .or_insert_with(|| {
                Arc::new(ProgramShard {
                    program: Arc::clone(&program),
                    state: Mutex::new(ShardState {
                        pending: None,
                        spares: Vec::new(),
                        armed: false,
                    }),
                })
            })
            .clone();
        let (tx, rx) = mpsc::channel();
        let id = shared.next_stream.fetch_add(1, Ordering::Relaxed);
        let core = Arc::new(StreamCore {
            id,
            closed: AtomicBool::new(false),
            delivery: Mutex::new(StreamDelivery {
                next_submit_seq: 0,
                inflight: 0,
                reorder: BinaryHeap::new(),
                next_deliver: 0,
                tx: Some(tx),
            }),
            space: Condvar::new(),
        });
        shared
            .streams
            .lock()
            .expect("stream registry lock")
            .insert(id, Arc::clone(&core));
        if shared.is_shutdown() {
            // Raced a shutdown that may already have drained the registry.
            shared
                .streams
                .lock()
                .expect("stream registry lock")
                .remove(&id);
            return Err(ServiceError::StreamClosed);
        }
        Ok(StreamHandle {
            sender: StreamSender {
                shared: Arc::clone(shared),
                core,
                shard,
                program,
            },
            receiver: StreamReceiver {
                id,
                rx,
                current: None,
            },
        })
    }

    /// The service's unified telemetry registry: per-stage spans
    /// (`service.stage.batcher_wait` / `decode` / `delivery`), mirrors of
    /// every legacy counter, and anything a host registers alongside.
    /// Cloning is cheap; clones observe the same metrics. A no-op registry
    /// when the service was configured with telemetry disabled.
    pub fn telemetry(&self) -> Registry {
        self.shared.telemetry.clone()
    }

    /// A deterministic point-in-time snapshot of the unified telemetry
    /// registry (empty when telemetry is disabled).
    pub fn telemetry_snapshot(&self) -> RegistrySnapshot {
        self.shared.telemetry.snapshot()
    }

    /// A live snapshot of the service metrics.
    pub fn metrics(&self) -> ServiceMetrics {
        let streams_open = self
            .shared
            .streams
            .lock()
            .expect("stream registry lock")
            .len();
        self.shared.metrics.snapshot(streams_open)
    }

    /// Flushes every shard's pending batch (shutdown sweep).
    fn flush_all_shards(&self) {
        let shards: Vec<Arc<ProgramShard>> = self
            .shared
            .shards
            .lock()
            .expect("shard registry lock")
            .values()
            .cloned()
            .collect();
        for shard in shards {
            let mut state = shard.state.lock().expect("program shard lock");
            self.shared
                .flush_shard(&shard, &mut state, FlushCause::Shutdown);
            state.armed = false;
        }
    }

    /// Drains every queued frame, stops the workers and the flusher, and
    /// closes every stream. Idempotent; also invoked on drop. Frames whose
    /// submission races the shutdown may be accepted yet never decoded —
    /// their receivers still observe end-of-stream rather than hanging.
    pub fn shutdown(&self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Queue every pending partial word while the workers still run.
        self.flush_all_shards();
        {
            let mut flusher = self.shared.flusher.state.lock().expect("flusher lock");
            flusher.shutdown = true;
            flusher.armed.clear();
        }
        self.shared.flusher.wake.notify_all();
        self.shared.queue.ready.notify_all();
        let workers = std::mem::take(&mut *self.workers.lock().expect("worker list lock"));
        for worker in workers {
            worker.join().expect("decode worker panicked");
        }
        if let Some(flusher) = self.flusher.lock().expect("flusher handle lock").take() {
            flusher.join().expect("deadline flusher panicked");
        }
        // Sweep again for pendings that raced the first sweep, then decode
        // any leftover jobs inline — the workers are gone.
        self.flush_all_shards();
        let mut scratches: HashMap<u64, DecodeScratch> = HashMap::new();
        let mut flips: Vec<u64> = Vec::new();
        loop {
            let job = self
                .shared
                .queue
                .jobs
                .lock()
                .expect("job queue lock")
                .pop_front();
            match job {
                Some(job) => decode_job(&self.shared, job, &mut scratches, &mut flips),
                None => break,
            }
        }
        // End every stream: drop the delivery senders so receivers observe
        // end-of-stream after draining, and wake blocked submitters.
        let streams: Vec<Arc<StreamCore>> = {
            let mut registry = self.shared.streams.lock().expect("stream registry lock");
            registry.drain().map(|(_, stream)| stream).collect()
        };
        for stream in streams {
            stream.closed.store(true, Ordering::SeqCst);
            let mut delivery = stream.delivery.lock().expect("stream delivery lock");
            delivery.tx = None;
            drop(delivery);
            stream.space.notify_all();
        }
    }
}

impl Drop for DecodeService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Both halves of an open stream. [`StreamHandle::split`] separates the
/// (cloneable) submission side from the receiving side so they can live on
/// different threads.
#[derive(Debug)]
pub struct StreamHandle {
    /// The submission half.
    pub sender: StreamSender,
    /// The ordered-correction half.
    pub receiver: StreamReceiver,
}

impl StreamHandle {
    /// Splits the handle into its submission and receiving halves.
    pub fn split(self) -> (StreamSender, StreamReceiver) {
        (self.sender, self.receiver)
    }

    /// [`StreamSender::submit`] on the handle.
    ///
    /// # Errors
    ///
    /// See [`StreamSender::submit`].
    pub fn submit(&self, fired: &[usize]) -> Result<u64, ServiceError> {
        self.sender.submit(fired)
    }

    /// [`StreamReceiver::recv`] on the handle.
    pub fn recv(&mut self) -> Option<Correction> {
        self.receiver.recv()
    }
}

/// The submission half of a stream (cloneable; all clones feed the same
/// sequence).
#[derive(Debug, Clone)]
pub struct StreamSender {
    shared: Arc<Shared>,
    core: Arc<StreamCore>,
    shard: Arc<ProgramShard>,
    program: Arc<DecodeProgram>,
}

impl StreamSender {
    /// Number of detectors a frame of this stream must stay within.
    pub fn num_detectors(&self) -> usize {
        self.program.num_detectors()
    }

    /// Number of observables each correction covers.
    pub fn num_observables(&self) -> usize {
        self.program.num_observables()
    }

    /// The stream id (diagnostics).
    pub fn id(&self) -> u64 {
        self.core.id
    }

    /// Submits one frame (the fired-detector index list of one shot) and
    /// returns its sequence number. **Blocks** while the stream's bounded
    /// queue is full (backpressure).
    ///
    /// # Errors
    ///
    /// [`ServiceError::DetectorOutOfRange`] for invalid frames,
    /// [`ServiceError::StreamClosed`] once the stream or service is closed.
    pub fn submit(&self, fired: &[usize]) -> Result<u64, ServiceError> {
        self.submit_inner(fired, true)
    }

    /// Non-blocking [`StreamSender::submit`]: refuses with
    /// [`ServiceError::Backpressure`] instead of waiting for queue space.
    ///
    /// # Errors
    ///
    /// As [`StreamSender::submit`], plus [`ServiceError::Backpressure`].
    pub fn try_submit(&self, fired: &[usize]) -> Result<u64, ServiceError> {
        self.submit_inner(fired, false)
    }

    /// Submits many frames in one call: one stream-lock acquisition, one
    /// timestamp and one bulk metrics update for the whole burst — the
    /// high-rate entry point (a per-frame [`StreamSender::submit`] loop
    /// pays the locks per frame and tops out an order of magnitude lower).
    /// Returns the sequence range assigned to the burst. **Blocks**
    /// whenever the bounded queue is full, submitting what fits first.
    ///
    /// # Errors
    ///
    /// As [`StreamSender::submit`]; on a bad frame nothing is submitted.
    pub fn submit_batch(&self, frames: &[&[usize]]) -> Result<std::ops::Range<u64>, ServiceError> {
        self.submit_batch_inner(FrameBatch::Indices(frames), true)
    }

    /// [`StreamSender::submit_batch`] for frames already in the
    /// detector-major **packed** wire format (bit `d` = detector `d` fired,
    /// `ceil(num_detectors / 64)` words per frame — what
    /// [`qccd_sim::SyndromeChunk::packed_frame_into`] produces). Packed
    /// ingestion is a word-level copy per frame.
    ///
    /// # Errors
    ///
    /// As [`StreamSender::submit_batch`]; a frame with the wrong word count
    /// or with out-of-range detector bits set is rejected
    /// ([`ServiceError::DetectorOutOfRange`]) before anything is submitted.
    pub fn submit_packed_batch(
        &self,
        frames: &[&[u64]],
    ) -> Result<std::ops::Range<u64>, ServiceError> {
        self.submit_batch_inner(FrameBatch::Packed(frames), true)
    }

    /// [`StreamSender::submit_batch`] for **shot-major** [`WordBlock`]s:
    /// pre-transposed 64-shot words the batcher ingests with a shift-OR per
    /// detector instead of a per-frame bit scatter — the fastest path
    /// through the service. Blocks are never split, so each block's shot
    /// count must fit the stream's bounded queue.
    ///
    /// # Errors
    ///
    /// [`ServiceError::InvalidWordBlock`] for malformed blocks,
    /// [`ServiceError::WordBlockTooLarge`] when a block cannot ever fit the
    /// queue, otherwise as [`StreamSender::submit_batch`]; nothing is
    /// submitted on a bad burst.
    pub fn submit_word_batch(
        &self,
        blocks: &[WordBlock<'_>],
    ) -> Result<std::ops::Range<u64>, ServiceError> {
        self.submit_batch_inner(FrameBatch::Blocks(blocks), true)
    }

    fn submit_batch_inner(
        &self,
        frames: FrameBatch<'_>,
        block: bool,
    ) -> Result<std::ops::Range<u64>, ServiceError> {
        let shared = &self.shared;
        let queue_shots = shared.config.stream_queue_shots;
        frames.validate(self.program.num_detectors(), queue_shots)?;
        if frames.shots() == 0 {
            return Ok(0..0);
        }
        let mut remaining = frames;
        let mut first_seq = None;
        let mut next_seq = 0;
        while remaining.shots() > 0 {
            let need = remaining.min_take();
            // Reserve queue room and sequence numbers under the stream's
            // own lock (backpressure waits here, on this stream's condvar).
            let (burst, rest, take, seq) = {
                let mut delivery = self.core.delivery.lock().expect("stream delivery lock");
                loop {
                    if self.core.is_closed() || shared.is_shutdown() {
                        return Err(ServiceError::StreamClosed);
                    }
                    if queue_shots - delivery.inflight >= need {
                        break;
                    }
                    if !block {
                        return Err(ServiceError::Backpressure);
                    }
                    delivery = self
                        .core
                        .space
                        .wait(delivery)
                        .expect("stream delivery lock");
                }
                let room = queue_shots - delivery.inflight;
                let (burst, rest, take) = remaining.take_for_room(room);
                let seq = delivery.next_submit_seq;
                delivery.next_submit_seq += take as u64;
                delivery.inflight += take;
                (burst, rest, take, seq)
            };
            remaining = rest;
            first_seq.get_or_insert(seq);
            next_seq = seq + take as u64;
            shared.metrics.note_submitted_many(take as u64);
            self.fill_shard(burst, seq);
        }
        let first = first_seq.expect("frames is non-empty when the loop ran");
        Ok(first..next_seq)
    }

    /// Appends a reserved burst to the shard's pending batch, flushing full
    /// words as they complete and arming the deadline flusher for a
    /// leftover partial. Takes only this program's shard lock.
    fn fill_shard(&self, burst: FrameBatch<'_>, mut seq: u64) {
        let shared = &self.shared;
        let flush_shots = shared.config.flush_shots();
        let now = Instant::now();
        let mut state = self.shard.state.lock().expect("program shard lock");
        match burst {
            FrameBatch::Indices(_) | FrameBatch::Packed(_) => {
                let total = burst.shots();
                let mut index = 0;
                while index < total {
                    let batch = self.ensure_pending(&mut state, now);
                    // One frame run (and one bookkeeping record) per
                    // flush-bounded segment, not per frame.
                    let segment =
                        (total - index).min(flush_shots - batch.parts.builder.pending_frames());
                    for i in index..index + segment {
                        burst.push_into(i, &mut batch.parts.builder);
                    }
                    push_run(&mut batch.parts.runs, &self.core, seq, segment as u32, now);
                    seq += segment as u64;
                    index += segment;
                    if batch.parts.builder.pending_frames() >= flush_shots {
                        shared.flush_shard(&self.shard, &mut state, FlushCause::FullWord);
                    }
                }
            }
            FrameBatch::Blocks(blocks) => {
                for block in blocks {
                    let batch = self.ensure_pending(&mut state, now);
                    batch
                        .parts
                        .builder
                        .push_word_block(block.planes, block.count);
                    push_run(
                        &mut batch.parts.runs,
                        &self.core,
                        seq,
                        block.count as u32,
                        now,
                    );
                    seq += block.count as u64;
                    if batch.parts.builder.pending_frames() >= flush_shots {
                        shared.flush_shard(&self.shard, &mut state, FlushCause::FullWord);
                    }
                }
            }
        }
        if shared.config.flush_deadline.is_zero() {
            shared.flush_shard(&self.shard, &mut state, FlushCause::Deadline);
        } else if state.pending.is_some() && !state.armed {
            // Frames are pending behind the deadline: hand the shard to the
            // flusher — after dropping its lock (see `arm_flusher`).
            state.armed = true;
            drop(state);
            shared.arm_flusher(&self.shard);
        }
    }

    /// The shard's pending batch, created from the spare pool (or fresh)
    /// when absent. Caller holds the shard lock.
    fn ensure_pending<'s>(&self, state: &'s mut ShardState, now: Instant) -> &'s mut PendingBatch {
        if state.pending.is_none() {
            let parts = state.spares.pop().unwrap_or_else(|| BatchParts {
                builder: SyndromeChunkBuilder::new(
                    self.program.num_detectors(),
                    self.program.num_observables(),
                ),
                runs: Vec::new(),
            });
            state.pending = Some(PendingBatch { parts, oldest: now });
        }
        state.pending.as_mut().expect("just ensured")
    }

    fn submit_inner(&self, fired: &[usize], block: bool) -> Result<u64, ServiceError> {
        self.submit_batch_inner(FrameBatch::Indices(&[fired]), block)
            .map(|range| range.start)
    }

    /// Closes the stream: no further submissions are accepted, frames
    /// already submitted still decode, and the receiver drains the remaining
    /// corrections before observing end-of-stream. The shard's pending
    /// partial word is flushed (booked as a **close flush**) only when this
    /// stream contributed to it and no still-open stream did — an idle
    /// stream's close never ships other streams' partial words, and a word
    /// shared with live streams stays pending for their deadline.
    /// Idempotent.
    pub fn close(&self) {
        if self.core.closed.swap(true, Ordering::SeqCst) {
            return;
        }
        let finished = {
            let mut delivery = self.core.delivery.lock().expect("stream delivery lock");
            let finished = delivery.inflight == 0;
            if finished {
                delivery.tx = None;
            }
            finished
        };
        self.core.space.notify_all();
        {
            let mut state = self.shard.state.lock().expect("program shard lock");
            let flush = state.pending.as_ref().is_some_and(|batch| {
                let mut contributed = false;
                let mut all_closed = true;
                for run in &batch.parts.runs {
                    if run.stream.id == self.core.id {
                        contributed = true;
                    }
                    if !run.stream.is_closed() {
                        all_closed = false;
                    }
                }
                contributed && all_closed
            });
            if flush {
                self.shared
                    .flush_shard(&self.shard, &mut state, FlushCause::Close);
            }
        }
        if finished {
            self.shared
                .streams
                .lock()
                .expect("stream registry lock")
                .remove(&self.core.id);
        }
    }
}

/// The receiving half of a stream: corrections arrive in submission order.
///
/// Corrections travel the delivery channel as contiguous runs (one channel
/// send per decoded run, not per frame); the receiver flattens them back
/// into single [`Correction`]s, so the API stays frame-granular.
#[derive(Debug)]
pub struct StreamReceiver {
    id: u64,
    rx: mpsc::Receiver<CorrectionRun>,
    /// The run currently being flattened and the next index within it.
    current: Option<(CorrectionRun, usize)>,
}

impl StreamReceiver {
    /// The stream id (diagnostics).
    pub fn id(&self) -> u64 {
        self.id
    }

    fn next_buffered(&mut self) -> Option<Correction> {
        let (run, index) = self.current.as_mut()?;
        let correction = Correction {
            seq: run.first_seq + *index as u64,
            flips: run.flips[*index],
        };
        *index += 1;
        if *index == run.flips.len() {
            self.current = None;
        }
        Some(correction)
    }

    fn buffer(&mut self, run: CorrectionRun) -> Correction {
        debug_assert!(!run.flips.is_empty(), "runs are never empty");
        self.current = Some((run, 0));
        self.next_buffered().expect("freshly buffered run")
    }

    /// Blocks for the next in-order correction; `None` once the stream is
    /// closed and fully drained.
    pub fn recv(&mut self) -> Option<Correction> {
        if let Some(correction) = self.next_buffered() {
            return Some(correction);
        }
        self.rx.recv().ok().map(|run| self.buffer(run))
    }

    /// Non-blocking receive.
    pub fn try_recv(&mut self) -> Option<Correction> {
        if let Some(correction) = self.next_buffered() {
            return Some(correction);
        }
        self.rx.try_recv().ok().map(|run| self.buffer(run))
    }

    /// Receive with a timeout (`None` on timeout or end-of-stream).
    pub fn recv_timeout(&mut self, timeout: Duration) -> Option<Correction> {
        if let Some(correction) = self.next_buffered() {
            return Some(correction);
        }
        self.rx
            .recv_timeout(timeout)
            .ok()
            .map(|run| self.buffer(run))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qccd_circuit::{Detector, Instruction, LogicalObservable, MeasurementRef, QubitId};
    use qccd_sim::NoiseChannel;

    /// A one-qubit circuit whose single detector mirrors its single
    /// observable: the decoder's correction for frame `[0]` is flip, for
    /// `[]` no flip — easy to assert exactly.
    fn mirror_circuit() -> NoisyCircuit {
        let q = QubitId::new(0);
        let mut c = NoisyCircuit::new();
        c.push_gate(Instruction::Reset(q));
        c.push_noise(NoiseChannel::BitFlip { qubit: q, p: 0.25 });
        c.push_gate(Instruction::Measure(q));
        c.add_detector(Detector::new(vec![MeasurementRef::new(q, 0)]));
        c.add_observable(LogicalObservable::new(vec![MeasurementRef::new(q, 0)]));
        c
    }

    /// Six independent qubits, one detector each, observable on qubit 0:
    /// frames can fire enough detectors to overflow the memo defect cap.
    fn six_detector_circuit() -> NoisyCircuit {
        let mut c = NoisyCircuit::new();
        for i in 0..6 {
            let q = QubitId::new(i);
            c.push_gate(Instruction::Reset(q));
            c.push_noise(NoiseChannel::BitFlip { qubit: q, p: 0.25 });
            c.push_gate(Instruction::Measure(q));
            c.add_detector(Detector::new(vec![MeasurementRef::new(q, 0)]));
        }
        c.add_observable(LogicalObservable::new(vec![MeasurementRef::new(
            QubitId::new(0),
            0,
        )]));
        c
    }

    #[test]
    fn dense_frames_surface_in_the_live_metrics() {
        let service = DecodeService::new(
            ServiceConfig::default()
                .with_workers(1)
                .with_flush_deadline(Duration::from_micros(50)),
        );
        let circuit = six_detector_circuit();
        let mut handle = service
            .open_stream_circuit("dense", &circuit, DecoderKind::UnionFind)
            .unwrap();
        // Five fired detectors exceed the default memo cap of four: the
        // lane takes the dense tier. Submitted twice, the second frame is
        // answered by the lane LRU.
        let dense_frame = [0usize, 1, 2, 3, 4];
        for _ in 0..2 {
            handle.submit(&dense_frame).unwrap();
        }
        for _ in 0..2 {
            let correction = handle.recv().expect("correction");
            assert_eq!(correction.flips, 1, "detector 0 mirrors observable 0");
        }
        let metrics = service.metrics();
        assert!(
            metrics.dense_misses >= 1,
            "the first dense frame misses the lane LRU: {metrics:?}"
        );
        assert!(
            metrics.dense_hits >= 1,
            "the repeat frame hits the lane LRU: {metrics:?}"
        );
        assert_eq!(metrics.cluster_conflicts, 0, "isolated defects never clash");
        let json = metrics.to_json();
        assert_eq!(
            json.get("dense_misses").and_then(|v| v.as_u64()),
            Some(metrics.dense_misses),
            "dense counters ride the metrics JSON"
        );
        service.shutdown();
    }

    #[test]
    fn dense_tier_can_be_disabled_through_the_service_config() {
        let service = DecodeService::new(
            ServiceConfig::default()
                .with_workers(1)
                .with_flush_deadline(Duration::from_micros(50))
                .with_memo(qccd_decoder::MemoConfig::default().with_dense_max_entries(0)),
        );
        let circuit = six_detector_circuit();
        let mut handle = service
            .open_stream_circuit("dense-off", &circuit, DecoderKind::UnionFind)
            .unwrap();
        for _ in 0..2 {
            handle.submit(&[0, 1, 2, 3, 4]).unwrap();
        }
        for _ in 0..2 {
            assert_eq!(handle.recv().expect("correction").flips, 1);
        }
        let metrics = service.metrics();
        assert_eq!(metrics.dense_hits, 0, "disabled tier never counts");
        assert_eq!(metrics.dense_misses, 0);
        service.shutdown();
    }

    #[test]
    fn corrections_come_back_in_order_with_correct_flips() {
        let service = DecodeService::new(
            ServiceConfig::default()
                .with_workers(2)
                .with_flush_deadline(Duration::from_micros(50)),
        );
        let circuit = mirror_circuit();
        let mut handle = service
            .open_stream_circuit("mirror", &circuit, DecoderKind::UnionFind)
            .unwrap();
        assert_eq!(handle.sender.num_detectors(), 1);
        assert_eq!(handle.sender.num_observables(), 1);
        let fired: Vec<bool> = (0..300).map(|i| i % 3 == 0).collect();
        for &f in &fired {
            handle
                .submit(if f { &[0][..] } else { &[][..] })
                .expect("submit");
        }
        for (i, &f) in fired.iter().enumerate() {
            let correction = handle.recv().expect("correction");
            assert_eq!(correction.seq, i as u64);
            assert_eq!(correction.flips, u64::from(f), "frame {i}");
        }
        handle.sender.close();
        assert!(handle.recv().is_none(), "closed stream drains to None");
        let metrics = service.metrics();
        assert_eq!(metrics.frames_submitted, 300);
        assert_eq!(metrics.frames_completed, 300);
        assert_eq!(metrics.queue_depth, 0);
        assert!(metrics.words_flushed >= 5);
        assert!(metrics.p50_latency_us > 0.0);
        service.shutdown();
    }

    #[test]
    fn streams_share_programs_and_words() {
        let service = DecodeService::new(
            ServiceConfig::default().with_flush_deadline(Duration::from_millis(5)),
        );
        let circuit = mirror_circuit();
        let mut a = service
            .open_stream_circuit("shared", &circuit, DecoderKind::UnionFind)
            .unwrap();
        let mut b = service
            .open_stream_circuit("shared", &circuit, DecoderKind::UnionFind)
            .unwrap();
        // 32 frames per stream coalesce into exactly one full 64-shot word.
        for i in 0..32 {
            a.submit(if i % 2 == 0 { &[0][..] } else { &[][..] })
                .unwrap();
            b.submit(&[0]).unwrap();
        }
        for i in 0..32u64 {
            assert_eq!(
                a.recv().unwrap(),
                Correction {
                    seq: i,
                    flips: (i % 2 == 0) as u64
                }
            );
            assert_eq!(b.recv().unwrap(), Correction { seq: i, flips: 1 });
        }
        let metrics = service.metrics();
        assert_eq!(metrics.words_flushed, 1, "cross-stream frames share a word");
        assert_eq!(metrics.full_word_flushes, 1);
        assert_eq!(metrics.deadline_flushes, 0);
        service.shutdown();
    }

    #[test]
    fn deadline_flushes_partial_words() {
        let service = DecodeService::new(
            ServiceConfig::default().with_flush_deadline(Duration::from_micros(100)),
        );
        let circuit = mirror_circuit();
        let mut handle = service
            .open_stream_circuit("partial", &circuit, DecoderKind::UnionFind)
            .unwrap();
        handle.submit(&[0]).unwrap();
        // A lone frame cannot fill a word; only the deadline can flush it.
        let correction = handle
            .receiver
            .recv_timeout(Duration::from_secs(10))
            .expect("deadline flush must deliver the lone frame");
        assert_eq!(correction, Correction { seq: 0, flips: 1 });
        let metrics = service.metrics();
        assert_eq!(metrics.deadline_flushes, 1);
        assert_eq!(metrics.full_word_flushes, 0);
        assert_eq!(metrics.close_flushes, 0);
        service.shutdown();
    }

    #[test]
    fn word_blocks_submit_and_decode_identically() {
        let service = DecodeService::new(
            ServiceConfig::default()
                .with_workers(2)
                .with_flush_deadline(Duration::from_millis(5)),
        );
        let circuit = mirror_circuit();
        let mut handle = service
            .open_stream_circuit("blocks", &circuit, DecoderKind::UnionFind)
            .unwrap();
        // Shot-major: one plane word for the single detector, odd shots fire.
        let planes = [0xAAAA_AAAA_AAAA_AAAAu64];
        let range = handle
            .sender
            .submit_word_batch(&[WordBlock {
                planes: &planes,
                count: 64,
            }])
            .unwrap();
        assert_eq!(range, 0..64);
        for i in 0..64u64 {
            assert_eq!(
                handle.recv().unwrap(),
                Correction {
                    seq: i,
                    flips: (i % 2)
                }
            );
        }
        let metrics = service.metrics();
        assert_eq!(
            metrics.full_word_flushes, 1,
            "a 64-shot block is a full word"
        );
        assert_eq!(metrics.deadline_flushes, 0);
        service.shutdown();
    }

    #[test]
    fn word_blocks_interleave_with_frames_on_one_stream() {
        let service = DecodeService::new(
            ServiceConfig::default()
                .with_workers(1)
                .with_flush_deadline(Duration::from_micros(100)),
        );
        let circuit = mirror_circuit();
        let mut handle = service
            .open_stream_circuit("mixed", &circuit, DecoderKind::UnionFind)
            .unwrap();
        handle.submit(&[0]).unwrap();
        handle.submit(&[]).unwrap();
        // A 5-shot block (shots 1 and 3 fire) follows two plain frames.
        let planes = [0b01010u64];
        let range = handle
            .sender
            .submit_word_batch(&[WordBlock {
                planes: &planes,
                count: 5,
            }])
            .unwrap();
        assert_eq!(range, 2..7);
        let expected = [1u64, 0, 0, 1, 0, 1, 0];
        for (i, &flips) in expected.iter().enumerate() {
            assert_eq!(
                handle.recv().unwrap(),
                Correction {
                    seq: i as u64,
                    flips
                },
                "frame {i}"
            );
        }
        service.shutdown();
    }

    #[test]
    fn malformed_word_blocks_are_rejected() {
        let service = DecodeService::new(ServiceConfig::default().with_stream_queue_shots(8));
        let circuit = mirror_circuit();
        let handle = service
            .open_stream_circuit("badblocks", &circuit, DecoderKind::UnionFind)
            .unwrap();
        let planes = [0u64];
        // Wrong plane count.
        assert!(matches!(
            handle.sender.submit_word_batch(&[WordBlock {
                planes: &[0, 0],
                count: 1
            }]),
            Err(ServiceError::InvalidWordBlock(_))
        ));
        // Zero shots.
        assert!(matches!(
            handle.sender.submit_word_batch(&[WordBlock {
                planes: &planes,
                count: 0
            }]),
            Err(ServiceError::InvalidWordBlock(_))
        ));
        // Stray bits at or above the shot count.
        assert!(matches!(
            handle.sender.submit_word_batch(&[WordBlock {
                planes: &[0b100],
                count: 2
            }]),
            Err(ServiceError::InvalidWordBlock(_))
        ));
        // A block that can never fit the stream's bounded queue.
        assert_eq!(
            handle.sender.submit_word_batch(&[WordBlock {
                planes: &planes,
                count: 16
            }]),
            Err(ServiceError::WordBlockTooLarge {
                count: 16,
                stream_queue_shots: 8
            })
        );
        assert_eq!(service.metrics().frames_submitted, 0, "nothing enqueued");
        service.shutdown();
    }

    #[test]
    fn closing_an_idle_stream_leaves_other_streams_pending() {
        // Long deadline: only a close (or a full word) could flush.
        let service = DecodeService::new(
            ServiceConfig::default()
                .with_workers(1)
                .with_flush_deadline(Duration::from_secs(5)),
        );
        let circuit = mirror_circuit();
        let mut a = service
            .open_stream_circuit("idle-close", &circuit, DecoderKind::UnionFind)
            .unwrap();
        let mut b = service
            .open_stream_circuit("idle-close", &circuit, DecoderKind::UnionFind)
            .unwrap();
        for _ in 0..3 {
            a.submit(&[0]).unwrap();
        }
        // B shares A's program but contributed nothing: its close must not
        // ship A's partial word.
        b.sender.close();
        assert!(b.recv().is_none(), "idle closed stream drains immediately");
        std::thread::sleep(Duration::from_millis(30));
        let metrics = service.metrics();
        assert_eq!(metrics.words_flushed, 0, "A's partial word stays pending");
        assert_eq!(metrics.close_flushes, 0);
        assert!(a.receiver.try_recv().is_none());
        // A's own close flushes its word — booked as a close flush, not a
        // deadline flush.
        a.sender.close();
        for i in 0..3u64 {
            assert_eq!(a.recv().expect("correction").seq, i);
        }
        assert!(a.recv().is_none());
        let metrics = service.metrics();
        assert_eq!(metrics.close_flushes, 1);
        assert_eq!(metrics.deadline_flushes, 0);
        assert_eq!(metrics.full_word_flushes, 0);
        service.shutdown();
    }

    #[test]
    fn close_leaves_words_shared_with_live_streams_pending() {
        let service = DecodeService::new(
            ServiceConfig::default()
                .with_workers(1)
                .with_flush_deadline(Duration::from_secs(5)),
        );
        let circuit = mirror_circuit();
        let mut a = service
            .open_stream_circuit("shared-close", &circuit, DecoderKind::UnionFind)
            .unwrap();
        let mut b = service
            .open_stream_circuit("shared-close", &circuit, DecoderKind::UnionFind)
            .unwrap();
        for _ in 0..2 {
            a.submit(&[0]).unwrap();
            b.submit(&[0]).unwrap();
        }
        // A closes while B still contributes to the shared partial word:
        // the word stays pending (B's deadline owns it now).
        a.sender.close();
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(service.metrics().words_flushed, 0);
        assert!(a.receiver.try_recv().is_none());
        // Once B (the last contributor) closes, the word flushes as a
        // close flush and both receivers drain.
        b.sender.close();
        for i in 0..2u64 {
            assert_eq!(a.recv().expect("correction").seq, i);
            assert_eq!(b.recv().expect("correction").seq, i);
        }
        assert!(a.recv().is_none());
        assert!(b.recv().is_none());
        let metrics = service.metrics();
        assert_eq!(metrics.close_flushes, 1);
        assert_eq!(metrics.deadline_flushes, 0);
        service.shutdown();
    }

    #[test]
    fn backpressure_bounds_the_stream_queue() {
        // One worker, huge deadline, tiny queue: the queue must fill.
        let service = DecodeService::new(
            ServiceConfig::default()
                .with_workers(1)
                .with_flush_deadline(Duration::from_secs(30))
                .with_stream_queue_shots(4),
        );
        let circuit = mirror_circuit();
        let mut handle = service
            .open_stream_circuit("bp", &circuit, DecoderKind::UnionFind)
            .unwrap();
        for _ in 0..4 {
            handle.sender.try_submit(&[0]).expect("queue has room");
        }
        assert_eq!(
            handle.sender.try_submit(&[0]),
            Err(ServiceError::Backpressure)
        );
        assert_eq!(service.metrics().queue_depth, 4);
        // Closing flushes the partial word; the queue drains and the
        // receiver sees all four corrections.
        handle.sender.close();
        for i in 0..4u64 {
            assert_eq!(handle.recv().unwrap().seq, i);
        }
        assert!(handle.recv().is_none());
        assert_eq!(service.metrics().close_flushes, 1);
        service.shutdown();
    }

    #[test]
    fn bad_frames_and_closed_streams_error() {
        let service = DecodeService::new(ServiceConfig::default());
        let circuit = mirror_circuit();
        let handle = service
            .open_stream_circuit("err", &circuit, DecoderKind::UnionFind)
            .unwrap();
        assert_eq!(
            handle.submit(&[7]),
            Err(ServiceError::DetectorOutOfRange {
                detector: 7,
                num_detectors: 1
            })
        );
        handle.sender.close();
        assert_eq!(handle.submit(&[]), Err(ServiceError::StreamClosed));
        service.shutdown();
        assert!(service
            .open_stream_circuit("late", &circuit, DecoderKind::UnionFind)
            .is_err());
    }

    #[test]
    fn shutdown_drains_queued_frames() {
        let service = DecodeService::new(
            ServiceConfig::default()
                .with_workers(1)
                .with_flush_deadline(Duration::from_secs(30)),
        );
        let circuit = mirror_circuit();
        let mut handle = service
            .open_stream_circuit("drain", &circuit, DecoderKind::UnionFind)
            .unwrap();
        for _ in 0..10 {
            handle.submit(&[0]).unwrap();
        }
        // Shutdown flushes the partial word and decodes it before joining.
        service.shutdown();
        let mut received = 0;
        while handle.recv().is_some() {
            received += 1;
        }
        assert_eq!(received, 10);
    }

    #[test]
    fn different_programs_use_different_shards() {
        // Two programs: a partial word on one must not delay or flush with
        // a full word on the other.
        let service = DecodeService::new(
            ServiceConfig::default()
                .with_workers(2)
                .with_flush_deadline(Duration::from_secs(5)),
        );
        let mut a = service
            .open_stream_circuit("prog-a", &mirror_circuit(), DecoderKind::UnionFind)
            .unwrap();
        let mut b = service
            .open_stream_circuit("prog-b", &six_detector_circuit(), DecoderKind::UnionFind)
            .unwrap();
        a.submit(&[0]).unwrap();
        for _ in 0..64 {
            b.submit(&[0]).unwrap();
        }
        // B's full word decodes promptly even though A's partial pends.
        for i in 0..64u64 {
            let correction = b
                .receiver
                .recv_timeout(Duration::from_secs(10))
                .expect("B's shard flushes independently");
            assert_eq!(correction.seq, i);
        }
        let metrics = service.metrics();
        assert_eq!(metrics.full_word_flushes, 1);
        assert_eq!(metrics.words_flushed, 1, "A's partial word still pends");
        a.sender.close();
        assert_eq!(a.recv().expect("close flush").seq, 0);
        service.shutdown();
    }
}
