//! End-to-end TCP round trip: bind an ephemeral server, drive it with the
//! TCP load generator, verify bit-identity and shut it down over the wire —
//! the same path the CI service-smoke job exercises via the `artifacts`
//! binary.

use std::time::Duration;

use qccd_decoder::DecoderKind;
use qccd_service::{loadgen, LoadgenOptions, NetClient, NetServer, ServiceConfig};
use serde_json::Value;

#[test]
fn tcp_round_trip_with_loadgen_and_shutdown() {
    let server = NetServer::bind(
        "127.0.0.1:0",
        ServiceConfig::default()
            .with_workers(2)
            .with_flush_deadline(Duration::from_micros(300)),
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound address").to_string();
    let running = std::thread::spawn(move || server.run());

    let options = LoadgenOptions {
        streams: 3,
        shots: 1024,
        seed: 7,
        rate: None,
        verify: true,
    };
    let report = loadgen::run_over_tcp(
        &addr,
        ("grid", "standard"),
        2,
        5.0,
        2,
        DecoderKind::UnionFind,
        &options,
        true, // shutdown the server over the wire
    )
    .expect("TCP loadgen round trip");
    assert_eq!(report.mismatches, 0, "wire corrections are bit-identical");
    assert_eq!(report.shots, 1024);
    assert_eq!(report.metrics.frames_completed, 1024);
    assert!(report.metrics.words_flushed >= 16);
    running
        .join()
        .expect("server thread")
        .expect("server exits cleanly after shutdown command");
}

#[test]
fn shutdown_is_not_blocked_by_an_idle_connection() {
    let server =
        NetServer::bind("127.0.0.1:0", ServiceConfig::default()).expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound address").to_string();
    let running = std::thread::spawn(move || server.run());

    // An idle client that never sends anything must not pin the server.
    let idle = NetClient::connect(&addr).expect("idle client connects");
    let mut active = NetClient::connect(&addr).expect("active client connects");
    active.ping().expect("ping");
    active.shutdown_server().expect("shutdown");
    let joined = std::thread::spawn(move || running.join());
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !joined.is_finished() {
        assert!(
            std::time::Instant::now() < deadline,
            "server.run() must return despite the idle connection"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    joined
        .join()
        .expect("waiter")
        .expect("server thread")
        .expect("clean exit");
    drop(idle);
}

#[test]
fn protocol_errors_are_reported_not_fatal() {
    let server =
        NetServer::bind("127.0.0.1:0", ServiceConfig::default()).expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound address").to_string();
    let running = std::thread::spawn(move || server.run());

    let mut client = NetClient::connect(&addr).expect("connect");
    client.ping().expect("ping");
    // Bad opens are rejected with a message, and the connection survives.
    assert!(client
        .open_stream(
            "dodecahedron",
            2,
            "standard",
            1.0,
            3,
            DecoderKind::UnionFind
        )
        .is_err());
    assert!(client
        .open_stream("grid", 2, "standard", 1.0, 0, DecoderKind::UnionFind)
        .is_err());
    // A good open still works afterwards, and metrics round-trip.
    let stream = client
        .open_stream("grid", 2, "standard", 5.0, 2, DecoderKind::UnionFind)
        .expect("valid open");
    assert!(stream.num_detectors > 0);
    assert_eq!(stream.num_observables, 1);
    let metrics = client.metrics().expect("metrics");
    assert_eq!(metrics.get("streams_open").and_then(Value::as_u64), Some(1));
    client.close_stream(stream.id).expect("close");
    client.shutdown_server().expect("shutdown");
    running.join().expect("server thread").expect("clean exit");
}
