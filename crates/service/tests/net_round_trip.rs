//! End-to-end TCP round trip: bind an ephemeral server, drive it with the
//! TCP load generator, verify bit-identity and shut it down over the wire —
//! the same path the CI service-smoke job exercises via the `artifacts`
//! binary.

use std::time::Duration;

use qccd_decoder::DecoderKind;
use qccd_service::{loadgen, LoadgenOptions, NetClient, NetServer, ServiceConfig};
use serde_json::Value;

#[test]
fn tcp_round_trip_with_loadgen_and_shutdown() {
    let server = NetServer::bind(
        "127.0.0.1:0",
        ServiceConfig::default()
            .with_workers(2)
            .with_flush_deadline(Duration::from_micros(300)),
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound address").to_string();
    let running = std::thread::spawn(move || server.run());

    let options = LoadgenOptions {
        streams: 3,
        shots: 1024,
        seed: 7,
        rate: None,
        shot_major: false, // the per-shot `frames` wire command
        verify: true,
        ..LoadgenOptions::default()
    };
    let report = loadgen::run_over_tcp(
        &addr,
        ("grid", "standard"),
        2,
        5.0,
        2,
        DecoderKind::UnionFind,
        &options,
        true, // shutdown the server over the wire
    )
    .expect("TCP loadgen round trip");
    assert_eq!(report.mismatches, 0, "wire corrections are bit-identical");
    assert_eq!(report.shots, 1024);
    assert_eq!(report.metrics.frames_completed, 1024);
    assert!(report.metrics.words_flushed >= 16);
    running
        .join()
        .expect("server thread")
        .expect("server exits cleanly after shutdown command");
}

/// The saturation-harness shape: several TCP connections, each with its own
/// submission thread, driving the shot-major `frames_packed` wire command —
/// still bit-identical to the offline decode, with client-observed latency
/// percentiles measured.
#[test]
fn multi_connection_packed_round_trip() {
    let server = NetServer::bind(
        "127.0.0.1:0",
        ServiceConfig::default()
            .with_workers(2)
            .with_flush_deadline(Duration::from_micros(300)),
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound address").to_string();
    let running = std::thread::spawn(move || server.run());

    let options = LoadgenOptions {
        streams: 4,
        connections: 3,
        shots: 2048,
        seed: 21,
        rate: None,
        shot_major: true, // the `frames_packed` wire command
        verify: true,
    };
    let report = loadgen::run_over_tcp(
        &addr,
        ("grid", "standard"),
        2,
        5.0,
        2,
        DecoderKind::UnionFind,
        &options,
        true,
    )
    .expect("multi-connection packed round trip");
    assert_eq!(report.mismatches, 0, "wire corrections are bit-identical");
    assert_eq!(report.connections, 3);
    assert_eq!(report.metrics.frames_completed, 2048);
    assert!(
        report.p99_latency_us >= report.p50_latency_us,
        "client-side latency percentiles are ordered"
    );
    running
        .join()
        .expect("server thread")
        .expect("server exits cleanly after shutdown command");
}

/// The frontier sweep end-to-end: one calibration run plus throttled points,
/// every point with non-zero achieved throughput.
#[test]
fn frontier_sweep_reports_nonzero_points() {
    let server = NetServer::bind(
        "127.0.0.1:0",
        ServiceConfig::default().with_flush_deadline(Duration::from_micros(300)),
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound address").to_string();
    let running = std::thread::spawn(move || server.run());

    let options = LoadgenOptions {
        streams: 2,
        connections: 2,
        shots: 512,
        seed: 3,
        rate: None,
        shot_major: true,
        verify: true,
    };
    let frontier = loadgen::run_frontier_over_tcp(
        &addr,
        ("grid", "standard"),
        2,
        5.0,
        2,
        DecoderKind::UnionFind,
        &options,
        2,
        true,
    )
    .expect("frontier sweep");
    assert_eq!(frontier.calibration.mismatches, 0);
    assert_eq!(frontier.points.len(), 2);
    for point in &frontier.points {
        assert!(point.target_rate > 0.0);
        assert!(point.shots_per_sec > 0.0);
    }
    running
        .join()
        .expect("server thread")
        .expect("server exits cleanly after shutdown command");
}

/// The shot-major wire command (`frames_packed`) and the per-shot wire
/// command (`frames`) produce identical corrections for identical shots:
/// two streams of the same program, one fed each way, must agree
/// correction for correction.
#[test]
fn packed_wire_matches_frames_wire() {
    let server = NetServer::bind(
        "127.0.0.1:0",
        ServiceConfig::default().with_flush_deadline(Duration::from_micros(200)),
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound address").to_string();
    let running = std::thread::spawn(move || server.run());

    let arch = qccd_service::net::parse_arch("grid", 2, "standard", 5.0).expect("arch");
    let program =
        qccd_service::DecodeProgram::compile(&arch, 2, DecoderKind::UnionFind).expect("compile");
    let frames = loadgen::sample_frames(program.circuit(), 300, 9).expect("sample");

    let mut client = NetClient::connect(&addr).expect("connect");
    let by_frames = client
        .open_stream("grid", 2, "standard", 5.0, 2, DecoderKind::UnionFind)
        .expect("open frames stream");
    let by_blocks = client
        .open_stream("grid", 2, "standard", 5.0, 2, DecoderKind::UnionFind)
        .expect("open packed stream");

    for burst in frames.chunks(64) {
        client
            .submit_frames(by_frames.id, burst)
            .expect("frames submit");
        let mut planes = vec![0u64; by_blocks.num_detectors];
        for (j, fired) in burst.iter().enumerate() {
            for &detector in fired {
                planes[detector] |= 1u64 << j;
            }
        }
        client
            .submit_packed_words(by_blocks.id, &[(planes, burst.len())])
            .expect("packed submit");
    }
    client.close_stream(by_frames.id).expect("close frames");
    client.close_stream(by_blocks.id).expect("close packed");

    for seq in 0..frames.len() as u64 {
        let a = by_frames
            .corrections
            .recv_timeout(Duration::from_secs(30))
            .expect("frames correction");
        let b = by_blocks
            .corrections
            .recv_timeout(Duration::from_secs(30))
            .expect("packed correction");
        assert_eq!(a.seq, seq);
        assert_eq!(b.seq, seq);
        assert_eq!(a.flips, b.flips, "shot {seq} decodes identically");
    }
    assert!(
        client.take_protocol_errors().is_empty(),
        "every server line routed cleanly"
    );
    client.shutdown_server().expect("shutdown");
    running.join().expect("server thread").expect("clean exit");
}

#[test]
fn shutdown_is_not_blocked_by_an_idle_connection() {
    let server =
        NetServer::bind("127.0.0.1:0", ServiceConfig::default()).expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound address").to_string();
    let running = std::thread::spawn(move || server.run());

    // An idle client that never sends anything must not pin the server.
    let idle = NetClient::connect(&addr).expect("idle client connects");
    let mut active = NetClient::connect(&addr).expect("active client connects");
    active.ping().expect("ping");
    active.shutdown_server().expect("shutdown");
    let joined = std::thread::spawn(move || running.join());
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !joined.is_finished() {
        assert!(
            std::time::Instant::now() < deadline,
            "server.run() must return despite the idle connection"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    joined
        .join()
        .expect("waiter")
        .expect("server thread")
        .expect("clean exit");
    drop(idle);
}

#[test]
fn protocol_errors_are_reported_not_fatal() {
    let server =
        NetServer::bind("127.0.0.1:0", ServiceConfig::default()).expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound address").to_string();
    let running = std::thread::spawn(move || server.run());

    let mut client = NetClient::connect(&addr).expect("connect");
    client.ping().expect("ping");
    // Bad opens are rejected with a message, and the connection survives.
    assert!(client
        .open_stream(
            "dodecahedron",
            2,
            "standard",
            1.0,
            3,
            DecoderKind::UnionFind
        )
        .is_err());
    assert!(client
        .open_stream("grid", 2, "standard", 1.0, 0, DecoderKind::UnionFind)
        .is_err());
    // A good open still works afterwards, and metrics round-trip.
    let stream = client
        .open_stream("grid", 2, "standard", 5.0, 2, DecoderKind::UnionFind)
        .expect("valid open");
    assert!(stream.num_detectors > 0);
    assert_eq!(stream.num_observables, 1);
    let metrics = client.metrics().expect("metrics");
    assert_eq!(metrics.get("streams_open").and_then(Value::as_u64), Some(1));
    client.close_stream(stream.id).expect("close");
    client.shutdown_server().expect("shutdown");
    running.join().expect("server thread").expect("clean exit");
}
