//! Property battery for the streaming decode service.
//!
//! Whatever the stream count, flush deadline, word coalescing, worker count
//! or submission interleaving, the service must deliver — in order, per
//! stream — exactly the corrections the offline word-parallel
//! `decode_batch` produces on the same frames. This is the online
//! counterpart of the PR-4 bit-identity contract: batching boundaries are
//! scheduling, never semantics.

use std::time::Duration;

use proptest::prelude::*;

use qccd_circuit::{Detector, Instruction, LogicalObservable, MeasurementRef, QubitId};
use qccd_decoder::{DecodeScratch, DecoderKind, DecodingGraph};
use qccd_service::{
    loadgen, DecodeProgram, DecodeService, LoadgenOptions, ServiceConfig, TelemetryConfig,
};
use qccd_sim::{NoiseChannel, NoisyCircuit, SyndromeChunkBuilder};

/// A three-qubit parity-check circuit with bit-flip noise (two detectors,
/// one observable) — small enough that thousands of service shots stay
/// cheap, rich enough that single- and multi-defect frames occur.
fn noisy_parity_circuit(p: f64) -> NoisyCircuit {
    let q = |i: u32| QubitId::new(i);
    let mref = |i: u32, occurrence: u32| MeasurementRef::new(q(i), occurrence);
    let mut c = NoisyCircuit::new();
    for i in 0..3 {
        c.push_gate(Instruction::Reset(q(i)));
    }
    for round in 0..2u32 {
        c.push_gate(Instruction::Reset(q(2)));
        c.push_noise(NoiseChannel::BitFlip { qubit: q(0), p });
        c.push_gate(Instruction::Cnot {
            control: q(0),
            target: q(2),
        });
        c.push_gate(Instruction::Cnot {
            control: q(1),
            target: q(2),
        });
        c.push_gate(Instruction::Measure(q(2)));
        if round == 0 {
            c.add_detector(Detector::new(vec![mref(2, 0)]));
        } else {
            c.add_detector(Detector::new(vec![mref(2, 0), mref(2, 1)]));
        }
    }
    c.push_gate(Instruction::Measure(q(0)));
    c.add_observable(LogicalObservable::new(vec![mref(0, 0)]));
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The satellite contract: per-stream corrections from the service are
    /// bit-identical to offline `decode_batch` on the same frames, across
    /// stream counts, deadlines, coalescing, worker counts and wire modes
    /// (per-shot packed frames vs pre-transposed shot-major word blocks).
    /// The loadgen asserts ordered, complete delivery internally and
    /// counts mismatches.
    #[test]
    fn service_corrections_match_offline_decode_batch(
        seed in 0u64..1000,
        workers in 1usize..4,
        streams in 1usize..6,
        shots in 1usize..700,
        deadline_us in prop::sample::select(vec![0u64, 100, 100_000]),
        batch_words in 1usize..3,
        shot_major in any::<bool>(),
        kind in prop::sample::select(vec![
            DecoderKind::UnionFind,
            DecoderKind::GreedyMatching,
            DecoderKind::ExactMatching,
        ]),
    ) {
        let circuit = noisy_parity_circuit(0.12);
        let service = DecodeService::new(
            ServiceConfig::default()
                .with_workers(workers)
                .with_flush_deadline(Duration::from_micros(deadline_us))
                .with_max_batch_words(batch_words),
        );
        let options = LoadgenOptions {
            streams,
            shots,
            seed,
            rate: None,
            shot_major,
            verify: true,
            ..LoadgenOptions::default()
        };
        let report = loadgen::run_in_process(&service, "prop", &circuit, kind, &options)
            .expect("loadgen runs");
        prop_assert_eq!(report.mismatches, 0,
            "workers={} streams={} shots={} deadline={}µs words={} shot_major={} kind={:?}",
            workers, streams, shots, deadline_us, batch_words, shot_major, kind);
        prop_assert_eq!(report.shots, shots);
        let metrics = report.metrics;
        prop_assert_eq!(metrics.frames_completed, shots as u64);
        prop_assert_eq!(metrics.queue_depth, 0);
        prop_assert_eq!(
            metrics.full_word_flushes + metrics.deadline_flushes + metrics.close_flushes > 0,
            true
        );
        service.shutdown();
    }
}

/// Builder-ingested frames decode identically to the sampler's own chunks:
/// the frame-transpose path of `qccd_sim::SyndromeChunkBuilder` feeds the
/// decoder the same bits the offline pipeline sees.
#[test]
fn builder_chunks_decode_identically_to_sampled_chunks() {
    let circuit = noisy_parity_circuit(0.15);
    let program =
        DecodeProgram::from_circuit("builder", circuit.clone(), DecoderKind::UnionFind).unwrap();
    let frames = loadgen::sample_frames(&circuit, 300, 5).unwrap();
    let sampler = qccd_sim::sample_detector_chunks(&circuit, 300, 5, usize::MAX).unwrap();
    let sampled = sampler.sample_chunk(0);

    let mut builder = SyndromeChunkBuilder::new(program.num_detectors(), 0);
    for frame in &frames {
        builder.push_frame(frame);
    }
    let rebuilt = builder.finish(0, 0);

    let dem = qccd_sim::DetectorErrorModel::from_circuit(&circuit).unwrap();
    let decoder = DecoderKind::UnionFind.build(DecodingGraph::from_dem(&dem));
    let mut a = DecodeScratch::new();
    let mut b = DecodeScratch::new();
    let from_builder = decoder.decode_batch(&rebuilt, &mut a);
    let from_sampler = decoder.decode_batch(&sampled, &mut b);
    for shot in 0..300 {
        assert_eq!(
            from_builder.shot_prediction(shot),
            from_sampler.shot_prediction(shot),
            "shot {shot}"
        );
    }
}

/// Telemetry at full sampling (every span timed, every counter mirrored)
/// must stay an observer: corrections remain bit-identical to the offline
/// decode, and the run leaves non-zero per-stage telemetry behind.
#[test]
fn full_sampling_telemetry_preserves_bit_identity() {
    let circuit = noisy_parity_circuit(0.12);
    let service = DecodeService::new(
        ServiceConfig::default()
            .with_workers(3)
            .with_flush_deadline(Duration::from_micros(150))
            .with_telemetry(TelemetryConfig::full_sampling()),
    );
    let options = LoadgenOptions {
        streams: 4,
        shots: 900,
        seed: 7,
        verify: true,
        ..LoadgenOptions::default()
    };
    let report = loadgen::run_in_process(
        &service,
        "telemetry",
        &circuit,
        DecoderKind::UnionFind,
        &options,
    )
    .unwrap();
    assert_eq!(report.mismatches, 0, "telemetry must not perturb decoding");
    assert_eq!(report.shots, 900);

    let snapshot = service.telemetry_snapshot();
    assert_eq!(snapshot.counter("service.frames_submitted"), 900);
    assert_eq!(snapshot.counter("service.frames_completed"), 900);
    for stage in [
        "service.stage.batcher_wait",
        "service.stage.decode",
        "service.stage.delivery",
    ] {
        let calls = snapshot.counter(&format!("{stage}_calls"));
        assert!(calls > 0, "{stage} recorded no calls");
        let hist = snapshot
            .histogram(&format!("{stage}_us"))
            .unwrap_or_else(|| panic!("{stage} has no duration histogram"));
        // Full sampling times every span (batcher_wait records one event
        // per run of frames, so `calls` can exceed `count` only under
        // sampling — never here).
        assert_eq!(hist.count, calls, "{stage} sampled under full sampling");
    }
    let stages = report.stages.expect("report carries the stage breakdown");
    assert!(stages.decode.timed > 0);
    service.shutdown();
}

/// Paced replay: the loadgen's rate limiter holds aggregate throughput near
/// the target without breaking identity.
#[test]
fn paced_replay_stays_bit_identical() {
    let circuit = noisy_parity_circuit(0.1);
    let service = DecodeService::new(
        ServiceConfig::default()
            .with_workers(2)
            .with_flush_deadline(Duration::from_micros(200)),
    );
    let options = LoadgenOptions {
        streams: 3,
        shots: 600,
        seed: 11,
        rate: Some(50_000.0),
        verify: true,
        ..LoadgenOptions::default()
    };
    let report = loadgen::run_in_process(
        &service,
        "paced",
        &circuit,
        DecoderKind::UnionFind,
        &options,
    )
    .unwrap();
    assert_eq!(report.mismatches, 0);
    // 600 shots at 50k/s should take at least ~12 ms minus the last-shot
    // slack; allow generous scheduling noise in both directions.
    assert!(
        report.wall_seconds > 0.005,
        "pacing had no effect: {} s",
        report.wall_seconds
    );
    service.shutdown();
}
