//! Flat bit-plane arena.
//!
//! A [`BitPlanes`] stores `planes × words_per_plane` 64-bit words in one
//! contiguous allocation, replacing the `Vec<Vec<u64>>`-of-planes layout the
//! sampler used to carry. Bit `s % 64` of word `s / 64` of a plane is the
//! value for shot `s`. One allocation instead of one per plane keeps the
//! sampler's hot loop allocation-free and cache-friendly, and lets planes be
//! appended in place (no temporary copies when snapshotting measurement
//! flips).

use serde::{Deserialize, Serialize};

/// A dense arena of equally-sized bit planes.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BitPlanes {
    words_per_plane: usize,
    data: Vec<u64>,
}

impl BitPlanes {
    /// An empty arena whose planes will each hold `words_per_plane` words.
    pub fn new(words_per_plane: usize) -> Self {
        BitPlanes {
            words_per_plane,
            data: Vec::new(),
        }
    }

    /// An arena pre-filled with `planes` zeroed planes.
    pub fn zeroed(planes: usize, words_per_plane: usize) -> Self {
        BitPlanes {
            words_per_plane,
            data: vec![0; planes * words_per_plane],
        }
    }

    /// Number of planes currently stored.
    pub fn num_planes(&self) -> usize {
        self.data
            .len()
            .checked_div(self.words_per_plane)
            .unwrap_or(0)
    }

    /// Words per plane.
    pub fn words_per_plane(&self) -> usize {
        self.words_per_plane
    }

    /// Read access to one plane.
    pub fn plane(&self, index: usize) -> &[u64] {
        let start = index * self.words_per_plane;
        &self.data[start..start + self.words_per_plane]
    }

    /// Write access to one plane.
    pub fn plane_mut(&mut self, index: usize) -> &mut [u64] {
        let start = index * self.words_per_plane;
        &mut self.data[start..start + self.words_per_plane]
    }

    /// Appends a plane by copying `source` into the arena (a single
    /// `memcpy`, no intermediate allocation). Returns the new plane's index.
    pub fn push_plane(&mut self, source: &[u64]) -> usize {
        assert_eq!(
            source.len(),
            self.words_per_plane,
            "plane width mismatch: {} vs {}",
            source.len(),
            self.words_per_plane
        );
        let index = self.num_planes();
        self.data.extend_from_slice(source);
        index
    }

    /// Appends a zeroed plane and returns its index.
    pub fn push_zero_plane(&mut self) -> usize {
        let index = self.num_planes();
        self.data.resize(self.data.len() + self.words_per_plane, 0);
        index
    }

    /// Reserves capacity for `additional` more planes.
    pub fn reserve_planes(&mut self, additional: usize) {
        self.data.reserve(additional * self.words_per_plane);
    }

    /// Tests one bit of one plane.
    pub fn bit(&self, plane: usize, bit: usize) -> bool {
        (self.plane(plane)[bit / 64] >> (bit % 64)) & 1 == 1
    }

    /// Iterates one word *column*: the word at index `word` of every plane,
    /// in plane order. The arena is plane-major, so this is a strided walk —
    /// callers that touch every plane of one word (the word-parallel decode
    /// triage) use it instead of resolving each plane slice per plane.
    pub fn column(&self, word: usize) -> impl Iterator<Item = u64> + '_ {
        assert!(word < self.words_per_plane, "word {word} out of range");
        // `get` instead of indexing so an arena with zero planes yields an
        // empty column rather than panicking on the out-of-range start.
        self.data
            .get(word..)
            .unwrap_or(&[])
            .iter()
            .step_by(self.words_per_plane)
            .copied()
    }

    /// XORs `source` into the given plane.
    pub fn xor_plane(&mut self, index: usize, source: &[u64]) {
        for (dst, &src) in self.plane_mut(index).iter_mut().zip(source) {
            *dst ^= src;
        }
    }

    /// Number of set bits in one plane.
    pub fn count_ones(&self, index: usize) -> usize {
        self.plane(index)
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Drops all planes, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut arena = BitPlanes::new(2);
        assert_eq!(arena.num_planes(), 0);
        arena.push_plane(&[0b1010, 0]);
        arena.push_plane(&[u64::MAX, 1]);
        assert_eq!(arena.num_planes(), 2);
        assert_eq!(arena.plane(0), &[0b1010, 0]);
        assert_eq!(arena.plane(1), &[u64::MAX, 1]);
        assert!(arena.bit(0, 1));
        assert!(!arena.bit(0, 0));
        assert!(arena.bit(1, 64));
        assert_eq!(arena.count_ones(0), 2);
    }

    #[test]
    fn column_walks_one_word_of_every_plane() {
        let mut arena = BitPlanes::new(2);
        arena.push_plane(&[1, 2]);
        arena.push_plane(&[3, 4]);
        arena.push_plane(&[5, 6]);
        assert_eq!(arena.column(0).collect::<Vec<_>>(), vec![1, 3, 5]);
        assert_eq!(arena.column(1).collect::<Vec<_>>(), vec![2, 4, 6]);
    }

    #[test]
    fn zeroed_and_xor() {
        let mut arena = BitPlanes::zeroed(3, 1);
        arena.xor_plane(1, &[0b11]);
        arena.xor_plane(1, &[0b01]);
        assert_eq!(arena.plane(0), &[0]);
        assert_eq!(arena.plane(1), &[0b10]);
        assert_eq!(arena.count_ones(1), 1);
    }

    #[test]
    #[should_panic(expected = "plane width mismatch")]
    fn width_mismatch_panics() {
        let mut arena = BitPlanes::new(2);
        arena.push_plane(&[1]);
    }
}
