//! Chunked, streaming detector sampling.
//!
//! [`sample_detectors`](crate::sample_detectors) materialises every shot of
//! an experiment at once, so its peak memory is `O(shots × measurements)`.
//! The chunked API bounds peak memory by the chunk size instead: a
//! [`DetectorChunkSampler`] describes the whole experiment but samples one
//! [`SyndromeChunk`] of shots at a time, each holding only bit-packed
//! *detector* and *observable* planes (measurement planes live just long
//! enough to be folded into the chunk).
//!
//! # Determinism
//!
//! Shots are partitioned into fixed-size *blocks* of
//! [`CANONICAL_BLOCK_SHOTS`] shots (the last block takes the remainder).
//! Every block is sampled with its own RNG stream, derived from the base
//! seed and the block index only — never from the chunk size. Chunks are
//! merely groups of consecutive blocks handed to one worker, so for a fixed
//! `(total_shots, seed)` the sampled outcomes are bit-identical regardless
//! of the chunk size or of how many threads pull chunks. This is what makes
//! `estimate_logical_error_rate` reproducible across machine shapes.
//!
//! Because `sample_chunk` takes `&self`, one sampler can be shared across
//! worker threads and chunks can be produced in any order, or in parallel.

use serde::{Deserialize, Serialize};

use qccd_circuit::MeasurementRef;

use crate::{BitPlanes, FrameSampler, NoisyCircuit};

/// Number of shots per canonical sampling block (a multiple of 64 so blocks
/// align with bit-plane words).
pub const CANONICAL_BLOCK_SHOTS: usize = 4096;

/// Derives the independent RNG seed of one canonical block.
///
/// Two rounds of SplitMix64 finalisation over the `(seed, block)` pair keep
/// block streams decorrelated even for adjacent seeds and block indices.
pub fn block_seed(seed: u64, block: u64) -> u64 {
    let mut state = seed ^ block.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for _ in 0..2 {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        state = (state ^ (state >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        state = (state ^ (state >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        state ^= state >> 31;
    }
    state
}

/// Bit-packed detector events and observable flips for one chunk of shots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyndromeChunk {
    chunk_index: usize,
    shot_offset: usize,
    num_shots: usize,
    num_detectors: usize,
    num_observables: usize,
    words: usize,
    detectors: BitPlanes,
    observables: BitPlanes,
}

impl SyndromeChunk {
    /// A zeroed chunk (no detector fired, no observable flipped).
    pub fn zeroed(
        chunk_index: usize,
        shot_offset: usize,
        num_shots: usize,
        num_detectors: usize,
        num_observables: usize,
    ) -> Self {
        assert!(num_shots > 0, "need at least one shot per chunk");
        let words = num_shots.div_ceil(64);
        SyndromeChunk {
            chunk_index,
            shot_offset,
            num_shots,
            num_detectors,
            num_observables,
            words,
            detectors: BitPlanes::zeroed(num_detectors, words),
            observables: BitPlanes::zeroed(num_observables, words),
        }
    }

    /// Builds a chunk from per-shot lists of fired detectors and flipped
    /// observables (mainly for tests and decoder benchmarks).
    pub fn from_shots(
        num_detectors: usize,
        num_observables: usize,
        shots: &[(Vec<usize>, Vec<usize>)],
    ) -> Self {
        let mut chunk =
            SyndromeChunk::zeroed(0, 0, shots.len().max(1), num_detectors, num_observables);
        for (shot, (fired, flipped)) in shots.iter().enumerate() {
            for &d in fired {
                chunk.detectors.plane_mut(d)[shot / 64] |= 1u64 << (shot % 64);
            }
            for &o in flipped {
                chunk.observables.plane_mut(o)[shot / 64] |= 1u64 << (shot % 64);
            }
        }
        chunk
    }

    /// Index of this chunk within its experiment.
    pub fn chunk_index(&self) -> usize {
        self.chunk_index
    }

    /// Global index of this chunk's first shot.
    pub fn shot_offset(&self) -> usize {
        self.shot_offset
    }

    /// Number of shots in this chunk.
    pub fn num_shots(&self) -> usize {
        self.num_shots
    }

    /// Number of detectors per shot.
    pub fn num_detectors(&self) -> usize {
        self.num_detectors
    }

    /// Number of logical observables per shot.
    pub fn num_observables(&self) -> usize {
        self.num_observables
    }

    /// Words per bit-plane.
    pub fn words(&self) -> usize {
        self.words
    }

    /// The bit-plane of one detector.
    pub fn detector_plane(&self, detector: usize) -> &[u64] {
        self.detectors.plane(detector)
    }

    /// The bit-plane of one observable.
    pub fn observable_plane(&self, observable: usize) -> &[u64] {
        self.observables.plane(observable)
    }

    /// Whether a detector fired in a shot (local index within the chunk).
    pub fn detector_fired(&self, shot: usize, detector: usize) -> bool {
        self.detectors.bit(detector, shot)
    }

    /// Whether an observable flipped in a shot (local index).
    pub fn observable_flipped(&self, shot: usize, observable: usize) -> bool {
        self.observables.bit(observable, shot)
    }

    /// Collects the fired detectors of one shot into `out` (cleared first).
    pub fn fired_detectors_into(&self, shot: usize, out: &mut Vec<usize>) {
        out.clear();
        let word = shot / 64;
        let bit = shot % 64;
        for d in 0..self.num_detectors {
            if (self.detectors.plane(d)[word] >> bit) & 1 == 1 {
                out.push(d);
            }
        }
    }

    /// ORs all detector planes together: bit `s` of the result is set iff
    /// *any* detector fired in shot `s`. Lets decoders skip quiet shots
    /// without scanning every plane per shot.
    pub fn fired_shot_mask(&self) -> Vec<u64> {
        let mut mask = vec![0u64; self.words];
        for d in 0..self.num_detectors {
            for (m, &w) in mask.iter_mut().zip(self.detectors.plane(d)) {
                *m |= w;
            }
        }
        let tail = self.tail_mask();
        if let Some(last) = mask.last_mut() {
            *last &= tail;
        }
        mask
    }

    /// Mask of valid shot bits in the final word of each plane.
    pub fn tail_mask(&self) -> u64 {
        let tail_bits = self.num_shots % 64;
        if tail_bits == 0 {
            u64::MAX
        } else {
            (1u64 << tail_bits) - 1
        }
    }

    /// Mutable access for the sampler while folding measurement planes in.
    pub(crate) fn detectors_mut(&mut self) -> &mut BitPlanes {
        &mut self.detectors
    }

    /// Mutable access for the sampler while folding measurement planes in.
    pub(crate) fn observables_mut(&mut self) -> &mut BitPlanes {
        &mut self.observables
    }
}

/// A chunked, thread-shareable detector sampler over one noisy circuit.
///
/// See the [module docs](self) for the determinism contract.
#[derive(Debug, Clone)]
pub struct DetectorChunkSampler<'c> {
    circuit: &'c NoisyCircuit,
    detectors: Vec<Vec<usize>>,
    observables: Vec<Vec<usize>>,
    total_shots: usize,
    seed: u64,
    blocks_per_chunk: usize,
}

impl<'c> DetectorChunkSampler<'c> {
    /// Creates a sampler for `total_shots` shots of `circuit`, cutting the
    /// work into chunks of (at least) `chunk_shots` shots. The chunk size is
    /// rounded up to a whole number of canonical blocks; it affects peak
    /// memory and scheduling granularity only, never the sampled bits.
    ///
    /// # Errors
    ///
    /// Returns the first dangling [`MeasurementRef`] if the circuit's
    /// annotations are inconsistent.
    pub fn new(
        circuit: &'c NoisyCircuit,
        total_shots: usize,
        seed: u64,
        chunk_shots: usize,
    ) -> Result<Self, MeasurementRef> {
        assert!(total_shots > 0, "need at least one shot");
        let (detectors, observables) = circuit.resolve_annotations()?;
        // Clamp to the experiment's block count so arbitrarily large
        // "one big chunk" requests (e.g. `usize::MAX`) cannot overflow the
        // chunk-extent arithmetic.
        let total_blocks = total_shots.div_ceil(CANONICAL_BLOCK_SHOTS);
        let blocks_per_chunk = chunk_shots
            .max(1)
            .div_ceil(CANONICAL_BLOCK_SHOTS)
            .min(total_blocks);
        Ok(DetectorChunkSampler {
            circuit,
            detectors,
            observables,
            total_shots,
            seed,
            blocks_per_chunk,
        })
    }

    /// Total number of shots across all chunks.
    pub fn total_shots(&self) -> usize {
        self.total_shots
    }

    /// Number of detectors per shot.
    pub fn num_detectors(&self) -> usize {
        self.detectors.len()
    }

    /// Number of logical observables per shot.
    pub fn num_observables(&self) -> usize {
        self.observables.len()
    }

    /// Number of canonical sampling blocks.
    pub fn num_blocks(&self) -> usize {
        self.total_shots.div_ceil(CANONICAL_BLOCK_SHOTS)
    }

    /// Number of chunks the shots are grouped into.
    pub fn num_chunks(&self) -> usize {
        self.num_blocks().div_ceil(self.blocks_per_chunk)
    }

    /// Effective shots per full chunk.
    pub fn chunk_shots(&self) -> usize {
        self.blocks_per_chunk * CANONICAL_BLOCK_SHOTS
    }

    /// Number of shots in one specific chunk.
    pub fn shots_in_chunk(&self, chunk_index: usize) -> usize {
        let start = chunk_index * self.chunk_shots();
        assert!(start < self.total_shots, "chunk {chunk_index} out of range");
        (self.total_shots - start).min(self.chunk_shots())
    }

    fn shots_in_block(&self, block: usize) -> usize {
        let start = block * CANONICAL_BLOCK_SHOTS;
        (self.total_shots - start).min(CANONICAL_BLOCK_SHOTS)
    }

    /// Samples one chunk. Chunks are independent: this method can be called
    /// from many threads at once and in any order.
    pub fn sample_chunk(&self, chunk_index: usize) -> SyndromeChunk {
        let chunk_shots = self.shots_in_chunk(chunk_index);
        let first_block = chunk_index * self.blocks_per_chunk;
        let shot_offset = first_block * CANONICAL_BLOCK_SHOTS;
        let mut chunk = SyndromeChunk::zeroed(
            chunk_index,
            shot_offset,
            chunk_shots,
            self.detectors.len(),
            self.observables.len(),
        );
        let last_block = (first_block + self.blocks_per_chunk).min(self.num_blocks());
        for block in first_block..last_block {
            let block_shots = self.shots_in_block(block);
            let word_offset = (block - first_block) * (CANONICAL_BLOCK_SHOTS / 64);
            let block_words = block_shots.div_ceil(64);
            let mut sampler = FrameSampler::new(
                self.circuit.num_qubits(),
                block_shots,
                block_seed(self.seed, block as u64),
            );
            sampler.run(self.circuit);
            let fold = |annotations: &[Vec<usize>], planes: &mut BitPlanes| {
                for (index, measurement_indices) in annotations.iter().enumerate() {
                    let dst = &mut planes.plane_mut(index)[word_offset..word_offset + block_words];
                    for &m in measurement_indices {
                        for (d, &s) in dst.iter_mut().zip(sampler.measurement_plane(m)) {
                            *d ^= s;
                        }
                    }
                }
            };
            fold(&self.detectors, chunk.detectors_mut());
            fold(&self.observables, chunk.observables_mut());
        }
        chunk
    }

    /// A streaming iterator over all chunks in order; peak memory is one
    /// chunk.
    pub fn chunks(&self) -> impl Iterator<Item = SyndromeChunk> + '_ {
        (0..self.num_chunks()).map(|index| self.sample_chunk(index))
    }
}

/// Convenience constructor mirroring [`crate::sample_detectors`]: a chunked
/// sampler whose peak memory is `O(chunk_shots × detectors)` instead of
/// `O(total_shots × measurements)`.
///
/// # Errors
///
/// Returns the first dangling [`MeasurementRef`] if the circuit's
/// annotations are inconsistent.
pub fn sample_detector_chunks(
    circuit: &NoisyCircuit,
    total_shots: usize,
    seed: u64,
    chunk_shots: usize,
) -> Result<DetectorChunkSampler<'_>, MeasurementRef> {
    DetectorChunkSampler::new(circuit, total_shots, seed, chunk_shots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NoiseChannel;
    use qccd_circuit::{Detector, Instruction, LogicalObservable, QubitId};

    fn q(i: u32) -> QubitId {
        QubitId::new(i)
    }

    fn mref(i: u32, occurrence: u32) -> MeasurementRef {
        MeasurementRef::new(q(i), occurrence)
    }

    fn noisy_single_qubit(p: f64) -> NoisyCircuit {
        let mut c = NoisyCircuit::new();
        c.push_gate(Instruction::Reset(q(0)));
        c.push_noise(NoiseChannel::BitFlip { qubit: q(0), p });
        c.push_gate(Instruction::Measure(q(0)));
        c.add_detector(Detector::new(vec![mref(0, 0)]));
        c.add_observable(LogicalObservable::new(vec![mref(0, 0)]));
        c
    }

    #[test]
    fn chunk_partition_covers_all_shots() {
        let circuit = noisy_single_qubit(0.1);
        let total = 3 * CANONICAL_BLOCK_SHOTS + 17;
        let sampler = sample_detector_chunks(&circuit, total, 5, CANONICAL_BLOCK_SHOTS).unwrap();
        assert_eq!(sampler.num_chunks(), 4);
        let mut seen = 0;
        for chunk in sampler.chunks() {
            assert_eq!(chunk.shot_offset(), seen);
            seen += chunk.num_shots();
        }
        assert_eq!(seen, total);
    }

    #[test]
    fn chunking_is_invariant_in_chunk_size() {
        let circuit = noisy_single_qubit(0.2);
        let total = 2 * CANONICAL_BLOCK_SHOTS + 100;
        let fine = sample_detector_chunks(&circuit, total, 9, 1).unwrap();
        let coarse = sample_detector_chunks(&circuit, total, 9, total).unwrap();
        // Concatenating the fine chunks must reproduce the one coarse chunk.
        let mut fired_fine = Vec::new();
        for chunk in fine.chunks() {
            for shot in 0..chunk.num_shots() {
                fired_fine.push(chunk.detector_fired(shot, 0));
            }
        }
        let big = coarse.sample_chunk(0);
        let fired_coarse: Vec<bool> = (0..big.num_shots())
            .map(|s| big.detector_fired(s, 0))
            .collect();
        assert_eq!(fired_fine, fired_coarse);
    }

    #[test]
    fn chunk_statistics_match_probability() {
        let p = 0.25;
        let circuit = noisy_single_qubit(p);
        let total = 40_000;
        let sampler = sample_detector_chunks(&circuit, total, 11, 8192).unwrap();
        let mut fired = 0usize;
        for chunk in sampler.chunks() {
            let mask = chunk.fired_shot_mask();
            fired += mask.iter().map(|w| w.count_ones() as usize).sum::<usize>();
        }
        let rate = fired as f64 / total as f64;
        assert!((rate - p).abs() < 0.01, "rate {rate} vs p {p}");
    }

    #[test]
    fn fired_detectors_into_matches_bit_access() {
        let circuit = noisy_single_qubit(0.5);
        let sampler = sample_detector_chunks(&circuit, 130, 3, 64).unwrap();
        let chunk = sampler.sample_chunk(0);
        let mut fired = Vec::new();
        for shot in 0..chunk.num_shots() {
            chunk.fired_detectors_into(shot, &mut fired);
            assert_eq!(fired.contains(&0), chunk.detector_fired(shot, 0));
            // Observable mirrors the detector for this circuit.
            assert_eq!(
                chunk.observable_flipped(shot, 0),
                chunk.detector_fired(shot, 0)
            );
        }
    }

    #[test]
    fn from_shots_round_trips() {
        let shots = vec![(vec![0, 2], vec![0]), (vec![], vec![]), (vec![1], vec![])];
        let chunk = SyndromeChunk::from_shots(3, 1, &shots);
        assert_eq!(chunk.num_shots(), 3);
        assert!(chunk.detector_fired(0, 0) && chunk.detector_fired(0, 2));
        assert!(!chunk.detector_fired(1, 0));
        assert!(chunk.detector_fired(2, 1));
        assert!(chunk.observable_flipped(0, 0));
        assert!(!chunk.observable_flipped(2, 0));
        assert_eq!(chunk.fired_shot_mask(), vec![0b101]);
    }

    #[test]
    fn block_seeds_differ() {
        let a = block_seed(1, 0);
        let b = block_seed(1, 1);
        let c = block_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
