//! Chunked, streaming detector sampling.
//!
//! [`sample_detectors`](crate::sample_detectors) materialises every shot of
//! an experiment at once, so its peak memory is `O(shots × measurements)`.
//! The chunked API bounds peak memory by the chunk size instead: a
//! [`DetectorChunkSampler`] describes the whole experiment but samples one
//! [`SyndromeChunk`] of shots at a time, each holding only bit-packed
//! *detector* and *observable* planes (measurement planes live just long
//! enough to be folded into the chunk).
//!
//! # Determinism
//!
//! Shots are partitioned into fixed-size *blocks* of
//! [`CANONICAL_BLOCK_SHOTS`] shots (the last block takes the remainder).
//! Every block is sampled with its own RNG stream, derived from the base
//! seed and the block index only — never from the chunk size. Chunks are
//! merely groups of consecutive blocks handed to one worker, so for a fixed
//! `(total_shots, seed)` the sampled outcomes are bit-identical regardless
//! of the chunk size or of how many threads pull chunks. This is what makes
//! `estimate_logical_error_rate` reproducible across machine shapes.
//!
//! Because `sample_chunk` takes `&self`, one sampler can be shared across
//! worker threads and chunks can be produced in any order, or in parallel.

use serde::{Deserialize, Serialize};

use qccd_circuit::MeasurementRef;

use crate::{BitPlanes, FrameSampler, NoisyCircuit};

/// Number of shots per canonical sampling block (a multiple of 64 so blocks
/// align with bit-plane words).
pub const CANONICAL_BLOCK_SHOTS: usize = 4096;

/// Derives the independent RNG seed of one canonical block.
///
/// Two rounds of SplitMix64 finalisation over the `(seed, block)` pair keep
/// block streams decorrelated even for adjacent seeds and block indices.
pub fn block_seed(seed: u64, block: u64) -> u64 {
    let mut state = seed ^ block.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for _ in 0..2 {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        state = (state ^ (state >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        state = (state ^ (state >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        state ^= state >> 31;
    }
    state
}

/// Bit-parallel defect-count triage of one 64-shot word of a
/// [`SyndromeChunk`].
///
/// Each mask has one bit per shot lane of the word (invalid lanes of a
/// ragged final word are always clear). The counts are computed with
/// carry-save adders over the detector planes, so classifying a whole word
/// costs one pass over the planes — the same pass that gathers the word's
/// hot planes — instead of one scan per shot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WordTriage {
    /// Lanes in which at least one detector fired.
    pub fired: u64,
    /// Lanes with *exactly one* fired detector.
    pub single: u64,
    /// Lanes with *exactly two* fired detectors (the dominant noisy class
    /// under circuit-level noise, where one error event usually fires a
    /// space- or time-like detector pair).
    pub pair: u64,
    /// Lanes with more fired detectors than the sparse cap the triage was
    /// computed for (`0` means every noisy lane is at or below the cap).
    pub dense: u64,
}

impl WordTriage {
    /// Builds the triage masks from raw carry-save counters: `c1`/`c2`/`c4`
    /// are the count bit-slices, `over` flags lanes that saturated at ≥ 8,
    /// `valid_lanes` masks off the invalid lanes of a ragged final word.
    /// This is the word-granular kernel behind [`SyndromeChunk::word_triage`];
    /// it is public so batch decoders can run the same classification over
    /// *tiled* counter accumulations (sequential plane-major scans) instead
    /// of one strided column walk per word.
    pub fn from_counters(
        c1: u64,
        c2: u64,
        c4: u64,
        over: u64,
        sparse_cap: usize,
        valid_lanes: u64,
    ) -> Self {
        assert!(
            sparse_cap <= MAX_TRIAGE_CAP,
            "sparse cap {sparse_cap} exceeds the {MAX_TRIAGE_CAP}-defect triage range"
        );
        WordTriage {
            fired: (c1 | c2 | c4 | over) & valid_lanes,
            single: c1 & !(c2 | c4 | over) & valid_lanes,
            pair: c2 & !(c1 | c4 | over) & valid_lanes,
            dense: count_exceeds(c1, c2, c4, over, sparse_cap) & valid_lanes,
        }
    }

    /// Whether no detector fired anywhere in the word.
    pub fn is_quiet(&self) -> bool {
        self.fired == 0
    }

    /// Whether the word is noisy but every lane is at or below the sparse
    /// cap.
    pub fn is_sparse(&self) -> bool {
        self.fired != 0 && self.dense == 0
    }

    /// Lanes with at least two fired detectors.
    pub fn multi(&self) -> u64 {
        self.fired & !self.single
    }
}

/// Largest sparse cap [`SyndromeChunk::word_triage`] can classify exactly
/// (the carry-save counters saturate at 8 defects per lane).
pub const MAX_TRIAGE_CAP: usize = 7;

/// Adds one detector-plane word into a lane-wise carry-save counter
/// (`c1`/`c2`/`c4` count bit-slices, `over` = saturated at ≥ 8). This is
/// *the* defect-count adder: [`SyndromeChunk::word_triage`] folds a word
/// column through it, and batch decoders stream whole plane tiles through
/// it before classifying each word with [`WordTriage::from_counters`].
#[inline]
pub fn csa_accumulate(c1: &mut u64, c2: &mut u64, c4: &mut u64, over: &mut u64, bits: u64) {
    let carry1 = *c1 & bits;
    *c1 ^= bits;
    let carry2 = *c2 & carry1;
    *c2 ^= carry1;
    *over |= *c4 & carry2;
    *c4 ^= carry2;
}

/// Lanes whose 3-bit carry-save count `(c4 c2 c1)` — with `over` flagging
/// saturation at ≥ 8 — exceeds `cap`.
fn count_exceeds(c1: u64, c2: u64, c4: u64, over: u64, cap: usize) -> u64 {
    match cap {
        0 => c1 | c2 | c4 | over,
        1 => c2 | c4 | over,
        2 => (c2 & c1) | c4 | over,
        3 => c4 | over,
        4 => (c4 & (c2 | c1)) | over,
        5 => (c4 & c2) | over,
        6 => (c4 & c2 & c1) | over,
        _ => over,
    }
}

/// Bit-packed detector events and observable flips for one chunk of shots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyndromeChunk {
    chunk_index: usize,
    shot_offset: usize,
    num_shots: usize,
    num_detectors: usize,
    num_observables: usize,
    words: usize,
    detectors: BitPlanes,
    observables: BitPlanes,
}

impl SyndromeChunk {
    /// A zeroed chunk (no detector fired, no observable flipped). A
    /// zero-shot chunk is valid and simply has no words.
    pub fn zeroed(
        chunk_index: usize,
        shot_offset: usize,
        num_shots: usize,
        num_detectors: usize,
        num_observables: usize,
    ) -> Self {
        let words = num_shots.div_ceil(64);
        SyndromeChunk {
            chunk_index,
            shot_offset,
            num_shots,
            num_detectors,
            num_observables,
            words,
            detectors: BitPlanes::zeroed(num_detectors, words),
            observables: BitPlanes::zeroed(num_observables, words),
        }
    }

    /// Builds a chunk from per-shot lists of fired detectors and flipped
    /// observables (mainly for tests and decoder benchmarks).
    pub fn from_shots(
        num_detectors: usize,
        num_observables: usize,
        shots: &[(Vec<usize>, Vec<usize>)],
    ) -> Self {
        let mut chunk = SyndromeChunk::zeroed(0, 0, shots.len(), num_detectors, num_observables);
        for (shot, (fired, flipped)) in shots.iter().enumerate() {
            for &d in fired {
                chunk.detectors.plane_mut(d)[shot / 64] |= 1u64 << (shot % 64);
            }
            for &o in flipped {
                chunk.observables.plane_mut(o)[shot / 64] |= 1u64 << (shot % 64);
            }
        }
        chunk
    }

    /// Index of this chunk within its experiment.
    pub fn chunk_index(&self) -> usize {
        self.chunk_index
    }

    /// Global index of this chunk's first shot.
    pub fn shot_offset(&self) -> usize {
        self.shot_offset
    }

    /// Number of shots in this chunk.
    pub fn num_shots(&self) -> usize {
        self.num_shots
    }

    /// Number of detectors per shot.
    pub fn num_detectors(&self) -> usize {
        self.num_detectors
    }

    /// Number of logical observables per shot.
    pub fn num_observables(&self) -> usize {
        self.num_observables
    }

    /// Words per bit-plane.
    pub fn words(&self) -> usize {
        self.words
    }

    /// The bit-plane of one detector.
    pub fn detector_plane(&self, detector: usize) -> &[u64] {
        self.detectors.plane(detector)
    }

    /// The bit-plane of one observable.
    pub fn observable_plane(&self, observable: usize) -> &[u64] {
        self.observables.plane(observable)
    }

    /// Whether a detector fired in a shot (local index within the chunk).
    pub fn detector_fired(&self, shot: usize, detector: usize) -> bool {
        self.detectors.bit(detector, shot)
    }

    /// Whether an observable flipped in a shot (local index).
    pub fn observable_flipped(&self, shot: usize, observable: usize) -> bool {
        self.observables.bit(observable, shot)
    }

    /// Collects the fired detectors of one shot into `out` (cleared first).
    pub fn fired_detectors_into(&self, shot: usize, out: &mut Vec<usize>) {
        out.clear();
        let word = shot / 64;
        let bit = shot % 64;
        for d in 0..self.num_detectors {
            if (self.detectors.plane(d)[word] >> bit) & 1 == 1 {
                out.push(d);
            }
        }
    }

    /// Number of `u64` words a detector-major packed frame of this chunk
    /// occupies (`ceil(num_detectors / 64)`).
    pub fn frame_words(&self) -> usize {
        self.num_detectors.div_ceil(64)
    }

    /// Extracts one shot as a **detector-major packed frame** into `out`
    /// (cleared and resized to [`SyndromeChunk::frame_words`] first): bit
    /// `d` of the frame is set iff detector `d` fired in the shot. This is
    /// the wire format streaming clients replay into a
    /// [`SyndromeChunkBuilder`] — the transpose of the chunk's shot-major
    /// bit planes.
    pub fn packed_frame_into(&self, shot: usize, out: &mut Vec<u64>) {
        assert!(shot < self.num_shots, "shot {shot} out of range");
        out.clear();
        out.resize(self.frame_words(), 0);
        let word = shot / 64;
        let bit = shot % 64;
        for d in 0..self.num_detectors {
            if (self.detectors.plane(d)[word] >> bit) & 1 == 1 {
                out[d / 64] |= 1u64 << (d % 64);
            }
        }
    }

    /// Extracts one 64-shot word of the chunk as a **shot-major word
    /// block** into `out` (cleared first): one `u64` per detector, bit `s`
    /// of word `d` set iff detector `d` fired in shot
    /// `word_index * 64 + s`. This is the pre-transposed wire format
    /// streaming clients ship to [`SyndromeChunkBuilder::push_word_block`] —
    /// a straight column copy here, a shift-OR there, no per-frame bit
    /// scatter anywhere.
    pub fn word_block_into(&self, word_index: usize, out: &mut Vec<u64>) {
        assert!(word_index < self.words, "word {word_index} out of range");
        out.clear();
        out.extend(self.detectors.column(word_index));
    }

    /// ORs all detector planes together: bit `s` of the result is set iff
    /// *any* detector fired in shot `s`. Lets decoders skip quiet shots
    /// without scanning every plane per shot.
    pub fn fired_shot_mask(&self) -> Vec<u64> {
        let mut mask = vec![0u64; self.words];
        for d in 0..self.num_detectors {
            for (m, &w) in mask.iter_mut().zip(self.detectors.plane(d)) {
                *m |= w;
            }
        }
        let tail = self.tail_mask();
        if let Some(last) = mask.last_mut() {
            *last &= tail;
        }
        mask
    }

    /// Mask of valid shot bits in the final word of each plane.
    pub fn tail_mask(&self) -> u64 {
        let tail_bits = self.num_shots % 64;
        if tail_bits == 0 {
            u64::MAX
        } else {
            (1u64 << tail_bits) - 1
        }
    }

    /// Mask of valid shot lanes in the word at `word_index` (all 64 except
    /// in a ragged final word).
    pub fn lane_mask(&self, word_index: usize) -> u64 {
        if word_index + 1 == self.words {
            self.tail_mask()
        } else {
            u64::MAX
        }
    }

    /// Classifies the defect counts of one 64-shot word in a single pass
    /// over the detector planes (carry-save bit counters): which lanes are
    /// noisy at all, which carry exactly one defect, and which carry more
    /// than `sparse_cap` defects. `sparse_cap` must be at most
    /// [`MAX_TRIAGE_CAP`].
    pub fn word_triage(&self, word_index: usize, sparse_cap: usize) -> WordTriage {
        self.triage_column(word_index, sparse_cap, |_, _| {})
    }

    /// [`SyndromeChunk::word_triage`], additionally collecting the word's
    /// *hot planes* — every `(detector, plane word)` pair with at least one
    /// fired lane, in ascending detector order — into `hot` (cleared first).
    /// This is the decoder's gather primitive: the triage pass and the
    /// defect-gather pass share one walk over the planes.
    pub fn word_triage_into(
        &self,
        word_index: usize,
        sparse_cap: usize,
        hot: &mut Vec<(u32, u64)>,
    ) -> WordTriage {
        hot.clear();
        self.triage_column(word_index, sparse_cap, |detector, word| {
            hot.push((detector, word));
        })
    }

    /// A word-iterator view over the chunk: the [`WordTriage`] of every
    /// word, in word order.
    pub fn word_triages(&self, sparse_cap: usize) -> impl Iterator<Item = WordTriage> + '_ {
        (0..self.words).map(move |word| self.word_triage(word, sparse_cap))
    }

    fn triage_column(
        &self,
        word_index: usize,
        sparse_cap: usize,
        mut on_hot: impl FnMut(u32, u64),
    ) -> WordTriage {
        assert!(word_index < self.words, "word {word_index} out of range");
        let (mut c1, mut c2, mut c4, mut over) = (0u64, 0u64, 0u64, 0u64);
        for (detector, word) in self.detectors.column(word_index).enumerate() {
            if word == 0 {
                continue;
            }
            on_hot(detector as u32, word);
            csa_accumulate(&mut c1, &mut c2, &mut c4, &mut over, word);
        }
        WordTriage::from_counters(c1, c2, c4, over, sparse_cap, self.lane_mask(word_index))
    }

    /// Mutable access for the sampler while folding measurement planes in.
    pub(crate) fn detectors_mut(&mut self) -> &mut BitPlanes {
        &mut self.detectors
    }

    /// Mutable access for the sampler while folding measurement planes in.
    pub(crate) fn observables_mut(&mut self) -> &mut BitPlanes {
        &mut self.observables
    }
}

/// Incremental frame ingestion: packs a stream of per-shot syndromes
/// (arriving one *frame* at a time, as from a real-time decoder client) into
/// the bit-plane [`SyndromeChunk`] layout batch decoders consume.
///
/// Frames are detector-major — either a fired-detector index list
/// ([`SyndromeChunkBuilder::push_frame`]) or a packed `u64` bitmap with bit
/// `d` = "detector `d` fired" ([`SyndromeChunkBuilder::push_packed_frame`],
/// the transpose of [`SyndromeChunk::packed_frame_into`]). `finish` performs
/// the frame→plane transpose; shot order within the produced chunk is the
/// ingestion order. Observable planes are left zeroed: an online client does
/// not know the logical frame — that is what the decoder predicts.
///
/// Shot-major clients can instead ship whole pre-transposed 64-shot word
/// blocks ([`SyndromeChunkBuilder::push_word_block`], the transpose of
/// [`SyndromeChunk::word_block_into`]): one `u64` per detector with bit `s` =
/// "shot `s` fired detector `d`". `finish` folds those in with two shift-OR
/// ops per detector instead of a per-frame bit scatter, and the two ingestion
/// styles interleave freely within one batch.
///
/// The builder is reusable: `finish` drains the pending frames and the
/// builder keeps its allocations for the next batch.
#[derive(Debug, Clone)]
pub struct SyndromeChunkBuilder {
    num_detectors: usize,
    num_observables: usize,
    frame_words: usize,
    /// Row-major packed frames, `frame_words` words per frame.
    rows: Vec<u64>,
    /// Shot-major word blocks, `num_detectors` words per block.
    blocks: Vec<u64>,
    /// Ingestion order across the two storage arenas.
    segments: Vec<Segment>,
    num_frames: usize,
}

/// One contiguous run of same-layout frames inside the builder.
#[derive(Debug, Clone, Copy)]
enum Segment {
    /// `count` detector-major frames starting at frame index `start` of
    /// `rows`.
    Rows { start: usize, count: usize },
    /// `count` shots of one shot-major word block starting at word index
    /// `base` of `blocks`.
    Block { base: usize, count: usize },
}

impl SyndromeChunkBuilder {
    /// A builder for frames over `num_detectors` detectors, producing chunks
    /// with `num_observables` (zeroed) observable planes.
    pub fn new(num_detectors: usize, num_observables: usize) -> Self {
        SyndromeChunkBuilder {
            num_detectors,
            num_observables,
            frame_words: num_detectors.div_ceil(64),
            rows: Vec::new(),
            blocks: Vec::new(),
            segments: Vec::new(),
            num_frames: 0,
        }
    }

    /// Records `count` more detector-major frames, merging into the tail
    /// segment when it is already a `Rows` run.
    fn note_rows(&mut self, start: usize, count: usize) {
        if let Some(Segment::Rows { count: tail, .. }) = self.segments.last_mut() {
            *tail += count;
        } else {
            self.segments.push(Segment::Rows { start, count });
        }
        self.num_frames += count;
    }

    /// Number of detectors per frame.
    pub fn num_detectors(&self) -> usize {
        self.num_detectors
    }

    /// Number of frames ingested since the last [`SyndromeChunkBuilder::finish`].
    pub fn pending_frames(&self) -> usize {
        self.num_frames
    }

    /// Whether no frame is pending.
    pub fn is_empty(&self) -> bool {
        self.num_frames == 0
    }

    /// Ingests one frame as a fired-detector index list (indices out of
    /// range are rejected).
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= num_detectors`.
    pub fn push_frame(&mut self, fired: &[usize]) {
        let frame = self.rows.len() / self.frame_words;
        let start = self.rows.len();
        self.rows.resize(start + self.frame_words, 0);
        for &d in fired {
            assert!(d < self.num_detectors, "detector {d} out of range");
            self.rows[start + d / 64] |= 1u64 << (d % 64);
        }
        self.note_rows(frame, 1);
    }

    /// Ingests one packed frame (bit `d` = detector `d` fired). The slice
    /// must hold exactly `ceil(num_detectors / 64)` words; bits beyond
    /// `num_detectors` in the final word must be clear.
    ///
    /// # Panics
    ///
    /// Panics on a wrong word count or set out-of-range bits.
    pub fn push_packed_frame(&mut self, packed: &[u64]) {
        assert_eq!(packed.len(), self.frame_words, "wrong frame word count");
        if !self.num_detectors.is_multiple_of(64) {
            if let Some(&last) = packed.last() {
                let valid = (1u64 << (self.num_detectors % 64)) - 1;
                assert_eq!(last & !valid, 0, "frame sets out-of-range detector bits");
            }
        }
        let frame = self.rows.len() / self.frame_words;
        self.rows.extend_from_slice(packed);
        self.note_rows(frame, 1);
    }

    /// Ingests a **shot-major word block**: `planes` holds exactly
    /// `num_detectors` words, bit `s` of word `d` = "shot `s` of the block
    /// fired detector `d`", carrying `count` shots (1..=64). Bits at or
    /// above `count` must be clear in every word — the builder trusts the
    /// block's lane occupancy verbatim.
    ///
    /// This is the zero-transpose ingestion path: `finish` ORs each plane
    /// word straight into the chunk's bit planes.
    ///
    /// # Panics
    ///
    /// Panics on a wrong plane count, a `count` outside `1..=64`, or set
    /// out-of-range shot bits.
    pub fn push_word_block(&mut self, planes: &[u64], count: usize) {
        assert_eq!(planes.len(), self.num_detectors, "wrong plane word count");
        assert!(
            (1..=64).contains(&count),
            "block shot count {count} out of range"
        );
        if count < 64 {
            let valid = (1u64 << count) - 1;
            assert!(
                planes.iter().all(|&w| w & !valid == 0),
                "block sets out-of-range shot bits"
            );
        }
        let base = self.blocks.len();
        self.blocks.extend_from_slice(planes);
        self.segments.push(Segment::Block { base, count });
        self.num_frames += count;
    }

    /// Transposes the pending frames into a [`SyndromeChunk`] (shot `s` of
    /// the chunk is the `s`-th ingested frame; observables zeroed) and
    /// resets the builder for the next batch. `chunk_index` and
    /// `shot_offset` are recorded verbatim for the caller's bookkeeping.
    pub fn finish(&mut self, chunk_index: usize, shot_offset: usize) -> SyndromeChunk {
        let mut chunk = SyndromeChunk::zeroed(
            chunk_index,
            shot_offset,
            self.num_frames,
            self.num_detectors,
            self.num_observables,
        );
        let mut shot = 0usize;
        for &segment in &self.segments {
            match segment {
                Segment::Rows { start, count } => {
                    for i in 0..count {
                        let frame = start + i;
                        let row =
                            &self.rows[frame * self.frame_words..(frame + 1) * self.frame_words];
                        let (word, bit) = (shot / 64, shot % 64);
                        for (w, &bits) in row.iter().enumerate() {
                            let mut rest = bits;
                            while rest != 0 {
                                let d = w * 64 + rest.trailing_zeros() as usize;
                                rest &= rest - 1;
                                chunk.detectors.plane_mut(d)[word] |= 1u64 << bit;
                            }
                        }
                        shot += 1;
                    }
                }
                Segment::Block { base, count } => {
                    // Shot-major fast path: each plane word lands with one
                    // shift-OR (two when the block straddles a word
                    // boundary) — no per-frame bit scatter.
                    let (word, bit) = (shot / 64, shot % 64);
                    let planes = &self.blocks[base..base + self.num_detectors];
                    for (d, &bits) in planes.iter().enumerate() {
                        if bits == 0 {
                            continue;
                        }
                        let plane = chunk.detectors.plane_mut(d);
                        plane[word] |= bits << bit;
                        if bit != 0 && bit + count > 64 {
                            plane[word + 1] |= bits >> (64 - bit);
                        }
                    }
                    shot += count;
                }
            }
        }
        debug_assert_eq!(shot, self.num_frames);
        self.rows.clear();
        self.blocks.clear();
        self.segments.clear();
        self.num_frames = 0;
        chunk
    }
}

/// A chunked, thread-shareable detector sampler over one noisy circuit.
///
/// See the [module docs](self) for the determinism contract.
#[derive(Debug, Clone)]
pub struct DetectorChunkSampler<'c> {
    circuit: &'c NoisyCircuit,
    detectors: Vec<Vec<usize>>,
    observables: Vec<Vec<usize>>,
    total_shots: usize,
    seed: u64,
    blocks_per_chunk: usize,
}

impl<'c> DetectorChunkSampler<'c> {
    /// Creates a sampler for `total_shots` shots of `circuit`, cutting the
    /// work into chunks of (at least) `chunk_shots` shots. The chunk size is
    /// rounded up to a whole number of canonical blocks; it affects peak
    /// memory and scheduling granularity only, never the sampled bits.
    ///
    /// # Errors
    ///
    /// Returns the first dangling [`MeasurementRef`] if the circuit's
    /// annotations are inconsistent.
    pub fn new(
        circuit: &'c NoisyCircuit,
        total_shots: usize,
        seed: u64,
        chunk_shots: usize,
    ) -> Result<Self, MeasurementRef> {
        assert!(total_shots > 0, "need at least one shot");
        let (detectors, observables) = circuit.resolve_annotations()?;
        // Clamp to the experiment's block count so arbitrarily large
        // "one big chunk" requests (e.g. `usize::MAX`) cannot overflow the
        // chunk-extent arithmetic.
        let total_blocks = total_shots.div_ceil(CANONICAL_BLOCK_SHOTS);
        let blocks_per_chunk = chunk_shots
            .max(1)
            .div_ceil(CANONICAL_BLOCK_SHOTS)
            .min(total_blocks);
        Ok(DetectorChunkSampler {
            circuit,
            detectors,
            observables,
            total_shots,
            seed,
            blocks_per_chunk,
        })
    }

    /// Total number of shots across all chunks.
    pub fn total_shots(&self) -> usize {
        self.total_shots
    }

    /// Number of detectors per shot.
    pub fn num_detectors(&self) -> usize {
        self.detectors.len()
    }

    /// Number of logical observables per shot.
    pub fn num_observables(&self) -> usize {
        self.observables.len()
    }

    /// Number of canonical sampling blocks.
    pub fn num_blocks(&self) -> usize {
        self.total_shots.div_ceil(CANONICAL_BLOCK_SHOTS)
    }

    /// Number of chunks the shots are grouped into.
    pub fn num_chunks(&self) -> usize {
        self.num_blocks().div_ceil(self.blocks_per_chunk)
    }

    /// Effective shots per full chunk.
    pub fn chunk_shots(&self) -> usize {
        self.blocks_per_chunk * CANONICAL_BLOCK_SHOTS
    }

    /// Number of shots in one specific chunk.
    pub fn shots_in_chunk(&self, chunk_index: usize) -> usize {
        let start = chunk_index * self.chunk_shots();
        assert!(start < self.total_shots, "chunk {chunk_index} out of range");
        (self.total_shots - start).min(self.chunk_shots())
    }

    fn shots_in_block(&self, block: usize) -> usize {
        let start = block * CANONICAL_BLOCK_SHOTS;
        (self.total_shots - start).min(CANONICAL_BLOCK_SHOTS)
    }

    /// Samples one chunk. Chunks are independent: this method can be called
    /// from many threads at once and in any order.
    pub fn sample_chunk(&self, chunk_index: usize) -> SyndromeChunk {
        self.sample_chunk_inner(chunk_index, None)
    }

    /// Samples one chunk while recording per-shot importance-sampling log
    /// weights.
    ///
    /// `fire_log_ratios[k]` is the log-likelihood-ratio increment applied to
    /// a shot whenever the `k`-th noise channel (in op order) fires in it —
    /// see [`crate::BiasedCircuit::fire_log_ratios`]. `log_weights` is
    /// resized to the chunk's shot count; entry `s` holds the accumulated
    /// increments for local shot `s` (global shot `shot_offset + s`), with
    /// the shot-independent base term left to the caller. The sampled chunk
    /// is bit-identical to [`DetectorChunkSampler::sample_chunk`].
    pub fn sample_chunk_weighted(
        &self,
        chunk_index: usize,
        fire_log_ratios: &[f64],
        log_weights: &mut Vec<f64>,
    ) -> SyndromeChunk {
        self.sample_chunk_inner(chunk_index, Some((fire_log_ratios, log_weights)))
    }

    fn sample_chunk_inner(
        &self,
        chunk_index: usize,
        mut weights: Option<(&[f64], &mut Vec<f64>)>,
    ) -> SyndromeChunk {
        let chunk_shots = self.shots_in_chunk(chunk_index);
        let first_block = chunk_index * self.blocks_per_chunk;
        let shot_offset = first_block * CANONICAL_BLOCK_SHOTS;
        if let Some((_, log_weights)) = weights.as_mut() {
            log_weights.clear();
            log_weights.resize(chunk_shots, 0.0);
        }
        let mut chunk = SyndromeChunk::zeroed(
            chunk_index,
            shot_offset,
            chunk_shots,
            self.detectors.len(),
            self.observables.len(),
        );
        let last_block = (first_block + self.blocks_per_chunk).min(self.num_blocks());
        for block in first_block..last_block {
            let block_shots = self.shots_in_block(block);
            let word_offset = (block - first_block) * (CANONICAL_BLOCK_SHOTS / 64);
            let block_words = block_shots.div_ceil(64);
            let mut sampler = FrameSampler::new(
                self.circuit.num_qubits(),
                block_shots,
                block_seed(self.seed, block as u64),
            );
            match weights.as_mut() {
                Some((ratios, log_weights)) => {
                    let local = (block - first_block) * CANONICAL_BLOCK_SHOTS;
                    sampler.run_recording(
                        self.circuit,
                        ratios,
                        &mut log_weights[local..local + block_shots],
                    );
                }
                None => sampler.run(self.circuit),
            }
            let fold = |annotations: &[Vec<usize>], planes: &mut BitPlanes| {
                for (index, measurement_indices) in annotations.iter().enumerate() {
                    let dst = &mut planes.plane_mut(index)[word_offset..word_offset + block_words];
                    for &m in measurement_indices {
                        for (d, &s) in dst.iter_mut().zip(sampler.measurement_plane(m)) {
                            *d ^= s;
                        }
                    }
                }
            };
            fold(&self.detectors, chunk.detectors_mut());
            fold(&self.observables, chunk.observables_mut());
        }
        chunk
    }

    /// A streaming iterator over all chunks in order; peak memory is one
    /// chunk.
    pub fn chunks(&self) -> impl Iterator<Item = SyndromeChunk> + '_ {
        (0..self.num_chunks()).map(|index| self.sample_chunk(index))
    }
}

/// Convenience constructor mirroring [`crate::sample_detectors`]: a chunked
/// sampler whose peak memory is `O(chunk_shots × detectors)` instead of
/// `O(total_shots × measurements)`.
///
/// # Errors
///
/// Returns the first dangling [`MeasurementRef`] if the circuit's
/// annotations are inconsistent.
pub fn sample_detector_chunks(
    circuit: &NoisyCircuit,
    total_shots: usize,
    seed: u64,
    chunk_shots: usize,
) -> Result<DetectorChunkSampler<'_>, MeasurementRef> {
    DetectorChunkSampler::new(circuit, total_shots, seed, chunk_shots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NoiseChannel;
    use qccd_circuit::{Detector, Instruction, LogicalObservable, QubitId};

    fn q(i: u32) -> QubitId {
        QubitId::new(i)
    }

    fn mref(i: u32, occurrence: u32) -> MeasurementRef {
        MeasurementRef::new(q(i), occurrence)
    }

    fn noisy_single_qubit(p: f64) -> NoisyCircuit {
        let mut c = NoisyCircuit::new();
        c.push_gate(Instruction::Reset(q(0)));
        c.push_noise(NoiseChannel::BitFlip { qubit: q(0), p });
        c.push_gate(Instruction::Measure(q(0)));
        c.add_detector(Detector::new(vec![mref(0, 0)]));
        c.add_observable(LogicalObservable::new(vec![mref(0, 0)]));
        c
    }

    #[test]
    fn chunk_partition_covers_all_shots() {
        let circuit = noisy_single_qubit(0.1);
        let total = 3 * CANONICAL_BLOCK_SHOTS + 17;
        let sampler = sample_detector_chunks(&circuit, total, 5, CANONICAL_BLOCK_SHOTS).unwrap();
        assert_eq!(sampler.num_chunks(), 4);
        let mut seen = 0;
        for chunk in sampler.chunks() {
            assert_eq!(chunk.shot_offset(), seen);
            seen += chunk.num_shots();
        }
        assert_eq!(seen, total);
    }

    #[test]
    fn chunking_is_invariant_in_chunk_size() {
        let circuit = noisy_single_qubit(0.2);
        let total = 2 * CANONICAL_BLOCK_SHOTS + 100;
        let fine = sample_detector_chunks(&circuit, total, 9, 1).unwrap();
        let coarse = sample_detector_chunks(&circuit, total, 9, total).unwrap();
        // Concatenating the fine chunks must reproduce the one coarse chunk.
        let mut fired_fine = Vec::new();
        for chunk in fine.chunks() {
            for shot in 0..chunk.num_shots() {
                fired_fine.push(chunk.detector_fired(shot, 0));
            }
        }
        let big = coarse.sample_chunk(0);
        let fired_coarse: Vec<bool> = (0..big.num_shots())
            .map(|s| big.detector_fired(s, 0))
            .collect();
        assert_eq!(fired_fine, fired_coarse);
    }

    #[test]
    fn chunk_statistics_match_probability() {
        let p = 0.25;
        let circuit = noisy_single_qubit(p);
        let total = 40_000;
        let sampler = sample_detector_chunks(&circuit, total, 11, 8192).unwrap();
        let mut fired = 0usize;
        for chunk in sampler.chunks() {
            let mask = chunk.fired_shot_mask();
            fired += mask.iter().map(|w| w.count_ones() as usize).sum::<usize>();
        }
        let rate = fired as f64 / total as f64;
        assert!((rate - p).abs() < 0.01, "rate {rate} vs p {p}");
    }

    #[test]
    fn fired_detectors_into_matches_bit_access() {
        let circuit = noisy_single_qubit(0.5);
        let sampler = sample_detector_chunks(&circuit, 130, 3, 64).unwrap();
        let chunk = sampler.sample_chunk(0);
        let mut fired = Vec::new();
        for shot in 0..chunk.num_shots() {
            chunk.fired_detectors_into(shot, &mut fired);
            assert_eq!(fired.contains(&0), chunk.detector_fired(shot, 0));
            // Observable mirrors the detector for this circuit.
            assert_eq!(
                chunk.observable_flipped(shot, 0),
                chunk.detector_fired(shot, 0)
            );
        }
    }

    #[test]
    fn from_shots_round_trips() {
        let shots = vec![(vec![0, 2], vec![0]), (vec![], vec![]), (vec![1], vec![])];
        let chunk = SyndromeChunk::from_shots(3, 1, &shots);
        assert_eq!(chunk.num_shots(), 3);
        assert!(chunk.detector_fired(0, 0) && chunk.detector_fired(0, 2));
        assert!(!chunk.detector_fired(1, 0));
        assert!(chunk.detector_fired(2, 1));
        assert!(chunk.observable_flipped(0, 0));
        assert!(!chunk.observable_flipped(2, 0));
        assert_eq!(chunk.fired_shot_mask(), vec![0b101]);
    }

    #[test]
    fn word_triage_classifies_counts_exactly() {
        // Lane 0: 1 defect, lane 1: 2, lane 2: 3, lane 3: 5, lane 4: 0,
        // lane 63: 1 (word boundary), lane 64: 9 (second word, saturating).
        let mut shots = vec![
            (vec![0], vec![]),
            (vec![0, 1], vec![]),
            (vec![0, 1, 2], vec![]),
            (vec![0, 1, 2, 3, 4], vec![]),
            (vec![], vec![]),
        ];
        shots.resize(63, (vec![], vec![]));
        shots.push((vec![7], vec![]));
        shots.push(((0..9).collect(), vec![]));
        let chunk = SyndromeChunk::from_shots(10, 0, &shots);
        assert_eq!(chunk.words(), 2);

        let t0 = chunk.word_triage(0, 4);
        assert_eq!(t0.fired, 0b1111 | (1 << 63));
        assert_eq!(t0.single, 0b0001 | (1 << 63));
        assert_eq!(t0.pair, 0b0010, "only the 2-defect lane is a pair");
        assert_eq!(t0.dense, 0b1000, "only the 5-defect lane exceeds cap 4");
        assert_eq!(t0.multi(), 0b1110);
        assert!(!t0.is_quiet() && !t0.is_sparse());

        // Tighter and looser caps move the dense boundary.
        assert_eq!(chunk.word_triage(0, 1).dense, 0b1110);
        assert_eq!(chunk.word_triage(0, 2).dense, 0b1100);
        assert_eq!(chunk.word_triage(0, 5).dense, 0);
        assert!(chunk.word_triage(0, 5).is_sparse());

        // The 9-defect lane saturates the counters but stays dense for every
        // cap, and is never mistaken for a single.
        let t1 = chunk.word_triage(1, 7);
        assert_eq!(t1.fired, 0b1);
        assert_eq!(t1.single, 0);
        assert_eq!(t1.dense, 0b1);
    }

    #[test]
    fn word_triage_into_gathers_hot_planes_in_detector_order() {
        let shots = vec![(vec![2, 5], vec![]), (vec![5], vec![]), (vec![], vec![])];
        let chunk = SyndromeChunk::from_shots(7, 0, &shots);
        let mut hot = vec![(9u32, 9u64)];
        let triage = chunk.word_triage_into(0, 4, &mut hot);
        assert_eq!(hot, vec![(2, 0b001), (5, 0b011)]);
        assert_eq!(triage.fired, 0b011);
        assert_eq!(triage.single, 0b010);
        assert_eq!(triage.pair, 0b001);
        assert_eq!(triage.dense, 0);
    }

    #[test]
    fn word_triage_masks_ragged_tail_lanes() {
        // 65 shots: the final word has one valid lane.
        let mut shots = vec![(vec![0], vec![]); 65];
        shots[64] = (vec![0, 1], vec![]);
        let chunk = SyndromeChunk::from_shots(3, 0, &shots);
        let triages: Vec<WordTriage> = chunk.word_triages(4).collect();
        assert_eq!(triages.len(), 2);
        assert_eq!(triages[0].fired, u64::MAX);
        assert_eq!(triages[0].single, u64::MAX);
        assert_eq!(triages[1].fired, 0b1);
        assert_eq!(triages[1].single, 0);
        assert_eq!(triages[1].pair, 0b1);
        assert_eq!(triages[1].multi(), 0b1);
        assert_eq!(chunk.word_triage(1, 1).dense, 0b1);
    }

    #[test]
    fn zero_shot_chunks_have_no_words() {
        let chunk = SyndromeChunk::from_shots(4, 1, &[]);
        assert_eq!(chunk.num_shots(), 0);
        assert_eq!(chunk.words(), 0);
        assert!(chunk.fired_shot_mask().is_empty());
        assert_eq!(chunk.word_triages(4).count(), 0);
    }

    #[test]
    fn word_triage_of_a_quiet_word_is_quiet() {
        let chunk = SyndromeChunk::zeroed(0, 0, 100, 6, 1);
        for triage in chunk.word_triages(4) {
            assert!(triage.is_quiet());
            assert_eq!(triage, WordTriage::default());
        }
    }

    #[test]
    fn packed_frames_round_trip_through_the_builder() {
        let circuit = noisy_single_qubit(0.5);
        let sampler = sample_detector_chunks(&circuit, 130, 3, 256).unwrap();
        let chunk = sampler.sample_chunk(0);
        let mut builder = SyndromeChunkBuilder::new(chunk.num_detectors(), 1);
        let mut packed = Vec::new();
        for shot in 0..chunk.num_shots() {
            chunk.packed_frame_into(shot, &mut packed);
            builder.push_packed_frame(&packed);
        }
        assert_eq!(builder.pending_frames(), chunk.num_shots());
        let rebuilt = builder.finish(7, 42);
        assert_eq!(rebuilt.chunk_index(), 7);
        assert_eq!(rebuilt.shot_offset(), 42);
        assert_eq!(rebuilt.num_shots(), chunk.num_shots());
        for shot in 0..chunk.num_shots() {
            assert_eq!(
                rebuilt.detector_fired(shot, 0),
                chunk.detector_fired(shot, 0)
            );
            // Observables stay zeroed: online clients don't know the frame.
            assert!(!rebuilt.observable_flipped(shot, 0));
        }
        // The builder is reusable and empty again.
        assert!(builder.is_empty());
        assert_eq!(builder.finish(0, 0).num_shots(), 0);
    }

    #[test]
    fn builder_index_and_packed_frames_agree_across_word_boundaries() {
        // 70 detectors so frames span two words; 70 frames so the chunk's
        // shot planes span two words as well.
        let num_detectors = 70;
        let mut by_index = SyndromeChunkBuilder::new(num_detectors, 2);
        let mut by_packed = SyndromeChunkBuilder::new(num_detectors, 2);
        let mut frames = Vec::new();
        for s in 0..70usize {
            let fired: Vec<usize> = (0..num_detectors)
                .filter(|d| (d * 7 + s) % 9 == 0)
                .collect();
            by_index.push_frame(&fired);
            let mut packed = vec![0u64; 2];
            for &d in &fired {
                packed[d / 64] |= 1 << (d % 64);
            }
            by_packed.push_packed_frame(&packed);
            frames.push(fired);
        }
        let a = by_index.finish(0, 0);
        let b = by_packed.finish(0, 0);
        assert_eq!(a, b);
        let mut fired = Vec::new();
        for (s, expected) in frames.iter().enumerate() {
            a.fired_detectors_into(s, &mut fired);
            assert_eq!(&fired, expected, "shot {s}");
        }
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn builder_rejects_out_of_range_packed_bits() {
        let mut builder = SyndromeChunkBuilder::new(3, 1);
        builder.push_packed_frame(&[0b1000]);
    }

    #[test]
    fn word_blocks_round_trip_through_the_builder() {
        let circuit = noisy_single_qubit(0.5);
        let sampler = sample_detector_chunks(&circuit, 130, 3, 256).unwrap();
        let chunk = sampler.sample_chunk(0);
        let mut builder = SyndromeChunkBuilder::new(chunk.num_detectors(), 1);
        let mut planes = Vec::new();
        for word in 0..chunk.words() {
            chunk.word_block_into(word, &mut planes);
            let count = (chunk.num_shots() - word * 64).min(64);
            builder.push_word_block(&planes, count);
        }
        assert_eq!(builder.pending_frames(), chunk.num_shots());
        let rebuilt = builder.finish(0, 0);
        for shot in 0..chunk.num_shots() {
            for d in 0..chunk.num_detectors() {
                assert_eq!(
                    rebuilt.detector_fired(shot, d),
                    chunk.detector_fired(shot, d),
                    "shot {shot} detector {d}"
                );
            }
        }
    }

    #[test]
    fn word_blocks_and_frames_interleave_across_word_boundaries() {
        // 70 detectors, and a block pushed at shot offset 37 so it
        // straddles the chunk's 64-shot word boundary in `finish`.
        let num_detectors = 70;
        let fired_in = |s: usize| -> Vec<usize> {
            (0..num_detectors)
                .filter(|d| (d * 5 + s).is_multiple_of(11))
                .collect()
        };
        let mut by_frame = SyndromeChunkBuilder::new(num_detectors, 2);
        let mut mixed = SyndromeChunkBuilder::new(num_detectors, 2);
        for s in 0..37 {
            by_frame.push_frame(&fired_in(s));
            mixed.push_frame(&fired_in(s));
        }
        // Shots 37..=87 arrive as one 51-shot word block.
        let mut planes = vec![0u64; num_detectors];
        for s in 37..88 {
            for d in fired_in(s) {
                planes[d] |= 1u64 << (s - 37);
            }
            by_frame.push_frame(&fired_in(s));
        }
        mixed.push_word_block(&planes, 51);
        // And a few more frame-major stragglers after the block.
        for s in 88..100 {
            by_frame.push_frame(&fired_in(s));
            mixed.push_frame(&fired_in(s));
        }
        assert_eq!(mixed.pending_frames(), 100);
        assert_eq!(by_frame.finish(0, 0), mixed.finish(0, 0));
    }

    #[test]
    fn word_block_into_matches_packed_frames() {
        let circuit = noisy_single_qubit(0.4);
        let sampler = sample_detector_chunks(&circuit, 100, 9, 256).unwrap();
        let chunk = sampler.sample_chunk(0);
        let mut planes = Vec::new();
        let mut packed = Vec::new();
        for word in 0..chunk.words() {
            chunk.word_block_into(word, &mut planes);
            assert_eq!(planes.len(), chunk.num_detectors());
            let count = (chunk.num_shots() - word * 64).min(64);
            for s in 0..count {
                let shot = word * 64 + s;
                chunk.packed_frame_into(shot, &mut packed);
                for d in 0..chunk.num_detectors() {
                    let from_block = planes[d] >> s & 1 == 1;
                    let from_frame = packed[d / 64] >> (d % 64) & 1 == 1;
                    assert_eq!(from_block, from_frame, "shot {shot} detector {d}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out-of-range shot bits")]
    fn builder_rejects_out_of_range_block_bits() {
        let mut builder = SyndromeChunkBuilder::new(2, 1);
        builder.push_word_block(&[0b100, 0], 2);
    }

    #[test]
    #[should_panic(expected = "wrong plane word count")]
    fn builder_rejects_wrong_block_plane_count() {
        let mut builder = SyndromeChunkBuilder::new(3, 1);
        builder.push_word_block(&[1, 1], 1);
    }

    #[test]
    fn block_seeds_differ() {
        let a = block_seed(1, 0);
        let b = block_seed(1, 1);
        let c = block_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
