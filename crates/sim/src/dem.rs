//! Detector error model (DEM) extraction.
//!
//! A detector error model lists every *elementary error mechanism* of a noisy
//! circuit — one entry per possible Pauli fault of every noise channel —
//! together with the set of detectors it flips and the logical observables it
//! flips. Decoders work entirely from this model; it plays the same role as
//! Stim's `DetectorErrorModel`.
//!
//! Extraction runs in a single **reverse pass** over the circuit. For every
//! qubit we maintain two *sensitivity sets*: the detectors/observables that
//! an X (resp. Z) error at the current position would flip. Walking
//! backwards:
//!
//! * a Z-basis measurement adds its detectors to the X sensitivity of the
//!   measured qubit and clears the Z sensitivity (post-collapse Z errors are
//!   gauge);
//! * a reset clears both sensitivities (errors before a reset are erased);
//! * a unitary gate transforms sensitivities according to its conjugation
//!   action (`sens_before(P) = sens_after(U P U†)`);
//! * a noise channel emits one error mechanism per elementary Pauli fault,
//!   with the currently-accumulated sensitivity as its symptom set.
//!
//! Mechanisms with identical symptom sets are merged by combining their
//! probabilities (`p ← p₁(1−p₂) + p₂(1−p₁)`).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use qccd_circuit::{Instruction, MeasurementRef};

use crate::{NoiseChannel, NoisyCircuit, NoisyOp};

/// A set of detector / observable indices, packed as a bitset.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
struct SymptomSet {
    words: Vec<u64>,
}

impl SymptomSet {
    fn new(bits: usize) -> Self {
        SymptomSet {
            words: vec![0; bits.div_ceil(64)],
        }
    }

    fn set(&mut self, bit: usize) {
        self.words[bit / 64] |= 1 << (bit % 64);
    }

    fn xor_assign(&mut self, other: &SymptomSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    fn ones(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for (w, &word) in self.words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                out.push(w * 64 + b);
                bits &= bits - 1;
            }
        }
        out
    }

    fn xor_of(a: &SymptomSet, b: &SymptomSet) -> SymptomSet {
        let mut out = a.clone();
        out.xor_assign(b);
        out
    }
}

/// One elementary error mechanism of a detector error model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemError {
    /// Probability that this mechanism fires in one shot.
    pub probability: f64,
    /// Indices of the detectors it flips.
    pub detectors: Vec<u32>,
    /// Indices of the logical observables it flips.
    pub observables: Vec<u32>,
}

impl DemError {
    /// Returns `true` if the mechanism flips at most two detectors, i.e. it
    /// maps directly onto an edge of a matching/union-find decoding graph.
    pub fn is_graphlike(&self) -> bool {
        self.detectors.len() <= 2
    }
}

/// The full detector error model of a noisy circuit.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DetectorErrorModel {
    /// Number of detectors in the circuit.
    pub num_detectors: usize,
    /// Number of logical observables in the circuit.
    pub num_observables: usize,
    /// The elementary error mechanisms (deduplicated by symptom set).
    pub errors: Vec<DemError>,
}

impl DetectorErrorModel {
    /// Extracts the detector error model of a noisy circuit.
    ///
    /// # Errors
    ///
    /// Returns the first dangling [`MeasurementRef`] if a detector or
    /// observable references a measurement that does not exist.
    pub fn from_circuit(circuit: &NoisyCircuit) -> Result<Self, MeasurementRef> {
        let (detectors, observables) = circuit.resolve_annotations()?;
        let num_detectors = detectors.len();
        let num_observables = observables.len();
        let bits = num_detectors + num_observables;

        // measurement index -> symptom bits that include it.
        let num_measurements = circuit.num_measurements();
        let mut meas_symptoms: Vec<SymptomSet> = vec![SymptomSet::new(bits); num_measurements];
        for (d, measurement_indices) in detectors.iter().enumerate() {
            for &m in measurement_indices {
                meas_symptoms[m].set(d);
            }
        }
        for (o, measurement_indices) in observables.iter().enumerate() {
            for &m in measurement_indices {
                meas_symptoms[m].set(num_detectors + o);
            }
        }

        let n = circuit.num_qubits();
        let mut sens_x: Vec<SymptomSet> = vec![SymptomSet::new(bits); n];
        let mut sens_z: Vec<SymptomSet> = vec![SymptomSet::new(bits); n];

        // Accumulate mechanisms keyed by symptom set.
        let mut merged: HashMap<SymptomSet, f64> = HashMap::new();
        let mut record = |symptoms: &SymptomSet, probability: f64| {
            if symptoms.is_empty() || probability <= 0.0 {
                return;
            }
            let entry = merged.entry(symptoms.clone()).or_insert(0.0);
            // p <- p(1-q) + q(1-p): parity of independent events.
            *entry = *entry * (1.0 - probability) + probability * (1.0 - *entry);
        };

        let mut next_measurement = num_measurements;
        for op in circuit.ops().iter().rev() {
            match op {
                NoisyOp::Gate(instruction) => match *instruction {
                    Instruction::Measure(q) => {
                        next_measurement -= 1;
                        sens_x[q.index()].xor_assign(&meas_symptoms[next_measurement]);
                        sens_z[q.index()].clear();
                    }
                    Instruction::MeasureX(q) => {
                        next_measurement -= 1;
                        sens_z[q.index()].xor_assign(&meas_symptoms[next_measurement]);
                        sens_x[q.index()].clear();
                    }
                    Instruction::Reset(q) => {
                        sens_x[q.index()].clear();
                        sens_z[q.index()].clear();
                    }
                    Instruction::I(_)
                    | Instruction::X(_)
                    | Instruction::Y(_)
                    | Instruction::Z(_) => {}
                    Instruction::H(q) => {
                        let q = q.index();
                        std::mem::swap(&mut sens_x[q], &mut sens_z[q]);
                    }
                    Instruction::S(q) | Instruction::Sdg(q) => {
                        // X → Y = X·Z.
                        let q = q.index();
                        let z = sens_z[q].clone();
                        sens_x[q].xor_assign(&z);
                    }
                    Instruction::SqrtX(q) | Instruction::SqrtXdg(q) => {
                        // Z → Y = X·Z.
                        let q = q.index();
                        let x = sens_x[q].clone();
                        sens_z[q].xor_assign(&x);
                    }
                    Instruction::Cnot { control, target } => {
                        let (c, t) = (control.index(), target.index());
                        // X_c → X_c X_t ; Z_t → Z_c Z_t.
                        let xt = sens_x[t].clone();
                        sens_x[c].xor_assign(&xt);
                        let zc = sens_z[c].clone();
                        sens_z[t].xor_assign(&zc);
                    }
                    Instruction::Cz(a, b) => {
                        let (a, b) = (a.index(), b.index());
                        let zb = sens_z[b].clone();
                        sens_x[a].xor_assign(&zb);
                        let za = sens_z[a].clone();
                        sens_x[b].xor_assign(&za);
                    }
                    Instruction::Swap(a, b) => {
                        let (a, b) = (a.index(), b.index());
                        sens_x.swap(a, b);
                        sens_z.swap(a, b);
                    }
                    Instruction::Ms(a, b) => {
                        // X unchanged; Z_a → X_a Z_a X_b ; Z_b → X_a X_b Z_b.
                        let (a, b) = (a.index(), b.index());
                        let xa = sens_x[a].clone();
                        let xb = sens_x[b].clone();
                        sens_z[a].xor_assign(&xa);
                        sens_z[a].xor_assign(&xb);
                        sens_z[b].xor_assign(&xa);
                        sens_z[b].xor_assign(&xb);
                    }
                },
                NoisyOp::Noise(channel) => match *channel {
                    NoiseChannel::BitFlip { qubit, p } => {
                        record(&sens_x[qubit.index()], p);
                    }
                    NoiseChannel::PhaseFlip { qubit, p } => {
                        record(&sens_z[qubit.index()], p);
                    }
                    NoiseChannel::Depolarize1 { qubit, p } => {
                        let q = qubit.index();
                        let each = p / 3.0;
                        record(&sens_x[q], each);
                        record(&sens_z[q], each);
                        record(&SymptomSet::xor_of(&sens_x[q], &sens_z[q]), each);
                    }
                    NoiseChannel::Depolarize2 { a, b, p } => {
                        let (a, b) = (a.index(), b.index());
                        let each = p / 15.0;
                        for code in 1u8..16 {
                            let mut symptoms = SymptomSet::new(bits);
                            if code & 1 != 0 {
                                symptoms.xor_assign(&sens_x[a]);
                            }
                            if code & 2 != 0 {
                                symptoms.xor_assign(&sens_z[a]);
                            }
                            if code & 4 != 0 {
                                symptoms.xor_assign(&sens_x[b]);
                            }
                            if code & 8 != 0 {
                                symptoms.xor_assign(&sens_z[b]);
                            }
                            record(&symptoms, each);
                        }
                    }
                },
            }
        }
        debug_assert_eq!(next_measurement, 0, "every measurement must be visited");

        let mut errors: Vec<DemError> = merged
            .into_iter()
            .map(|(symptoms, probability)| {
                let mut detectors = Vec::new();
                let mut observable_indices = Vec::new();
                for bit in symptoms.ones() {
                    if bit < num_detectors {
                        detectors.push(bit as u32);
                    } else {
                        observable_indices.push((bit - num_detectors) as u32);
                    }
                }
                DemError {
                    probability,
                    detectors,
                    observables: observable_indices,
                }
            })
            .collect();
        errors.sort_by(|a, b| (&a.detectors, &a.observables).cmp(&(&b.detectors, &b.observables)));

        Ok(DetectorErrorModel {
            num_detectors,
            num_observables,
            errors,
        })
    }

    /// Total expected number of mechanism firings per shot.
    pub fn expected_errors_per_shot(&self) -> f64 {
        self.errors.iter().map(|e| e.probability).sum()
    }

    /// Number of mechanisms that are not graph-like (flip more than two
    /// detectors); decoders must decompose these.
    pub fn num_hyperedges(&self) -> usize {
        self.errors.iter().filter(|e| !e.is_graphlike()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qccd_circuit::{Detector, LogicalObservable, QubitId};

    fn q(i: u32) -> QubitId {
        QubitId::new(i)
    }

    fn mref(i: u32, occurrence: u32) -> MeasurementRef {
        MeasurementRef::new(q(i), occurrence)
    }

    #[test]
    fn single_bit_flip_mechanism() {
        let mut circuit = NoisyCircuit::new();
        circuit.push_gate(Instruction::Reset(q(0)));
        circuit.push_noise(NoiseChannel::BitFlip {
            qubit: q(0),
            p: 0.01,
        });
        circuit.push_gate(Instruction::Measure(q(0)));
        circuit.add_detector(Detector::new(vec![mref(0, 0)]));
        circuit.add_observable(LogicalObservable::new(vec![mref(0, 0)]));

        let dem = DetectorErrorModel::from_circuit(&circuit).unwrap();
        assert_eq!(dem.num_detectors, 1);
        assert_eq!(dem.num_observables, 1);
        assert_eq!(dem.errors.len(), 1);
        let e = &dem.errors[0];
        assert!((e.probability - 0.01).abs() < 1e-12);
        assert_eq!(e.detectors, vec![0]);
        assert_eq!(e.observables, vec![0]);
    }

    #[test]
    fn z_error_before_z_measurement_is_invisible() {
        let mut circuit = NoisyCircuit::new();
        circuit.push_gate(Instruction::Reset(q(0)));
        circuit.push_noise(NoiseChannel::PhaseFlip {
            qubit: q(0),
            p: 0.01,
        });
        circuit.push_gate(Instruction::Measure(q(0)));
        circuit.add_detector(Detector::new(vec![mref(0, 0)]));
        let dem = DetectorErrorModel::from_circuit(&circuit).unwrap();
        assert!(dem.errors.is_empty());
    }

    #[test]
    fn identical_mechanisms_merge_probabilities() {
        let mut circuit = NoisyCircuit::new();
        circuit.push_gate(Instruction::Reset(q(0)));
        circuit.push_noise(NoiseChannel::BitFlip {
            qubit: q(0),
            p: 0.1,
        });
        circuit.push_noise(NoiseChannel::BitFlip {
            qubit: q(0),
            p: 0.1,
        });
        circuit.push_gate(Instruction::Measure(q(0)));
        circuit.add_detector(Detector::new(vec![mref(0, 0)]));
        let dem = DetectorErrorModel::from_circuit(&circuit).unwrap();
        assert_eq!(dem.errors.len(), 1);
        // Parity of two independent 0.1 events: 0.1·0.9 + 0.9·0.1 = 0.18.
        assert!((dem.errors[0].probability - 0.18).abs() < 1e-12);
    }

    #[test]
    fn cnot_spreads_error_to_both_measurements() {
        // X error on the control before a CNOT flips both subsequent
        // measurements.
        let mut circuit = NoisyCircuit::new();
        circuit.push_gate(Instruction::Reset(q(0)));
        circuit.push_gate(Instruction::Reset(q(1)));
        circuit.push_noise(NoiseChannel::BitFlip {
            qubit: q(0),
            p: 0.02,
        });
        circuit.push_gate(Instruction::Cnot {
            control: q(0),
            target: q(1),
        });
        circuit.push_gate(Instruction::Measure(q(0)));
        circuit.push_gate(Instruction::Measure(q(1)));
        circuit.add_detector(Detector::new(vec![mref(0, 0)]));
        circuit.add_detector(Detector::new(vec![mref(1, 0)]));
        let dem = DetectorErrorModel::from_circuit(&circuit).unwrap();
        assert_eq!(dem.errors.len(), 1);
        assert_eq!(dem.errors[0].detectors, vec![0, 1]);
    }

    #[test]
    fn depolarize_before_measurement_flips_with_two_thirds_weight() {
        let mut circuit = NoisyCircuit::new();
        circuit.push_gate(Instruction::Reset(q(0)));
        circuit.push_noise(NoiseChannel::Depolarize1 {
            qubit: q(0),
            p: 0.3,
        });
        circuit.push_gate(Instruction::Measure(q(0)));
        circuit.add_detector(Detector::new(vec![mref(0, 0)]));
        let dem = DetectorErrorModel::from_circuit(&circuit).unwrap();
        // X and Y mechanisms share the same symptom set and merge:
        // 0.1 ⊕ 0.1 = 0.18.
        assert_eq!(dem.errors.len(), 1);
        assert!((dem.errors[0].probability - 0.18).abs() < 1e-12);
    }

    #[test]
    fn errors_after_reset_are_erased() {
        let mut circuit = NoisyCircuit::new();
        circuit.push_noise(NoiseChannel::BitFlip {
            qubit: q(0),
            p: 0.5,
        });
        circuit.push_gate(Instruction::Reset(q(0)));
        circuit.push_gate(Instruction::Measure(q(0)));
        circuit.add_detector(Detector::new(vec![mref(0, 0)]));
        let dem = DetectorErrorModel::from_circuit(&circuit).unwrap();
        assert!(dem.errors.is_empty());
    }

    #[test]
    fn repeated_measurement_detector_cancels_early_error() {
        // An error before both measurements of the same qubit flips both, so
        // a detector comparing them does not fire; an error between them
        // flips only the second.
        let mut circuit = NoisyCircuit::new();
        circuit.push_gate(Instruction::Reset(q(0)));
        circuit.push_noise(NoiseChannel::BitFlip {
            qubit: q(0),
            p: 0.25,
        });
        circuit.push_gate(Instruction::Measure(q(0)));
        circuit.push_noise(NoiseChannel::BitFlip {
            qubit: q(0),
            p: 0.125,
        });
        circuit.push_gate(Instruction::Measure(q(0)));
        circuit.add_detector(Detector::new(vec![mref(0, 0), mref(0, 1)]));
        let dem = DetectorErrorModel::from_circuit(&circuit).unwrap();
        assert_eq!(dem.errors.len(), 1);
        assert!((dem.errors[0].probability - 0.125).abs() < 1e-12);
    }

    #[test]
    fn two_qubit_depolarizing_produces_multiple_mechanisms() {
        let mut circuit = NoisyCircuit::new();
        circuit.push_gate(Instruction::Reset(q(0)));
        circuit.push_gate(Instruction::Reset(q(1)));
        circuit.push_noise(NoiseChannel::Depolarize2 {
            a: q(0),
            b: q(1),
            p: 0.15,
        });
        circuit.push_gate(Instruction::Measure(q(0)));
        circuit.push_gate(Instruction::Measure(q(1)));
        circuit.add_detector(Detector::new(vec![mref(0, 0)]));
        circuit.add_detector(Detector::new(vec![mref(1, 0)]));
        let dem = DetectorErrorModel::from_circuit(&circuit).unwrap();
        // Symptom sets: {D0}, {D1}, {D0,D1} — Z components are invisible.
        assert_eq!(dem.errors.len(), 3);
        let total: f64 = dem.errors.iter().map(|e| e.probability).sum();
        assert!(total > 0.0 && total < 0.15);
        assert_eq!(dem.num_hyperedges(), 0);
    }

    #[test]
    fn hyperedge_detection() {
        let e = DemError {
            probability: 0.1,
            detectors: vec![0, 1, 2],
            observables: vec![],
        };
        assert!(!e.is_graphlike());
        let dem = DetectorErrorModel {
            num_detectors: 3,
            num_observables: 0,
            errors: vec![e],
        };
        assert_eq!(dem.num_hyperedges(), 1);
    }
}
