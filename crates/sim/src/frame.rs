//! Bit-packed Pauli-frame sampler.
//!
//! The frame sampler is the workhorse used to estimate logical error rates:
//! it simulates many shots of a noisy stabilizer circuit simultaneously by
//! tracking, for every shot, only the Pauli *frame* — the difference between
//! the noisy execution and a noiseless reference execution. Because detector
//! parities are deterministic (even) in the reference execution, a detector
//! fires in a shot exactly when the XOR of its measurements' frame-induced
//! flips is odd. The same reasoning yields logical-observable flips.
//!
//! The frame of 64 shots is packed into each `u64` word, so a circuit with
//! `G` operations and `S` shots costs `O(G · S / 64)` word operations.
//!
//! Frame update rules (signs are irrelevant for frames):
//!
//! * Clifford gates conjugate the frame.
//! * `M` (Z-basis measurement): the recorded outcome is flipped when the
//!   frame has an X component on the measured qubit; afterwards the Z
//!   component is re-randomised (it becomes gauge once the qubit has
//!   collapsed).
//! * `MX`: dual of `M` (Z component flips the outcome, X is re-randomised).
//! * `R` (reset): the X component is cleared (the qubit is freshly prepared)
//!   and the Z component is re-randomised.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use qccd_circuit::{Instruction, QubitId};

use crate::{BitPlanes, NoiseChannel, NoisyCircuit, NoisyOp};

/// A batch Pauli-frame simulator over `num_shots` parallel shots.
#[derive(Debug, Clone)]
pub struct FrameSampler {
    num_qubits: usize,
    num_shots: usize,
    words: usize,
    /// X component bit-planes, indexed `qubit * words + word`.
    x: Vec<u64>,
    /// Z component bit-planes, indexed `qubit * words + word`.
    z: Vec<u64>,
    /// Frame-induced measurement flips, one bit-plane per measurement in
    /// execution order, stored in a flat arena.
    measurement_flips: BitPlanes,
    rng: ChaCha8Rng,
}

impl FrameSampler {
    /// Creates a sampler for `num_qubits` qubits and `num_shots` parallel
    /// shots, with identity frames.
    pub fn new(num_qubits: usize, num_shots: usize, seed: u64) -> Self {
        assert!(num_shots > 0, "need at least one shot");
        let words = num_shots.div_ceil(64);
        FrameSampler {
            num_qubits,
            num_shots,
            words,
            x: vec![0; num_qubits * words],
            z: vec![0; num_qubits * words],
            measurement_flips: BitPlanes::new(words),
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Number of parallel shots.
    pub fn num_shots(&self) -> usize {
        self.num_shots
    }

    /// Number of qubits tracked by the sampler.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of measurements processed so far.
    pub fn num_measurements(&self) -> usize {
        self.measurement_flips.num_planes()
    }

    /// The recorded flip bit-plane arena, one plane per measurement in
    /// execution order.
    pub fn measurement_flips(&self) -> &BitPlanes {
        &self.measurement_flips
    }

    /// The flip bit-plane of one measurement (by execution order).
    pub fn measurement_plane(&self, measurement: usize) -> &[u64] {
        self.measurement_flips.plane(measurement)
    }

    /// Returns whether the frame currently has an X component on `qubit` in
    /// `shot` (used by tests).
    pub fn frame_x(&self, qubit: QubitId, shot: usize) -> bool {
        let range = self.plane(qubit.index());
        (self.x[range][shot / 64] >> (shot % 64)) & 1 == 1
    }

    /// Returns whether the frame currently has a Z component on `qubit` in
    /// `shot` (used by tests).
    pub fn frame_z(&self, qubit: QubitId, shot: usize) -> bool {
        let range = self.plane(qubit.index());
        (self.z[range][shot / 64] >> (shot % 64)) & 1 == 1
    }

    fn plane(&self, qubit: usize) -> std::ops::Range<usize> {
        let start = qubit * self.words;
        start..start + self.words
    }

    /// Processes one operation of a noisy circuit.
    pub fn apply(&mut self, op: &NoisyOp) {
        match op {
            NoisyOp::Gate(instruction) => self.apply_gate(instruction),
            NoisyOp::Noise(channel) => self.apply_noise(channel),
        }
    }

    /// Runs an entire noisy circuit.
    pub fn run(&mut self, circuit: &NoisyCircuit) {
        for op in circuit.ops() {
            self.apply(op);
        }
    }

    /// Runs an entire noisy circuit while accumulating per-shot log
    /// likelihood-ratio weights for importance sampling.
    ///
    /// `fire_log_ratios[k]` is the log-likelihood-ratio increment applied to
    /// a shot whenever the `k`-th noise channel (in op order) fires in it;
    /// `log_weights[shot]` accumulates the per-shot sum. The caller is
    /// responsible for adding the shot-independent base term. The RNG stream
    /// is consumed exactly as in [`FrameSampler::run`], so the sampled
    /// syndromes are bit-identical to an unrecorded run of the same circuit.
    pub fn run_recording(
        &mut self,
        circuit: &NoisyCircuit,
        fire_log_ratios: &[f64],
        log_weights: &mut [f64],
    ) {
        assert_eq!(
            log_weights.len(),
            self.num_shots,
            "one log-weight slot per shot"
        );
        let mut channel = 0usize;
        for op in circuit.ops() {
            match op {
                NoisyOp::Gate(instruction) => self.apply_gate(instruction),
                NoisyOp::Noise(noise) => {
                    let ratio = fire_log_ratios[channel];
                    channel += 1;
                    self.apply_noise_recording(noise, |shot| log_weights[shot] += ratio);
                }
            }
        }
        assert_eq!(
            channel,
            fire_log_ratios.len(),
            "one log-ratio per noise channel"
        );
    }

    /// Applies a Clifford gate / measurement / reset to every shot's frame.
    pub fn apply_gate(&mut self, instruction: &Instruction) {
        use Instruction::*;
        match *instruction {
            // Pauli gates and the identity only change frame signs, which
            // frames do not track.
            I(_) | X(_) | Y(_) | Z(_) => {}
            H(q) => {
                let p = self.plane(q.index());
                for w in 0..self.words {
                    let xv = self.x[p.start + w];
                    let zv = self.z[p.start + w];
                    self.x[p.start + w] = zv;
                    self.z[p.start + w] = xv;
                }
            }
            S(q) | Sdg(q) => {
                let p = self.plane(q.index());
                for w in 0..self.words {
                    self.z[p.start + w] ^= self.x[p.start + w];
                }
            }
            SqrtX(q) | SqrtXdg(q) => {
                let p = self.plane(q.index());
                for w in 0..self.words {
                    self.x[p.start + w] ^= self.z[p.start + w];
                }
            }
            Cnot { control, target } => {
                let pc = control.index() * self.words;
                let pt = target.index() * self.words;
                for w in 0..self.words {
                    self.x[pt + w] ^= self.x[pc + w];
                    self.z[pc + w] ^= self.z[pt + w];
                }
            }
            Cz(a, b) => {
                let pa = a.index() * self.words;
                let pb = b.index() * self.words;
                for w in 0..self.words {
                    self.z[pa + w] ^= self.x[pb + w];
                    self.z[pb + w] ^= self.x[pa + w];
                }
            }
            Swap(a, b) => {
                let pa = a.index() * self.words;
                let pb = b.index() * self.words;
                for w in 0..self.words {
                    self.x.swap(pa + w, pb + w);
                    self.z.swap(pa + w, pb + w);
                }
            }
            Ms(a, b) => {
                // X components are preserved; a Z component on either qubit
                // injects X on both (Z_a → Y_a X_b, Z_b → X_a Y_b).
                let pa = a.index() * self.words;
                let pb = b.index() * self.words;
                for w in 0..self.words {
                    let za = self.z[pa + w];
                    let zb = self.z[pb + w];
                    self.x[pa + w] ^= za ^ zb;
                    self.x[pb + w] ^= za ^ zb;
                }
            }
            Measure(q) => {
                // Snapshot the X plane straight into the arena: one memcpy,
                // no intermediate `Vec` allocation.
                let p = self.plane(q.index());
                self.measurement_flips.push_plane(&self.x[p]);
                // The Z component becomes gauge after collapse: re-randomise.
                for w in 0..self.words {
                    self.z[q.index() * self.words + w] = self.rng.gen();
                }
            }
            MeasureX(q) => {
                let p = self.plane(q.index());
                self.measurement_flips.push_plane(&self.z[p]);
                for w in 0..self.words {
                    self.x[q.index() * self.words + w] = self.rng.gen();
                }
            }
            Reset(q) => {
                let base = q.index() * self.words;
                for w in 0..self.words {
                    self.x[base + w] = 0;
                    self.z[base + w] = self.rng.gen();
                }
            }
        }
    }

    /// Applies a stochastic noise channel to every shot's frame.
    pub fn apply_noise(&mut self, channel: &NoiseChannel) {
        self.apply_noise_recording(channel, |_| {});
    }

    /// Applies a stochastic noise channel, invoking `on_fire(shot)` once for
    /// every shot in which the channel fires.
    ///
    /// The callback never touches the sampler's RNG, so the random stream —
    /// and therefore every sampled frame — is bit-identical to
    /// [`FrameSampler::apply_noise`] on the same channel.
    pub fn apply_noise_recording(
        &mut self,
        channel: &NoiseChannel,
        mut on_fire: impl FnMut(usize),
    ) {
        match *channel {
            NoiseChannel::BitFlip { qubit, p } => {
                let shots = self.sample_shots(p);
                for shot in shots {
                    self.flip_x(qubit.index(), shot);
                    on_fire(shot);
                }
            }
            NoiseChannel::PhaseFlip { qubit, p } => {
                let shots = self.sample_shots(p);
                for shot in shots {
                    self.flip_z(qubit.index(), shot);
                    on_fire(shot);
                }
            }
            NoiseChannel::Depolarize1 { qubit, p } => {
                let shots = self.sample_shots(p);
                for shot in shots {
                    // Choose X, Y or Z uniformly.
                    match self.rng.gen_range(0..3) {
                        0 => self.flip_x(qubit.index(), shot),
                        1 => {
                            self.flip_x(qubit.index(), shot);
                            self.flip_z(qubit.index(), shot);
                        }
                        _ => self.flip_z(qubit.index(), shot),
                    }
                    on_fire(shot);
                }
            }
            NoiseChannel::Depolarize2 { a, b, p } => {
                let shots = self.sample_shots(p);
                for shot in shots {
                    // Choose one of the 15 non-identity two-qubit Paulis.
                    let code = self.rng.gen_range(1..16u8);
                    let (xa, za) = (code & 1 != 0, code & 2 != 0);
                    let (xb, zb) = (code & 4 != 0, code & 8 != 0);
                    if xa {
                        self.flip_x(a.index(), shot);
                    }
                    if za {
                        self.flip_z(a.index(), shot);
                    }
                    if xb {
                        self.flip_x(b.index(), shot);
                    }
                    if zb {
                        self.flip_z(b.index(), shot);
                    }
                    on_fire(shot);
                }
            }
        }
    }

    fn flip_x(&mut self, qubit: usize, shot: usize) {
        self.x[qubit * self.words + shot / 64] ^= 1u64 << (shot % 64);
    }

    fn flip_z(&mut self, qubit: usize, shot: usize) {
        self.z[qubit * self.words + shot / 64] ^= 1u64 << (shot % 64);
    }

    /// Samples the subset of shots in which an event with probability `p`
    /// occurs, using geometric skipping so the cost is proportional to the
    /// number of occurrences rather than the number of shots.
    fn sample_shots(&mut self, p: f64) -> Vec<usize> {
        let mut selected = Vec::new();
        if p <= 0.0 {
            return selected;
        }
        if p >= 1.0 {
            selected.extend(0..self.num_shots);
            return selected;
        }
        let denom = (1.0 - p).ln();
        let mut index: f64 = -1.0;
        loop {
            let u: f64 = self.rng.gen::<f64>();
            // Geometric gap; `1 - u` avoids ln(0).
            let gap = ((1.0 - u).ln() / denom).floor();
            index += 1.0 + gap;
            if !index.is_finite() || index >= self.num_shots as f64 {
                break;
            }
            selected.push(index as usize);
        }
        selected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: u32) -> QubitId {
        QubitId::new(i)
    }

    #[test]
    fn deterministic_x_error_flips_measurement() {
        let mut sampler = FrameSampler::new(1, 130, 1);
        sampler.apply_noise(&NoiseChannel::BitFlip {
            qubit: q(0),
            p: 1.0,
        });
        sampler.apply_gate(&Instruction::Measure(q(0)));
        let flips = sampler.measurement_plane(0);
        // Every shot flips.
        for shot in 0..130 {
            assert_eq!((flips[shot / 64] >> (shot % 64)) & 1, 1);
        }
    }

    #[test]
    fn z_error_does_not_flip_z_measurement() {
        let mut sampler = FrameSampler::new(1, 64, 2);
        sampler.apply_noise(&NoiseChannel::PhaseFlip {
            qubit: q(0),
            p: 1.0,
        });
        sampler.apply_gate(&Instruction::Measure(q(0)));
        assert!(sampler.measurement_plane(0).iter().all(|&w| w == 0));
    }

    #[test]
    fn hadamard_converts_z_error_to_x_error() {
        let mut sampler = FrameSampler::new(1, 64, 3);
        sampler.apply_noise(&NoiseChannel::PhaseFlip {
            qubit: q(0),
            p: 1.0,
        });
        sampler.apply_gate(&Instruction::H(q(0)));
        sampler.apply_gate(&Instruction::Measure(q(0)));
        assert!(sampler
            .measurement_plane(0)
            .iter()
            .enumerate()
            .all(|(w, &word)| {
                let bits = if w == 0 { 64 } else { 0 };
                (0..bits).all(|b| (word >> b) & 1 == 1)
            }));
    }

    #[test]
    fn cnot_copies_x_error_to_target() {
        let mut sampler = FrameSampler::new(2, 64, 4);
        sampler.apply_noise(&NoiseChannel::BitFlip {
            qubit: q(0),
            p: 1.0,
        });
        sampler.apply_gate(&Instruction::Cnot {
            control: q(0),
            target: q(1),
        });
        sampler.apply_gate(&Instruction::Measure(q(1)));
        assert!(sampler
            .measurement_plane(0)
            .iter()
            .all(|&w| w == !0u64 || w == 0));
        assert!(sampler.frame_x(q(0), 0));
        assert!(sampler.frame_x(q(1), 0));
    }

    #[test]
    fn reset_clears_x_component() {
        let mut sampler = FrameSampler::new(1, 64, 5);
        sampler.apply_noise(&NoiseChannel::BitFlip {
            qubit: q(0),
            p: 1.0,
        });
        sampler.apply_gate(&Instruction::Reset(q(0)));
        sampler.apply_gate(&Instruction::Measure(q(0)));
        assert!(sampler.measurement_plane(0).iter().all(|&w| w == 0));
    }

    #[test]
    fn ms_gate_propagates_z_to_both_x_components() {
        let mut sampler = FrameSampler::new(2, 64, 6);
        sampler.apply_noise(&NoiseChannel::PhaseFlip {
            qubit: q(0),
            p: 1.0,
        });
        sampler.apply_gate(&Instruction::Ms(q(0), q(1)));
        assert!(sampler.frame_x(q(0), 7));
        assert!(sampler.frame_x(q(1), 7));
        assert!(
            sampler.frame_z(q(0), 7),
            "original Z component survives as Y"
        );
    }

    #[test]
    fn bit_flip_probability_statistics() {
        let shots = 20_000;
        let mut sampler = FrameSampler::new(1, shots, 7);
        sampler.apply_noise(&NoiseChannel::BitFlip {
            qubit: q(0),
            p: 0.1,
        });
        sampler.apply_gate(&Instruction::Measure(q(0)));
        let count: u32 = sampler
            .measurement_plane(0)
            .iter()
            .map(|w| w.count_ones())
            .sum();
        let rate = count as f64 / shots as f64;
        assert!(
            (rate - 0.1).abs() < 0.01,
            "empirical flip rate {rate} too far from 0.1"
        );
    }

    #[test]
    fn depolarize1_flips_z_measurement_two_thirds_of_the_time() {
        let shots = 30_000;
        let mut sampler = FrameSampler::new(1, shots, 8);
        sampler.apply_noise(&NoiseChannel::Depolarize1 {
            qubit: q(0),
            p: 0.3,
        });
        sampler.apply_gate(&Instruction::Measure(q(0)));
        let count: u32 = sampler
            .measurement_plane(0)
            .iter()
            .map(|w| w.count_ones())
            .sum();
        let rate = count as f64 / shots as f64;
        // Only X and Y components (2/3 of errors) flip a Z measurement.
        assert!(
            (rate - 0.2).abs() < 0.015,
            "empirical flip rate {rate} too far from 0.2"
        );
    }

    #[test]
    fn sample_shots_edge_cases() {
        let mut sampler = FrameSampler::new(1, 100, 9);
        assert!(sampler.sample_shots(0.0).is_empty());
        assert_eq!(sampler.sample_shots(1.0).len(), 100);
        let some = sampler.sample_shots(0.5);
        assert!(!some.is_empty() && some.len() < 100);
        // Indices are strictly increasing and in range.
        assert!(some.windows(2).all(|w| w[0] < w[1]));
        assert!(some.iter().all(|&s| s < 100));
    }
}
