//! # qccd-sim
//!
//! Stabilizer circuit simulation for the QCCD surface-code architecture
//! study. This crate replaces the role Stim plays in the paper (§6.4): it
//! samples detector events and logical-observable flips of noisy Clifford
//! circuits so that logical error rates can be estimated.
//!
//! Components:
//!
//! * [`NoisyCircuit`] — Clifford operations interleaved with Pauli noise
//!   channels, plus detector / logical-observable annotations;
//! * [`TableauSimulator`] — an exact Aaronson–Gottesman CHP simulator, used
//!   as the reference implementation and to verify detector determinism;
//! * [`FrameSampler`] — a bit-packed Pauli-frame sampler that simulates tens
//!   of thousands of shots in parallel;
//! * [`DetectorErrorModel`] — per-mechanism symptom extraction (which
//!   detectors and observables each elementary fault flips), consumed by the
//!   decoders in `qccd-decoder`;
//! * [`sample_detectors`] / [`verify_detectors`] — the high-level API;
//! * [`sample_detector_chunks`] / [`DetectorChunkSampler`] — the chunked,
//!   streaming API: peak memory bounded by the chunk size, deterministic
//!   per-block seeds (bit-identical outcomes for a fixed `(shots, seed)`
//!   regardless of chunk size or thread count), `&self` sampling so chunks
//!   can be produced from many threads at once. All bit-planes live in flat
//!   [`BitPlanes`] arenas.
//!
//! # Example
//!
//! ```
//! use qccd_circuit::{Detector, Instruction, LogicalObservable, MeasurementRef, QubitId};
//! use qccd_sim::{sample_detectors, verify_detectors, NoiseChannel, NoisyCircuit};
//!
//! // A single qubit that is reset, possibly flipped, and measured.
//! let q = QubitId::new(0);
//! let mut circuit = NoisyCircuit::new();
//! circuit.push_gate(Instruction::Reset(q));
//! circuit.push_noise(NoiseChannel::BitFlip { qubit: q, p: 0.25 });
//! circuit.push_gate(Instruction::Measure(q));
//! circuit.add_detector(Detector::new(vec![MeasurementRef::new(q, 0)]));
//! circuit.add_observable(LogicalObservable::new(vec![MeasurementRef::new(q, 0)]));
//!
//! verify_detectors(&circuit, &[0, 1])?;
//! let samples = sample_detectors(&circuit, 4096, 7).expect("annotations are valid");
//! let rate = samples.detector_fire_counts()[0] as f64 / samples.num_shots() as f64;
//! assert!((rate - 0.25).abs() < 0.05);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bitplane;
mod chunk;
mod dem;
mod frame;
mod noisy_circuit;
mod rare_event;
mod sampler;
mod tableau;

pub use bitplane::BitPlanes;
pub use chunk::{
    block_seed, csa_accumulate, sample_detector_chunks, DetectorChunkSampler, SyndromeChunk,
    SyndromeChunkBuilder, WordTriage, CANONICAL_BLOCK_SHOTS, MAX_TRIAGE_CAP,
};
pub use dem::{DemError, DetectorErrorModel};
pub use frame::FrameSampler;
pub use noisy_circuit::{NoiseChannel, NoisyCircuit, NoisyOp, ResolvedAnnotations};
pub use rare_event::{bias_circuit, BiasedCircuit, MAX_BIASED_PROBABILITY};
pub use sampler::{sample_detectors, verify_detectors, DetectorSamples, VerificationError};
pub use tableau::TableauSimulator;
