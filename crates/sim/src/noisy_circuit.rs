//! Noisy stabilizer circuits.
//!
//! A [`NoisyCircuit`] is the simulator-facing circuit format: an ordered
//! stream of Clifford operations interleaved with stochastic Pauli noise
//! channels, plus detector and logical-observable annotations. It plays the
//! role Stim's circuit format plays in the paper's toolflow (§6.4): the
//! `qccd-noise` crate lowers a compiled, scheduled QCCD program into a
//! `NoisyCircuit`, and this crate samples it.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use qccd_circuit::{Circuit, Detector, Instruction, LogicalObservable, MeasurementRef, QubitId};

/// Resolved annotation lists: per-detector and per-observable measurement
/// indices, as returned by [`NoisyCircuit::resolve_annotations`].
pub type ResolvedAnnotations = (Vec<Vec<usize>>, Vec<Vec<usize>>);

/// A stochastic Pauli noise channel inserted at a specific point in the
/// circuit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NoiseChannel {
    /// Single-qubit depolarising channel: X, Y or Z each with probability
    /// `p / 3`.
    Depolarize1 {
        /// Affected qubit.
        qubit: QubitId,
        /// Total error probability.
        p: f64,
    },
    /// Two-qubit depolarising channel: each of the 15 non-identity two-qubit
    /// Paulis with probability `p / 15`.
    Depolarize2 {
        /// First qubit.
        a: QubitId,
        /// Second qubit.
        b: QubitId,
        /// Total error probability.
        p: f64,
    },
    /// Bit-flip (X) channel with probability `p`; used for imperfect reset
    /// and measurement (error channels e4 and e5 of §5.1).
    BitFlip {
        /// Affected qubit.
        qubit: QubitId,
        /// Error probability.
        p: f64,
    },
    /// Phase-flip (Z) channel with probability `p`; used for idling /
    /// reconfiguration dephasing (error channel e1 of §5.1).
    PhaseFlip {
        /// Affected qubit.
        qubit: QubitId,
        /// Error probability.
        p: f64,
    },
}

impl NoiseChannel {
    /// The qubits this channel can corrupt.
    pub fn qubits(&self) -> Vec<QubitId> {
        match *self {
            NoiseChannel::Depolarize1 { qubit, .. }
            | NoiseChannel::BitFlip { qubit, .. }
            | NoiseChannel::PhaseFlip { qubit, .. } => vec![qubit],
            NoiseChannel::Depolarize2 { a, b, .. } => vec![a, b],
        }
    }

    /// The total probability that *some* error happens.
    pub fn total_probability(&self) -> f64 {
        match *self {
            NoiseChannel::Depolarize1 { p, .. }
            | NoiseChannel::Depolarize2 { p, .. }
            | NoiseChannel::BitFlip { p, .. }
            | NoiseChannel::PhaseFlip { p, .. } => p,
        }
    }

    /// Returns `true` if the channel can never fire.
    pub fn is_trivial(&self) -> bool {
        self.total_probability() <= 0.0
    }
}

impl fmt::Display for NoiseChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NoiseChannel::Depolarize1 { qubit, p } => write!(f, "DEPOLARIZE1({p}) {qubit}"),
            NoiseChannel::Depolarize2 { a, b, p } => write!(f, "DEPOLARIZE2({p}) {a} {b}"),
            NoiseChannel::BitFlip { qubit, p } => write!(f, "X_ERROR({p}) {qubit}"),
            NoiseChannel::PhaseFlip { qubit, p } => write!(f, "Z_ERROR({p}) {qubit}"),
        }
    }
}

/// One element of a noisy circuit: a quantum operation or a noise channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NoisyOp {
    /// A Clifford gate, measurement or reset.
    Gate(Instruction),
    /// A stochastic Pauli noise channel.
    Noise(NoiseChannel),
}

/// A stabilizer circuit with noise channels and QEC annotations, ready for
/// sampling.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NoisyCircuit {
    ops: Vec<NoisyOp>,
    num_qubits: usize,
    num_measurements: usize,
    detectors: Vec<Detector>,
    observables: Vec<LogicalObservable>,
}

impl NoisyCircuit {
    /// Creates an empty noisy circuit.
    pub fn new() -> Self {
        NoisyCircuit::default()
    }

    /// Builds a noiseless `NoisyCircuit` from an annotated Clifford circuit,
    /// copying its detectors and observables.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let mut noisy = NoisyCircuit::new();
        noisy.pad_qubits(circuit.num_qubits());
        for instruction in circuit.iter() {
            noisy.push_gate(*instruction);
        }
        for detector in circuit.detectors() {
            noisy.add_detector(detector.clone());
        }
        for observable in circuit.observables() {
            noisy.add_observable(observable.clone());
        }
        noisy
    }

    /// Appends a quantum operation.
    pub fn push_gate(&mut self, instruction: Instruction) {
        for q in instruction.qubits() {
            self.num_qubits = self.num_qubits.max(q.index() + 1);
        }
        if instruction.is_measurement() {
            self.num_measurements += 1;
        }
        self.ops.push(NoisyOp::Gate(instruction));
    }

    /// Appends a noise channel. Channels with zero probability are dropped.
    pub fn push_noise(&mut self, channel: NoiseChannel) {
        if channel.is_trivial() {
            return;
        }
        for q in channel.qubits() {
            self.num_qubits = self.num_qubits.max(q.index() + 1);
        }
        self.ops.push(NoisyOp::Noise(channel));
    }

    /// Adds a detector annotation (parity of measurement outcomes that is
    /// even in the absence of noise).
    pub fn add_detector(&mut self, detector: Detector) {
        self.detectors.push(detector);
    }

    /// Adds a logical observable annotation.
    pub fn add_observable(&mut self, observable: LogicalObservable) {
        self.observables.push(observable);
    }

    /// Ensures the circuit reports at least `n` qubits.
    pub fn pad_qubits(&mut self, n: usize) {
        self.num_qubits = self.num_qubits.max(n);
    }

    /// The operation stream in execution order.
    pub fn ops(&self) -> &[NoisyOp] {
        &self.ops
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of measurement operations.
    pub fn num_measurements(&self) -> usize {
        self.num_measurements
    }

    /// Number of noise channels.
    pub fn num_noise_channels(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, NoisyOp::Noise(_)))
            .count()
    }

    /// The detector annotations.
    pub fn detectors(&self) -> &[Detector] {
        &self.detectors
    }

    /// The logical observable annotations.
    pub fn observables(&self) -> &[LogicalObservable] {
        &self.observables
    }

    /// Maps every measurement reference to its global measurement index in
    /// execution order.
    pub fn measurement_index_map(&self) -> HashMap<MeasurementRef, usize> {
        let mut per_qubit: HashMap<QubitId, u32> = HashMap::new();
        let mut map = HashMap::new();
        let mut index = 0usize;
        for op in &self.ops {
            if let NoisyOp::Gate(instruction) = op {
                if instruction.is_measurement() {
                    let qubit = instruction.qubits()[0];
                    let occurrence = per_qubit.entry(qubit).or_insert(0);
                    map.insert(MeasurementRef::new(qubit, *occurrence), index);
                    *occurrence += 1;
                    index += 1;
                }
            }
        }
        map
    }

    /// Resolves detectors and observables into global measurement indices.
    ///
    /// Returns `(detectors, observables)` where each entry lists measurement
    /// indices.
    ///
    /// # Errors
    ///
    /// Returns the first measurement reference that does not correspond to a
    /// measurement in the circuit.
    pub fn resolve_annotations(&self) -> Result<ResolvedAnnotations, MeasurementRef> {
        let map = self.measurement_index_map();
        let resolve = |refs: &[MeasurementRef]| -> Result<Vec<usize>, MeasurementRef> {
            refs.iter().map(|r| map.get(r).copied().ok_or(*r)).collect()
        };
        let detectors = self
            .detectors
            .iter()
            .map(|d| resolve(&d.measurements))
            .collect::<Result<Vec<_>, _>>()?;
        let observables = self
            .observables
            .iter()
            .map(|o| resolve(&o.measurements))
            .collect::<Result<Vec<_>, _>>()?;
        Ok((detectors, observables))
    }

    /// Sum over noise channels of their total probability — a rough measure
    /// of the expected number of physical faults per shot, useful for sanity
    /// checks and diagnostics.
    pub fn expected_fault_count(&self) -> f64 {
        self.ops
            .iter()
            .filter_map(|op| match op {
                NoisyOp::Noise(channel) => Some(channel.total_probability()),
                NoisyOp::Gate(_) => None,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: u32) -> QubitId {
        QubitId::new(i)
    }

    #[test]
    fn from_circuit_copies_structure() {
        let mut circuit = Circuit::new();
        circuit.push(Instruction::Reset(q(0)));
        circuit.push(Instruction::H(q(0)));
        circuit.push(Instruction::Measure(q(0)));
        circuit.add_detector(Detector::new(vec![MeasurementRef::new(q(0), 0)]));
        circuit.add_observable(LogicalObservable::new(vec![MeasurementRef::new(q(0), 0)]));

        let noisy = NoisyCircuit::from_circuit(&circuit);
        assert_eq!(noisy.ops().len(), 3);
        assert_eq!(noisy.num_measurements(), 1);
        assert_eq!(noisy.detectors().len(), 1);
        assert_eq!(noisy.observables().len(), 1);
        assert_eq!(noisy.num_noise_channels(), 0);
    }

    #[test]
    fn zero_probability_noise_is_dropped() {
        let mut noisy = NoisyCircuit::new();
        noisy.push_noise(NoiseChannel::Depolarize1 {
            qubit: q(0),
            p: 0.0,
        });
        assert_eq!(noisy.ops().len(), 0);
        noisy.push_noise(NoiseChannel::Depolarize1 {
            qubit: q(0),
            p: 0.01,
        });
        assert_eq!(noisy.ops().len(), 1);
        assert_eq!(noisy.num_noise_channels(), 1);
    }

    #[test]
    fn measurement_index_map_orders_by_execution() {
        let mut noisy = NoisyCircuit::new();
        noisy.push_gate(Instruction::Measure(q(1)));
        noisy.push_gate(Instruction::Measure(q(0)));
        noisy.push_gate(Instruction::Measure(q(1)));
        let map = noisy.measurement_index_map();
        assert_eq!(map[&MeasurementRef::new(q(1), 0)], 0);
        assert_eq!(map[&MeasurementRef::new(q(0), 0)], 1);
        assert_eq!(map[&MeasurementRef::new(q(1), 1)], 2);
    }

    #[test]
    fn resolve_annotations_detects_dangling_refs() {
        let mut noisy = NoisyCircuit::new();
        noisy.push_gate(Instruction::Measure(q(0)));
        noisy.add_detector(Detector::new(vec![MeasurementRef::new(q(0), 3)]));
        assert_eq!(
            noisy.resolve_annotations(),
            Err(MeasurementRef::new(q(0), 3))
        );
    }

    #[test]
    fn resolve_annotations_success() {
        let mut noisy = NoisyCircuit::new();
        noisy.push_gate(Instruction::Measure(q(0)));
        noisy.push_gate(Instruction::Measure(q(1)));
        noisy.add_detector(Detector::new(vec![
            MeasurementRef::new(q(0), 0),
            MeasurementRef::new(q(1), 0),
        ]));
        noisy.add_observable(LogicalObservable::new(vec![MeasurementRef::new(q(1), 0)]));
        let (detectors, observables) = noisy.resolve_annotations().unwrap();
        assert_eq!(detectors, vec![vec![0, 1]]);
        assert_eq!(observables, vec![vec![1]]);
    }

    #[test]
    fn expected_fault_count_sums_probabilities() {
        let mut noisy = NoisyCircuit::new();
        noisy.push_noise(NoiseChannel::Depolarize1 {
            qubit: q(0),
            p: 0.1,
        });
        noisy.push_noise(NoiseChannel::BitFlip {
            qubit: q(1),
            p: 0.2,
        });
        noisy.push_noise(NoiseChannel::PhaseFlip {
            qubit: q(1),
            p: 0.3,
        });
        assert!((noisy.expected_fault_count() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn channel_metadata() {
        let c = NoiseChannel::Depolarize2 {
            a: q(0),
            b: q(3),
            p: 0.05,
        };
        assert_eq!(c.qubits(), vec![q(0), q(3)]);
        assert_eq!(c.total_probability(), 0.05);
        assert!(!c.is_trivial());
        assert!(c.to_string().contains("DEPOLARIZE2"));
    }
}
