//! Importance-sampling support: biased noise channels plus the per-channel
//! log-likelihood ratios needed to reweight shots.
//!
//! Deep sub-threshold logical error rates need ~`1/LER` plain Monte-Carlo
//! shots per point. Importance sampling beats that wall by sampling error
//! configurations from a *biased* copy of the circuit — every noise channel's
//! probability scaled up by a common factor — and reweighting each shot by
//! its likelihood ratio under the true channel, which keeps the estimator
//! unbiased while failures become common enough to observe.
//!
//! For a channel with true probability `p` biased to `q`, a shot in which the
//! channel fires carries a log-likelihood-ratio increment
//! `ln(p/q) − ln((1−p)/(1−q))`, and every shot carries the shot-independent
//! base term `Σ ln((1−p)/(1−q))`. The *conditional* Pauli choice (X/Y/Z, or
//! one of the 15 two-qubit Paulis) is unaffected by scaling the total
//! probability, so fire/no-fire is the only event that contributes to the
//! weight.

use crate::{NoiseChannel, NoisyCircuit, NoisyOp};

/// Biased channel probabilities are clamped to this ceiling so the biased
/// distribution stays a valid (and geometrically sampleable) channel.
pub const MAX_BIASED_PROBABILITY: f64 = 0.5;

/// A noisy circuit with every channel probability scaled up for importance
/// sampling, together with the likelihood-ratio bookkeeping needed to
/// reweight shots sampled from it back to the original distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct BiasedCircuit {
    /// The biased circuit: identical gates, detectors and observables, with
    /// each noise probability `p` replaced by `clamp(bias · p)`.
    pub circuit: NoisyCircuit,
    /// Per-channel (in op order) log-likelihood-ratio increment applied to a
    /// shot whenever that channel fires in it. Feed straight into
    /// [`crate::FrameSampler::run_recording`].
    pub fire_log_ratios: Vec<f64>,
    /// Shot-independent base term `Σ_k ln((1−p_k)/(1−q_k))`: the log weight
    /// of a shot in which *no* channel fires.
    pub base_log_weight: f64,
    /// The bias factor the circuit was built with.
    pub bias: f64,
}

impl BiasedCircuit {
    /// The total log weight of a shot given the accumulated sum of fire
    /// increments recorded for it.
    pub fn shot_log_weight(&self, fire_sum: f64) -> f64 {
        self.base_log_weight + fire_sum
    }
}

/// Builds the importance-sampling companion of `circuit`: every noise
/// channel's total probability `p` is scaled to `q = min(bias · p, 0.5)`
/// (never below `p`), while gates, detectors and observables are copied
/// verbatim so the biased circuit decodes against the *original* circuit's
/// detector error model.
///
/// A `bias` of 1 reproduces the original circuit with all-zero log ratios.
///
/// # Panics
///
/// Panics if `bias` is not finite or is below 1.
pub fn bias_circuit(circuit: &NoisyCircuit, bias: f64) -> BiasedCircuit {
    assert!(
        bias.is_finite() && bias >= 1.0,
        "importance-sampling bias must be a finite factor ≥ 1, got {bias}"
    );
    let mut biased = NoisyCircuit::new();
    biased.pad_qubits(circuit.num_qubits());
    let mut fire_log_ratios = Vec::with_capacity(circuit.num_noise_channels());
    let mut base_log_weight = 0.0;
    for op in circuit.ops() {
        match op {
            NoisyOp::Gate(instruction) => biased.push_gate(*instruction),
            NoisyOp::Noise(channel) => {
                let p = channel.total_probability();
                let q = (bias * p).min(MAX_BIASED_PROBABILITY).max(p);
                let no_fire_ratio = ((1.0 - p) / (1.0 - q)).ln();
                fire_log_ratios.push((p / q).ln() - no_fire_ratio);
                base_log_weight += no_fire_ratio;
                biased.push_noise(with_probability(channel, q));
            }
        }
    }
    for detector in circuit.detectors() {
        biased.add_detector(detector.clone());
    }
    for observable in circuit.observables() {
        biased.add_observable(observable.clone());
    }
    debug_assert_eq!(biased.num_noise_channels(), fire_log_ratios.len());
    BiasedCircuit {
        circuit: biased,
        fire_log_ratios,
        base_log_weight,
        bias,
    }
}

/// The same channel with its total probability replaced by `p`.
fn with_probability(channel: &NoiseChannel, p: f64) -> NoiseChannel {
    match *channel {
        NoiseChannel::Depolarize1 { qubit, .. } => NoiseChannel::Depolarize1 { qubit, p },
        NoiseChannel::Depolarize2 { a, b, .. } => NoiseChannel::Depolarize2 { a, b, p },
        NoiseChannel::BitFlip { qubit, .. } => NoiseChannel::BitFlip { qubit, p },
        NoiseChannel::PhaseFlip { qubit, .. } => NoiseChannel::PhaseFlip { qubit, p },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qccd_circuit::{Detector, Instruction, LogicalObservable, MeasurementRef, QubitId};

    fn q(i: u32) -> QubitId {
        QubitId::new(i)
    }

    fn sample_circuit() -> NoisyCircuit {
        let mut circuit = NoisyCircuit::new();
        circuit.push_gate(Instruction::Reset(q(0)));
        circuit.push_noise(NoiseChannel::BitFlip {
            qubit: q(0),
            p: 1e-3,
        });
        circuit.push_gate(Instruction::Cnot {
            control: q(0),
            target: q(1),
        });
        circuit.push_noise(NoiseChannel::Depolarize2 {
            a: q(0),
            b: q(1),
            p: 2e-3,
        });
        circuit.push_gate(Instruction::Measure(q(0)));
        circuit.push_gate(Instruction::Measure(q(1)));
        circuit.add_detector(Detector::new(vec![MeasurementRef::new(q(0), 0)]));
        circuit.add_observable(LogicalObservable::new(vec![MeasurementRef::new(q(1), 0)]));
        circuit
    }

    #[test]
    fn bias_one_is_the_identity_transform() {
        let circuit = sample_circuit();
        let biased = bias_circuit(&circuit, 1.0);
        assert_eq!(biased.circuit, circuit);
        assert!(biased.fire_log_ratios.iter().all(|&r| r == 0.0));
        assert_eq!(biased.base_log_weight, 0.0);
    }

    #[test]
    fn bias_scales_probabilities_and_keeps_structure() {
        let circuit = sample_circuit();
        let biased = bias_circuit(&circuit, 10.0);
        assert_eq!(biased.circuit.ops().len(), circuit.ops().len());
        assert_eq!(biased.circuit.detectors(), circuit.detectors());
        assert_eq!(biased.circuit.observables(), circuit.observables());
        let probs: Vec<f64> = biased
            .circuit
            .ops()
            .iter()
            .filter_map(|op| match op {
                NoisyOp::Noise(c) => Some(c.total_probability()),
                NoisyOp::Gate(_) => None,
            })
            .collect();
        assert_eq!(probs, vec![1e-2, 2e-2]);
    }

    #[test]
    fn bias_clamps_at_half() {
        let mut circuit = NoisyCircuit::new();
        circuit.push_noise(NoiseChannel::BitFlip {
            qubit: q(0),
            p: 0.2,
        });
        let biased = bias_circuit(&circuit, 100.0);
        match biased.circuit.ops()[0] {
            NoisyOp::Noise(c) => assert_eq!(c.total_probability(), MAX_BIASED_PROBABILITY),
            NoisyOp::Gate(_) => panic!("expected a noise op"),
        }
    }

    #[test]
    fn log_ratios_match_direct_formula() {
        let circuit = sample_circuit();
        let bias = 25.0;
        let biased = bias_circuit(&circuit, bias);
        let ps = [1e-3, 2e-3];
        let mut base = 0.0;
        for (k, &p) in ps.iter().enumerate() {
            let q = (bias * p).min(MAX_BIASED_PROBABILITY);
            let expected = (p * (1.0 - q) / (q * (1.0 - p))).ln();
            assert!(
                (biased.fire_log_ratios[k] - expected).abs() < 1e-12,
                "channel {k}: {} vs {expected}",
                biased.fire_log_ratios[k]
            );
            base += ((1.0 - p) / (1.0 - q)).ln();
        }
        assert!((biased.base_log_weight - base).abs() < 1e-12);
        // A no-fault shot is more likely under the true channel than under
        // the bias, so its weight (the base term alone) exceeds 1.
        assert!(biased.base_log_weight > 0.0);
    }

    #[test]
    fn weights_average_to_one() {
        // E_q[w] = 1 exactly: check by enumerating fire patterns of a tiny
        // two-channel circuit.
        let ps = [0.01, 0.03];
        let bias = 12.0;
        let mut circuit = NoisyCircuit::new();
        for &p in &ps {
            circuit.push_noise(NoiseChannel::BitFlip { qubit: q(0), p });
        }
        let biased = bias_circuit(&circuit, bias);
        let qs: Vec<f64> = ps.iter().map(|p| (bias * p).min(0.5)).collect();
        let mut total = 0.0;
        for pattern in 0..4u32 {
            let mut log_w = biased.base_log_weight;
            let mut prob_q = 1.0;
            for (k, &q_k) in qs.iter().enumerate() {
                if pattern & (1 << k) != 0 {
                    log_w += biased.fire_log_ratios[k];
                    prob_q *= q_k;
                } else {
                    prob_q *= 1.0 - q_k;
                }
            }
            total += prob_q * log_w.exp();
        }
        assert!((total - 1.0).abs() < 1e-12, "E_q[w] = {total}");
    }
}
