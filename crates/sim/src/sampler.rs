//! High-level sampling API.
//!
//! This module glues the pieces together:
//!
//! * [`verify_detectors`] uses the exact tableau simulator to confirm that
//!   every detector of a circuit has even parity when executed without
//!   noise (the defining property of a detector);
//! * [`sample_detectors`] runs the batch Pauli-frame sampler and returns
//!   per-shot detector events and logical-observable flips, bit-packed.

use serde::{Deserialize, Serialize};

use qccd_circuit::MeasurementRef;

use crate::{BitPlanes, FrameSampler, NoisyCircuit, NoisyOp, TableauSimulator};

/// Bit-packed detector and observable outcomes for a batch of shots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectorSamples {
    num_shots: usize,
    num_detectors: usize,
    num_observables: usize,
    /// Detector bit-planes: bit `s % 64` of word `s / 64` of plane `d` is
    /// detector `d`'s outcome in shot `s`.
    detectors: BitPlanes,
    /// Same layout for logical observables.
    observables: BitPlanes,
}

impl DetectorSamples {
    /// Number of shots sampled.
    pub fn num_shots(&self) -> usize {
        self.num_shots
    }

    /// Number of detectors per shot.
    pub fn num_detectors(&self) -> usize {
        self.num_detectors
    }

    /// Number of logical observables per shot.
    pub fn num_observables(&self) -> usize {
        self.num_observables
    }

    /// Whether detector `detector` fired in shot `shot`.
    pub fn detector_fired(&self, shot: usize, detector: usize) -> bool {
        self.detectors.bit(detector, shot)
    }

    /// Whether observable `observable` was flipped in shot `shot`.
    pub fn observable_flipped(&self, shot: usize, observable: usize) -> bool {
        self.observables.bit(observable, shot)
    }

    /// The bit-plane of one detector.
    pub fn detector_plane(&self, detector: usize) -> &[u64] {
        self.detectors.plane(detector)
    }

    /// The bit-plane of one observable.
    pub fn observable_plane(&self, observable: usize) -> &[u64] {
        self.observables.plane(observable)
    }

    /// The indices of all detectors that fired in a shot.
    pub fn fired_detectors(&self, shot: usize) -> Vec<usize> {
        (0..self.num_detectors)
            .filter(|&d| self.detector_fired(shot, d))
            .collect()
    }

    /// Number of shots in which each detector fired.
    pub fn detector_fire_counts(&self) -> Vec<usize> {
        (0..self.num_detectors)
            .map(|d| self.detectors.count_ones(d))
            .collect()
    }

    /// Number of shots in which the given observable flipped.
    pub fn observable_flip_count(&self, observable: usize) -> usize {
        self.observables.count_ones(observable)
    }

    /// Average number of fired detectors per shot.
    pub fn mean_detection_events(&self) -> f64 {
        let total: usize = self.detector_fire_counts().iter().sum();
        total as f64 / self.num_shots as f64
    }
}

/// Problems found while verifying a circuit's detectors.
#[derive(Debug, Clone, PartialEq)]
pub enum VerificationError {
    /// A detector or observable references a measurement that does not
    /// exist.
    DanglingMeasurement(MeasurementRef),
    /// A detector had odd parity in a noiseless execution.
    NonDeterministicDetector {
        /// Index of the offending detector.
        detector: usize,
        /// The seed of the noiseless run that exposed it.
        seed: u64,
    },
}

impl std::fmt::Display for VerificationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerificationError::DanglingMeasurement(m) => {
                write!(f, "annotation references missing measurement {m}")
            }
            VerificationError::NonDeterministicDetector { detector, seed } => write!(
                f,
                "detector {detector} had odd parity in a noiseless run (seed {seed})"
            ),
        }
    }
}

impl std::error::Error for VerificationError {}

/// Verifies that every detector of the circuit has even parity when the
/// circuit is executed without noise, using the exact tableau simulator.
///
/// Several random seeds are used so that measurements with random outcomes
/// are exercised with different collapse choices.
///
/// # Errors
///
/// Returns a [`VerificationError`] naming the offending detector or dangling
/// measurement reference.
pub fn verify_detectors(circuit: &NoisyCircuit, seeds: &[u64]) -> Result<(), VerificationError> {
    let (detectors, _observables) = circuit
        .resolve_annotations()
        .map_err(VerificationError::DanglingMeasurement)?;
    for &seed in seeds {
        let mut sim = TableauSimulator::new(circuit.num_qubits(), seed);
        let mut outcomes = Vec::with_capacity(circuit.num_measurements());
        for op in circuit.ops() {
            if let NoisyOp::Gate(instruction) = op {
                if let Some(outcome) = sim.apply(instruction) {
                    outcomes.push(outcome);
                }
            }
        }
        for (d, measurement_indices) in detectors.iter().enumerate() {
            let parity = measurement_indices
                .iter()
                .fold(false, |acc, &m| acc ^ outcomes[m]);
            if parity {
                return Err(VerificationError::NonDeterministicDetector { detector: d, seed });
            }
        }
    }
    Ok(())
}

/// Samples `num_shots` executions of a noisy circuit and returns the
/// detector events and logical-observable flips.
///
/// # Errors
///
/// Returns the first dangling [`MeasurementRef`] if an annotation references
/// a measurement that does not exist.
pub fn sample_detectors(
    circuit: &NoisyCircuit,
    num_shots: usize,
    seed: u64,
) -> Result<DetectorSamples, MeasurementRef> {
    let (detectors, observables) = circuit.resolve_annotations()?;
    let mut sampler = FrameSampler::new(circuit.num_qubits(), num_shots, seed);
    sampler.run(circuit);
    let words = num_shots.div_ceil(64);

    let combine = |annotations: &[Vec<usize>]| -> BitPlanes {
        let mut planes = BitPlanes::zeroed(annotations.len(), words);
        for (index, measurement_indices) in annotations.iter().enumerate() {
            for &m in measurement_indices {
                planes.xor_plane(index, sampler.measurement_plane(m));
            }
        }
        planes
    };

    Ok(DetectorSamples {
        num_shots,
        num_detectors: detectors.len(),
        num_observables: observables.len(),
        detectors: combine(&detectors),
        observables: combine(&observables),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NoiseChannel;
    use qccd_circuit::{Detector, Instruction, LogicalObservable, QubitId};

    fn q(i: u32) -> QubitId {
        QubitId::new(i)
    }

    fn mref(i: u32, occurrence: u32) -> MeasurementRef {
        MeasurementRef::new(q(i), occurrence)
    }

    /// A two-qubit bit-flip "code": one ZZ parity measurement repeated twice.
    fn tiny_parity_circuit(p: f64) -> NoisyCircuit {
        let mut c = NoisyCircuit::new();
        for i in 0..3 {
            c.push_gate(Instruction::Reset(q(i)));
        }
        for round in 0..2u32 {
            c.push_gate(Instruction::Reset(q(2)));
            c.push_noise(NoiseChannel::BitFlip { qubit: q(0), p });
            c.push_gate(Instruction::Cnot {
                control: q(0),
                target: q(2),
            });
            c.push_gate(Instruction::Cnot {
                control: q(1),
                target: q(2),
            });
            c.push_gate(Instruction::Measure(q(2)));
            if round == 0 {
                c.add_detector(Detector::new(vec![mref(2, 0)]));
            } else {
                c.add_detector(Detector::new(vec![mref(2, 0), mref(2, 1)]));
            }
        }
        c.push_gate(Instruction::Measure(q(0)));
        c.push_gate(Instruction::Measure(q(1)));
        c.add_observable(LogicalObservable::new(vec![mref(0, 0)]));
        c
    }

    #[test]
    fn verify_detectors_accepts_valid_circuit() {
        let circuit = tiny_parity_circuit(0.0);
        assert_eq!(verify_detectors(&circuit, &[0, 1, 2]), Ok(()));
    }

    #[test]
    fn verify_detectors_rejects_bogus_detector() {
        let mut circuit = NoisyCircuit::new();
        circuit.push_gate(Instruction::Reset(q(0)));
        circuit.push_gate(Instruction::X(q(0)));
        circuit.push_gate(Instruction::Measure(q(0)));
        // This "detector" has odd parity: the measurement is always 1.
        circuit.add_detector(Detector::new(vec![mref(0, 0)]));
        assert!(matches!(
            verify_detectors(&circuit, &[0]),
            Err(VerificationError::NonDeterministicDetector { detector: 0, .. })
        ));
    }

    #[test]
    fn noiseless_sampling_fires_nothing() {
        let circuit = tiny_parity_circuit(0.0);
        let samples = sample_detectors(&circuit, 500, 1).unwrap();
        assert_eq!(samples.num_shots(), 500);
        assert_eq!(samples.detector_fire_counts(), vec![0, 0]);
        assert_eq!(samples.observable_flip_count(0), 0);
        assert_eq!(samples.mean_detection_events(), 0.0);
    }

    #[test]
    fn noisy_sampling_fires_detectors_at_expected_rate() {
        let p = 0.2;
        let circuit = tiny_parity_circuit(p);
        let shots = 20_000;
        let samples = sample_detectors(&circuit, shots, 7).unwrap();
        // The first-round error flips detector 0; detector 1 compares rounds
        // so it is flipped by the second-round error only.
        let counts = samples.detector_fire_counts();
        for (d, count) in counts.iter().enumerate() {
            let rate = *count as f64 / shots as f64;
            assert!(
                (rate - p).abs() < 0.02,
                "detector {d} fired at {rate}, expected ≈{p}"
            );
        }
        // The data qubit 0 ends up flipped if either round's error fired —
        // the observable flip rate is p ⊕ p = 2p(1−p).
        let obs_rate = samples.observable_flip_count(0) as f64 / shots as f64;
        let expected = 2.0 * p * (1.0 - p);
        assert!(
            (obs_rate - expected).abs() < 0.02,
            "observable flipped at {obs_rate}, expected ≈{expected}"
        );
    }

    #[test]
    fn per_shot_accessors_are_consistent_with_counts() {
        let circuit = tiny_parity_circuit(0.3);
        let samples = sample_detectors(&circuit, 257, 3).unwrap();
        let mut recount = vec![0usize; samples.num_detectors()];
        for shot in 0..samples.num_shots() {
            for d in samples.fired_detectors(shot) {
                recount[d] += 1;
            }
        }
        assert_eq!(recount, samples.detector_fire_counts());
    }

    #[test]
    fn dangling_reference_reported() {
        let mut circuit = NoisyCircuit::new();
        circuit.push_gate(Instruction::Measure(q(0)));
        circuit.add_detector(Detector::new(vec![mref(0, 5)]));
        assert!(sample_detectors(&circuit, 10, 0).is_err());
        assert!(matches!(
            verify_detectors(&circuit, &[0]),
            Err(VerificationError::DanglingMeasurement(_))
        ));
    }
}
