//! CHP stabilizer tableau simulator.
//!
//! A faithful implementation of the Aaronson–Gottesman tableau algorithm.
//! It tracks the full stabilizer group of the state, so it handles random
//! measurement outcomes exactly. It is used as the *reference* simulator:
//!
//! * to verify that every detector of a QEC circuit is deterministic (even
//!   parity) in the absence of noise, and
//! * as an oracle in tests for the much faster Pauli-frame sampler.
//!
//! The per-gate cost is `O(n)` and the per-measurement cost is `O(n²)`, which
//! is ample for the code distances that are Monte-Carlo sampled in the
//! evaluation.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use qccd_circuit::{Instruction, QubitId};

/// The Aaronson–Gottesman stabilizer tableau simulator.
#[derive(Debug, Clone)]
pub struct TableauSimulator {
    n: usize,
    /// `xs[row][qubit]`: X component of the row's Pauli.
    xs: Vec<Vec<bool>>,
    /// `zs[row][qubit]`: Z component of the row's Pauli.
    zs: Vec<Vec<bool>>,
    /// Sign bit of each row (true ⇒ −1).
    r: Vec<bool>,
    rng: ChaCha8Rng,
}

impl TableauSimulator {
    /// Creates a simulator for `num_qubits` qubits in the all-|0⟩ state,
    /// using the given random seed for non-deterministic measurements.
    pub fn new(num_qubits: usize, seed: u64) -> Self {
        let n = num_qubits;
        let rows = 2 * n + 1;
        let mut xs = vec![vec![false; n]; rows];
        let mut zs = vec![vec![false; n]; rows];
        let r = vec![false; rows];
        for i in 0..n {
            xs[i][i] = true; // destabilizer i = X_i
            zs[n + i][i] = true; // stabilizer i = Z_i
        }
        TableauSimulator {
            n,
            xs,
            zs,
            r,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Applies one instruction. Measurements return `Some(outcome)`.
    ///
    /// # Panics
    ///
    /// Panics if the instruction touches a qubit outside the register.
    pub fn apply(&mut self, instruction: &Instruction) -> Option<bool> {
        use Instruction::*;
        match *instruction {
            I(_) => None,
            X(q) => {
                self.pauli_x(q.index());
                None
            }
            Y(q) => {
                self.pauli_y(q.index());
                None
            }
            Z(q) => {
                self.pauli_z(q.index());
                None
            }
            H(q) => {
                self.hadamard(q.index());
                None
            }
            S(q) => {
                self.phase(q.index());
                None
            }
            Sdg(q) => {
                self.phase(q.index());
                self.phase(q.index());
                self.phase(q.index());
                None
            }
            SqrtX(q) => {
                self.hadamard(q.index());
                self.phase(q.index());
                self.hadamard(q.index());
                None
            }
            SqrtXdg(q) => {
                self.hadamard(q.index());
                self.phase(q.index());
                self.phase(q.index());
                self.phase(q.index());
                self.hadamard(q.index());
                None
            }
            Cnot { control, target } => {
                self.cnot(control.index(), target.index());
                None
            }
            Cz(a, b) => {
                self.hadamard(b.index());
                self.cnot(a.index(), b.index());
                self.hadamard(b.index());
                None
            }
            Swap(a, b) => {
                self.cnot(a.index(), b.index());
                self.cnot(b.index(), a.index());
                self.cnot(a.index(), b.index());
                None
            }
            Ms(a, b) => {
                // MS = (H⊗H) · CNOT · (I⊗S) · CNOT · (H⊗H) up to global phase
                // (circuit order: H,H ; CNOT ; S on target ; CNOT ; H,H).
                self.hadamard(a.index());
                self.hadamard(b.index());
                self.cnot(a.index(), b.index());
                self.phase(b.index());
                self.cnot(a.index(), b.index());
                self.hadamard(a.index());
                self.hadamard(b.index());
                None
            }
            Measure(q) => Some(self.measure_z(q.index())),
            MeasureX(q) => {
                self.hadamard(q.index());
                let m = self.measure_z(q.index());
                self.hadamard(q.index());
                Some(m)
            }
            Reset(q) => {
                let m = self.measure_z(q.index());
                if m {
                    self.pauli_x(q.index());
                }
                None
            }
        }
    }

    /// Runs every instruction of an iterator, collecting measurement
    /// outcomes in order.
    pub fn run<'a, I: IntoIterator<Item = &'a Instruction>>(
        &mut self,
        instructions: I,
    ) -> Vec<bool> {
        instructions
            .into_iter()
            .filter_map(|i| self.apply(i))
            .collect()
    }

    /// Returns `true` if measuring qubit `q` in the Z basis would give a
    /// deterministic outcome in the current state.
    pub fn is_deterministic_z(&self, qubit: QubitId) -> bool {
        let a = qubit.index();
        !(self.n..2 * self.n).any(|i| self.xs[i][a])
    }

    // ------------------------------------------------------------------
    // Elementary tableau updates.
    // ------------------------------------------------------------------

    fn hadamard(&mut self, a: usize) {
        for row in 0..2 * self.n {
            let x = self.xs[row][a];
            let z = self.zs[row][a];
            self.r[row] ^= x & z;
            self.xs[row][a] = z;
            self.zs[row][a] = x;
        }
    }

    fn phase(&mut self, a: usize) {
        for row in 0..2 * self.n {
            let x = self.xs[row][a];
            let z = self.zs[row][a];
            self.r[row] ^= x & z;
            self.zs[row][a] = z ^ x;
        }
    }

    fn cnot(&mut self, control: usize, target: usize) {
        for row in 0..2 * self.n {
            let xc = self.xs[row][control];
            let zc = self.zs[row][control];
            let xt = self.xs[row][target];
            let zt = self.zs[row][target];
            self.r[row] ^= xc & zt & (xt ^ zc ^ true);
            self.xs[row][target] = xt ^ xc;
            self.zs[row][control] = zc ^ zt;
        }
    }

    fn pauli_x(&mut self, a: usize) {
        for row in 0..2 * self.n {
            self.r[row] ^= self.zs[row][a];
        }
    }

    fn pauli_z(&mut self, a: usize) {
        for row in 0..2 * self.n {
            self.r[row] ^= self.xs[row][a];
        }
    }

    fn pauli_y(&mut self, a: usize) {
        for row in 0..2 * self.n {
            self.r[row] ^= self.xs[row][a] ^ self.zs[row][a];
        }
    }

    /// Phase contribution of multiplying Pauli (x1,z1) by (x2,z2), as in the
    /// Aaronson–Gottesman `g` function.
    fn g(x1: bool, z1: bool, x2: bool, z2: bool) -> i32 {
        match (x1, z1) {
            (false, false) => 0,
            (true, true) => (z2 as i32) - (x2 as i32),
            (true, false) => (z2 as i32) * (2 * (x2 as i32) - 1),
            (false, true) => (x2 as i32) * (1 - 2 * (z2 as i32)),
        }
    }

    /// Row `h` ← row `h` · row `i`, with exact phase tracking.
    fn rowsum(&mut self, h: usize, i: usize) {
        let mut phase = 2 * (self.r[h] as i32) + 2 * (self.r[i] as i32);
        for q in 0..self.n {
            phase += Self::g(self.xs[i][q], self.zs[i][q], self.xs[h][q], self.zs[h][q]);
            self.xs[h][q] ^= self.xs[i][q];
            self.zs[h][q] ^= self.zs[i][q];
        }
        // For stabilizer rows the accumulated phase is always real (0 or 2
        // mod 4). Destabilizer rows are only tracked up to phase, so an odd
        // value can occur there and is harmless.
        self.r[h] = phase.rem_euclid(4) >= 2;
    }

    fn measure_z(&mut self, a: usize) -> bool {
        let n = self.n;
        // Is there a stabilizer anticommuting with Z_a?
        let p = (n..2 * n).find(|&row| self.xs[row][a]);
        match p {
            Some(p) => {
                // Random outcome.
                for row in 0..2 * n {
                    if row != p && self.xs[row][a] {
                        self.rowsum(row, p);
                    }
                }
                // Destabilizer slot receives the old stabilizer row.
                self.xs[p - n] = self.xs[p].clone();
                self.zs[p - n] = self.zs[p].clone();
                self.r[p - n] = self.r[p];
                // New stabilizer is ±Z_a with a random sign.
                self.xs[p] = vec![false; n];
                self.zs[p] = vec![false; n];
                self.zs[p][a] = true;
                let outcome: bool = self.rng.gen();
                self.r[p] = outcome;
                outcome
            }
            None => {
                // Deterministic outcome: use the scratch row 2n.
                let scratch = 2 * n;
                self.xs[scratch] = vec![false; n];
                self.zs[scratch] = vec![false; n];
                self.r[scratch] = false;
                for i in 0..n {
                    if self.xs[i][a] {
                        self.rowsum(scratch, i + n);
                    }
                }
                self.r[scratch]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qccd_circuit::{clifford, Pauli, SparsePauli};

    fn q(i: u32) -> QubitId {
        QubitId::new(i)
    }

    #[test]
    fn zero_state_measures_zero() {
        let mut sim = TableauSimulator::new(3, 1);
        for i in 0..3 {
            assert_eq!(sim.apply(&Instruction::Measure(q(i))), Some(false));
        }
    }

    #[test]
    fn bit_flip_measures_one() {
        let mut sim = TableauSimulator::new(1, 1);
        sim.apply(&Instruction::X(q(0)));
        assert_eq!(sim.apply(&Instruction::Measure(q(0))), Some(true));
    }

    #[test]
    fn hadamard_measurement_is_random_but_repeatable() {
        // After H the outcome is random, but measuring twice must agree.
        let mut zeros = 0;
        for seed in 0..64 {
            let mut sim = TableauSimulator::new(1, seed);
            sim.apply(&Instruction::H(q(0)));
            assert!(!sim.is_deterministic_z(q(0)));
            let m1 = sim.apply(&Instruction::Measure(q(0))).unwrap();
            let m2 = sim.apply(&Instruction::Measure(q(0))).unwrap();
            assert_eq!(m1, m2, "repeated measurement must agree");
            if !m1 {
                zeros += 1;
            }
        }
        assert!(
            zeros > 10 && zeros < 54,
            "outcomes should be random, got {zeros}/64 zeros"
        );
    }

    #[test]
    fn bell_pair_outcomes_are_correlated() {
        for seed in 0..32 {
            let mut sim = TableauSimulator::new(2, seed);
            sim.apply(&Instruction::H(q(0)));
            sim.apply(&Instruction::Cnot {
                control: q(0),
                target: q(1),
            });
            let m0 = sim.apply(&Instruction::Measure(q(0))).unwrap();
            let m1 = sim.apply(&Instruction::Measure(q(1))).unwrap();
            assert_eq!(m0, m1);
        }
    }

    #[test]
    fn ghz_outcomes_all_agree() {
        for seed in 0..16 {
            let mut sim = TableauSimulator::new(4, seed);
            sim.apply(&Instruction::H(q(0)));
            for i in 1..4 {
                sim.apply(&Instruction::Cnot {
                    control: q(0),
                    target: q(i),
                });
            }
            let outcomes: Vec<bool> = (0..4)
                .map(|i| sim.apply(&Instruction::Measure(q(i))).unwrap())
                .collect();
            assert!(outcomes.iter().all(|&b| b == outcomes[0]));
        }
    }

    #[test]
    fn ms_gate_entangles() {
        // MS|00⟩ = (|00⟩ − i|11⟩)/√2: its stabilizer group is
        // {I, −Y₀X₁, −X₀Y₁, Z₀Z₁}, so Z-basis outcomes of the two qubits
        // agree, and measuring Y₀ and X₁ gives anti-correlated outcomes.
        for seed in 0..32 {
            let mut sim = TableauSimulator::new(2, seed);
            sim.apply(&Instruction::Ms(q(0), q(1)));
            let m0 = sim.apply(&Instruction::Measure(q(0))).unwrap();
            let m1 = sim.apply(&Instruction::Measure(q(1))).unwrap();
            assert_eq!(m0, m1, "Z⊗Z stabilizes the MS output state");
        }
        for seed in 0..32 {
            let mut sim = TableauSimulator::new(2, seed);
            sim.apply(&Instruction::Ms(q(0), q(1)));
            // Measure Y on qubit 0: rotate with S†, H, then measure Z.
            sim.apply(&Instruction::Sdg(q(0)));
            sim.apply(&Instruction::H(q(0)));
            let m0 = sim.apply(&Instruction::Measure(q(0))).unwrap();
            // Measure X on qubit 1.
            let m1 = sim.apply(&Instruction::MeasureX(q(1))).unwrap();
            assert_ne!(m0, m1, "−Y₀X₁ stabilizes the MS output state");
        }
    }

    #[test]
    fn reset_returns_to_zero() {
        for seed in 0..8 {
            let mut sim = TableauSimulator::new(1, seed);
            sim.apply(&Instruction::H(q(0)));
            sim.apply(&Instruction::Reset(q(0)));
            assert!(sim.is_deterministic_z(q(0)));
            assert_eq!(sim.apply(&Instruction::Measure(q(0))), Some(false));
        }
    }

    #[test]
    fn x_basis_measurement_of_plus_state_is_deterministic() {
        let mut sim = TableauSimulator::new(1, 7);
        sim.apply(&Instruction::H(q(0)));
        assert_eq!(sim.apply(&Instruction::MeasureX(q(0))), Some(false));
        // And the state survives: measuring X again gives the same result.
        assert_eq!(sim.apply(&Instruction::MeasureX(q(0))), Some(false));
    }

    #[test]
    fn cz_and_swap_behave() {
        // CZ on |+,1⟩ flips the + to −: X measurement of qubit 0 gives 1.
        let mut sim = TableauSimulator::new(2, 3);
        sim.apply(&Instruction::H(q(0)));
        sim.apply(&Instruction::X(q(1)));
        sim.apply(&Instruction::Cz(q(0), q(1)));
        assert_eq!(sim.apply(&Instruction::MeasureX(q(0))), Some(true));

        // SWAP exchanges amplitudes.
        let mut sim = TableauSimulator::new(2, 3);
        sim.apply(&Instruction::X(q(0)));
        sim.apply(&Instruction::Swap(q(0), q(1)));
        assert_eq!(sim.apply(&Instruction::Measure(q(0))), Some(false));
        assert_eq!(sim.apply(&Instruction::Measure(q(1))), Some(true));
    }

    /// Cross-check the tableau gate implementations against the independent
    /// Pauli-conjugation rules in `qccd_circuit::clifford`: preparing an
    /// eigenstate of P, applying a gate U, then measuring U P U† must give a
    /// deterministic +1 outcome.
    #[test]
    fn tableau_agrees_with_clifford_conjugation() {
        let gates = [
            Instruction::H(q(0)),
            Instruction::S(q(0)),
            Instruction::Sdg(q(0)),
            Instruction::SqrtX(q(0)),
            Instruction::SqrtXdg(q(0)),
            Instruction::Cnot {
                control: q(0),
                target: q(1),
            },
            Instruction::Cz(q(0), q(1)),
            Instruction::Swap(q(0), q(1)),
            Instruction::Ms(q(0), q(1)),
        ];
        for gate in &gates {
            for (prep, pauli) in [
                (vec![], SparsePauli::single(q(0), Pauli::Z)),
                (
                    vec![Instruction::H(q(0))],
                    SparsePauli::single(q(0), Pauli::X),
                ),
                (vec![], SparsePauli::single(q(1), Pauli::Z)),
                (
                    vec![Instruction::H(q(1))],
                    SparsePauli::single(q(1), Pauli::X),
                ),
            ] {
                let mut sim = TableauSimulator::new(2, 11);
                for p in &prep {
                    sim.apply(p);
                }
                sim.apply(gate);
                let image = clifford::conjugate(gate, &pauli).unwrap();
                // Measure the image operator by rotating each qubit into the
                // Z basis, measuring, and taking the parity.
                let mut parity = image.is_negative();
                for (qubit, p) in image.iter() {
                    match p {
                        Pauli::X => {
                            sim.apply(&Instruction::H(qubit));
                        }
                        Pauli::Y => {
                            sim.apply(&Instruction::Sdg(qubit));
                            sim.apply(&Instruction::H(qubit));
                        }
                        Pauli::Z => {}
                        Pauli::I => continue,
                    }
                    parity ^= sim.apply(&Instruction::Measure(qubit)).unwrap();
                }
                assert!(
                    !parity,
                    "state stabilized by {pauli} should be stabilized by {image} after {gate}"
                );
            }
        }
    }
}
