//! Cross-crate validation: the QEC memory-experiment circuits built by
//! `qccd-qec` must have deterministic detectors under the exact tableau
//! simulator, and their noiseless samples must be silent.

use qccd_qec::{
    memory_experiment, repetition_code, rotated_surface_code, unrotated_surface_code, MemoryBasis,
};
use qccd_sim::{sample_detectors, verify_detectors, DetectorErrorModel, NoisyCircuit};

#[test]
fn repetition_code_detectors_are_deterministic() {
    for d in [2, 3, 5] {
        for rounds in [1, 2, 4] {
            let code = repetition_code(d);
            let exp = memory_experiment(&code, rounds, MemoryBasis::Z);
            let noisy = NoisyCircuit::from_circuit(&exp.circuit);
            verify_detectors(&noisy, &[0, 1, 2]).unwrap_or_else(|e| {
                panic!("repetition d={d} rounds={rounds}: {e}");
            });
        }
    }
}

#[test]
fn rotated_surface_code_detectors_are_deterministic() {
    for d in [2, 3, 4, 5] {
        let code = rotated_surface_code(d);
        let exp = memory_experiment(&code, d, MemoryBasis::Z);
        let noisy = NoisyCircuit::from_circuit(&exp.circuit);
        verify_detectors(&noisy, &[0, 1, 7]).unwrap_or_else(|e| {
            panic!("rotated surface d={d}: {e}");
        });
    }
}

#[test]
fn rotated_surface_code_x_basis_detectors_are_deterministic() {
    for d in [2, 3] {
        let code = rotated_surface_code(d);
        let exp = memory_experiment(&code, d, MemoryBasis::X);
        let noisy = NoisyCircuit::from_circuit(&exp.circuit);
        verify_detectors(&noisy, &[0, 3]).unwrap_or_else(|e| {
            panic!("rotated surface (X basis) d={d}: {e}");
        });
    }
}

#[test]
fn unrotated_surface_code_detectors_are_deterministic() {
    for d in [2, 3] {
        let code = unrotated_surface_code(d);
        let exp = memory_experiment(&code, d, MemoryBasis::Z);
        let noisy = NoisyCircuit::from_circuit(&exp.circuit);
        verify_detectors(&noisy, &[0, 5]).unwrap_or_else(|e| {
            panic!("unrotated surface d={d}: {e}");
        });
    }
}

#[test]
fn noiseless_memory_experiment_never_fires_detectors() {
    let code = rotated_surface_code(3);
    let exp = memory_experiment(&code, 3, MemoryBasis::Z);
    let noisy = NoisyCircuit::from_circuit(&exp.circuit);
    let samples = sample_detectors(&noisy, 2048, 11).expect("annotations resolve");
    assert!(samples.detector_fire_counts().iter().all(|&c| c == 0));
    assert_eq!(samples.observable_flip_count(0), 0);
}

#[test]
fn noiseless_memory_experiment_has_empty_error_model() {
    let code = rotated_surface_code(3);
    let exp = memory_experiment(&code, 2, MemoryBasis::Z);
    let noisy = NoisyCircuit::from_circuit(&exp.circuit);
    let dem = DetectorErrorModel::from_circuit(&noisy).expect("annotations resolve");
    assert_eq!(dem.num_detectors, exp.num_detectors);
    assert_eq!(dem.num_observables, 1);
    assert!(dem.errors.is_empty());
}
