//! Property-based tests for the stabilizer-simulation substrate.
//!
//! These tests build circuits whose correct behaviour is known by
//! construction — compute/uncompute sandwiches, forced errors — and check
//! that the Pauli-frame sampler and the detector machinery reproduce it.
//! This is the invariant the whole logical-error-rate pipeline rests on:
//! noiseless circuits never fire detectors, and a forced fault fires exactly
//! the detectors its symptom says it should.

use proptest::prelude::*;

use qccd_circuit::{Detector, Instruction, LogicalObservable, MeasurementRef, QubitId};
use qccd_sim::{sample_detectors, verify_detectors, NoiseChannel, NoisyCircuit};

const NUM_QUBITS: u32 = 5;

/// A random unitary Clifford layer (no measurements, no resets).
fn clifford_layer() -> impl Strategy<Value = Vec<Instruction>> {
    let q = || (0..NUM_QUBITS).prop_map(QubitId::new);
    let two = (0..NUM_QUBITS, 0..NUM_QUBITS - 1).prop_map(|(a, b)| {
        let b = if b >= a { b + 1 } else { b };
        (QubitId::new(a), QubitId::new(b))
    });
    let gate = prop_oneof![
        q().prop_map(Instruction::H),
        q().prop_map(Instruction::S),
        q().prop_map(Instruction::X),
        q().prop_map(Instruction::Z),
        q().prop_map(Instruction::SqrtX),
        two.clone()
            .prop_map(|(control, target)| Instruction::Cnot { control, target }),
        two.prop_map(|(a, b)| Instruction::Cz(a, b)),
    ];
    prop::collection::vec(gate, 0..20)
}

/// Returns the inverse of a unitary Clifford instruction.
fn inverse(instruction: &Instruction) -> Vec<Instruction> {
    match *instruction {
        Instruction::S(q) => vec![Instruction::Sdg(q)],
        Instruction::Sdg(q) => vec![Instruction::S(q)],
        Instruction::SqrtX(q) => vec![Instruction::SqrtXdg(q)],
        Instruction::SqrtXdg(q) => vec![Instruction::SqrtX(q)],
        other => vec![other],
    }
}

/// Builds a compute/uncompute sandwich: reset every qubit, apply `layer`,
/// apply its inverse, and measure every qubit. All outcomes are |0⟩ by
/// construction, so one detector per measurement is deterministic.
fn sandwich_circuit(layer: &[Instruction]) -> NoisyCircuit {
    let mut circuit = NoisyCircuit::new();
    circuit.pad_qubits(NUM_QUBITS as usize);
    for q in 0..NUM_QUBITS {
        circuit.push_gate(Instruction::Reset(QubitId::new(q)));
    }
    for instruction in layer {
        circuit.push_gate(*instruction);
    }
    for instruction in layer.iter().rev() {
        for inv in inverse(instruction) {
            circuit.push_gate(inv);
        }
    }
    for q in 0..NUM_QUBITS {
        circuit.push_gate(Instruction::Measure(QubitId::new(q)));
    }
    for q in 0..NUM_QUBITS {
        circuit.add_detector(Detector::new(vec![MeasurementRef::new(QubitId::new(q), 0)]));
    }
    circuit.add_observable(LogicalObservable::new(vec![MeasurementRef::new(
        QubitId::new(0),
        0,
    )]));
    circuit
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn noiseless_sandwiches_never_fire_detectors(layer in clifford_layer(), seed in 0u64..1000) {
        let circuit = sandwich_circuit(&layer);
        // The tableau reference confirms every detector is deterministic.
        verify_detectors(&circuit, &[seed, seed + 1]).expect("detectors are deterministic");
        // The frame sampler agrees: no detection events, no observable flips.
        let samples = sample_detectors(&circuit, 64, seed).expect("annotations are valid");
        prop_assert_eq!(samples.mean_detection_events(), 0.0);
        prop_assert_eq!(samples.observable_flip_count(0), 0);
    }

    #[test]
    fn a_forced_bit_flip_fires_exactly_its_own_detector(
        layer in clifford_layer(),
        victim in 0..NUM_QUBITS,
        seed in 0u64..1000,
    ) {
        // Insert a deterministic X error right before the measurements: only
        // the victim qubit's detector may fire, and it must fire in every
        // shot.
        let mut circuit = sandwich_circuit(&layer);
        let mut with_error = NoisyCircuit::new();
        with_error.pad_qubits(NUM_QUBITS as usize);
        let ops = circuit.ops().to_vec();
        let first_measurement = ops
            .iter()
            .position(|op| matches!(op, qccd_sim::NoisyOp::Gate(g) if g.is_measurement()))
            .unwrap();
        for (i, op) in ops.iter().enumerate() {
            if i == first_measurement {
                with_error.push_noise(NoiseChannel::BitFlip {
                    qubit: QubitId::new(victim),
                    p: 1.0,
                });
            }
            match op {
                qccd_sim::NoisyOp::Gate(g) => with_error.push_gate(*g),
                qccd_sim::NoisyOp::Noise(c) => with_error.push_noise(*c),
            }
        }
        for d in circuit.detectors() {
            with_error.add_detector(d.clone());
        }
        for o in circuit.observables() {
            with_error.add_observable(o.clone());
        }
        circuit = with_error;

        let shots = 32;
        let samples = sample_detectors(&circuit, shots, seed).expect("annotations are valid");
        let counts = samples.detector_fire_counts();
        for (detector, &count) in counts.iter().enumerate() {
            if detector == victim as usize {
                prop_assert_eq!(count, shots, "victim detector must always fire");
            } else {
                prop_assert_eq!(count, 0, "detector {} must stay silent", detector);
            }
        }
        // The observable tracks qubit 0's measurement.
        let expected_flips = if victim == 0 { shots } else { 0 };
        prop_assert_eq!(samples.observable_flip_count(0), expected_flips);
    }

    #[test]
    fn bit_flip_rate_matches_the_channel_probability(p in 0.05f64..0.5, seed in 0u64..100) {
        // Single qubit, reset → noisy → measure: the detector fire rate must
        // match the channel probability to within Monte-Carlo error.
        let q = QubitId::new(0);
        let mut circuit = NoisyCircuit::new();
        circuit.push_gate(Instruction::Reset(q));
        circuit.push_noise(NoiseChannel::BitFlip { qubit: q, p });
        circuit.push_gate(Instruction::Measure(q));
        circuit.add_detector(Detector::new(vec![MeasurementRef::new(q, 0)]));

        let shots = 4096;
        let samples = sample_detectors(&circuit, shots, seed).expect("annotations are valid");
        let rate = samples.detector_fire_counts()[0] as f64 / shots as f64;
        let sigma = (p * (1.0 - p) / shots as f64).sqrt();
        prop_assert!(
            (rate - p).abs() < 6.0 * sigma + 1e-3,
            "rate {rate} too far from p {p}"
        );
    }
}
