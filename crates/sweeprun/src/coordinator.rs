//! The coordinator: drives one job to completion over the point store.
//!
//! A run owns the [`Scheduler`] and the [`PointStore`] and feeds points to
//! two kinds of workers at once:
//!
//! - **local worker threads** (in-process), for the plain `sweep run` path;
//! - **remote workers** over TCP JSON-lines (see the protocol below), for
//!   the distributed path.
//!
//! Completion ordering is persist-then-acknowledge: a point's file is
//! written (atomically) *before* the scheduler marks it done, so a crash in
//! between merely leaves the point pending — it is recomputed, never lost
//! half-recorded.
//!
//! # Wire protocol (one JSON request line → one JSON response line)
//!
//! | request | response |
//! |---|---|
//! | `{"cmd":"hello","proto":1}` | `{"ok":true,"worker_id":W,"lease_timeout_ms":T,"job":<descriptor>}` |
//! | `{"cmd":"lease","worker_id":W}` | `{"point":{"index":I,"seed":S}}` · `{"wait_ms":M}` · `{"finished":true}` |
//! | `{"cmd":"complete","worker_id":W,"index":I,"payload":P}` | `{"ok":true,"duplicate":B}` |
//! | `{"cmd":"fail","worker_id":W,"index":I,"error":E}` | `{"ok":true,"disposition":"retry"\|"exhausted"\|"stale"}` |
//! | `{"cmd":"heartbeat","worker_id":W}` | `{"ok":true}` |
//! | `{"cmd":"status"}` | the same snapshot as `status.json` (incl. a `telemetry` object) |
//! | `{"cmd":"status","format":"text"}` | `{"ok":true,"text":<Prometheus-style exposition>}` |
//!
//! Any error is `{"error":"..."}`. Heartbeats may arrive on a second
//! connection so long evaluations don't starve the liveness signal.

use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use qccd_telemetry::{
    snapshot_to_json, snapshot_to_text, Counter, Registry, Stage, TelemetryConfig,
};
use serde_json::Value;

use crate::job::{JobDescriptor, PointJob};
use crate::net::JsonLines;
use crate::scheduler::{
    CompleteReply, FailReply, LeaseReply, Progress, Scheduler, SchedulerConfig,
};
use crate::store::PointStore;

/// Protocol version spoken by [`run_job`] and `run_worker`.
pub const PROTOCOL_VERSION: u64 = 1;

/// How long a worker told to wait should sleep before re-asking.
const WAIT_MS: u64 = 100;

/// Configuration for one coordinator run.
pub struct CoordinatorConfig {
    /// Pre-bound listener for remote workers (`None` = local-only run).
    /// Pre-binding lets callers use port 0 and learn the real address
    /// before workers start.
    pub listener: Option<TcpListener>,
    /// In-process evaluation threads.
    pub local_workers: usize,
    /// Lease/retry tuning.
    pub scheduler: SchedulerConfig,
    /// How often to reprint progress and rewrite `status.json`.
    pub progress_interval: Duration,
    /// Suppress the live progress line on stderr.
    pub quiet: bool,
    /// Telemetry registry configuration for this run (stage timings, point
    /// counters; exposed through `status.json` and the `status` command).
    pub telemetry: TelemetryConfig,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            listener: None,
            local_workers: 1,
            scheduler: SchedulerConfig::default(),
            progress_interval: Duration::from_secs(2),
            quiet: true,
            telemetry: TelemetryConfig::default(),
        }
    }
}

/// What a finished run did.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Points evaluated during this run.
    pub computed: usize,
    /// Points already in the store when the run started.
    pub resumed: usize,
    /// Final progress (includes requeue/retry/duplicate counters).
    pub progress: Progress,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

/// Renders the canonical status snapshot — the shape written to
/// `status.json`, served for `{"cmd":"status"}`, and printed by
/// `artifacts sweep status`.
pub fn snapshot_json(
    job: &JobDescriptor,
    progress: &Progress,
    computed: usize,
    elapsed_secs: f64,
) -> Value {
    let rate = if elapsed_secs > 0.0 {
        computed as f64 / elapsed_secs
    } else {
        0.0
    };
    let outstanding = progress.pending + progress.leased;
    let eta_secs = if rate > 0.0 {
        outstanding as f64 / rate
    } else {
        0.0
    };
    let workers: Vec<Value> = progress
        .workers
        .iter()
        .map(|view| {
            let worker_rate = if elapsed_secs > 0.0 {
                view.completed as f64 / elapsed_secs
            } else {
                0.0
            };
            serde_json::json!({
                "id": view.worker,
                "completed": view.completed,
                "points_per_sec": worker_rate,
                "ewma_points_per_sec": view.ewma_points_per_sec,
                "since_heartbeat_secs": view.since_last_seen_secs,
            })
        })
        .collect();
    serde_json::json!({
        "job": { "name": job.name, "hash": job.hash },
        "total": progress.total() as u64,
        "done": progress.done as u64,
        "leased": progress.leased as u64,
        "pending": progress.pending as u64,
        "failed": progress.failed as u64,
        "requeues": progress.counters.requeues,
        "retries": progress.counters.retries,
        "duplicates": progress.counters.duplicates,
        "computed_this_run": computed as u64,
        "elapsed_secs": elapsed_secs,
        "uptime_secs": elapsed_secs,
        "points_per_sec": rate,
        "eta_secs": eta_secs,
        "workers": Value::from(workers),
    })
}

/// One-line human rendering of a snapshot, for the live progress display.
pub fn render_progress_line(snapshot: &Value) -> String {
    let get = |key: &str| snapshot.get(key).and_then(Value::as_u64).unwrap_or(0);
    let rate = snapshot
        .get("points_per_sec")
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    let eta = snapshot
        .get("eta_secs")
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    let uptime = snapshot
        .get("uptime_secs")
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    format!(
        "sweep: {}/{} done, {} leased, {} pending, {} failed | {:.2} pts/s, ETA {:.0}s, up {:.0}s | requeues {}, retries {}, duplicates {}",
        get("done"),
        get("total"),
        get("leased"),
        get("pending"),
        get("failed"),
        rate,
        eta,
        uptime,
        get("requeues"),
        get("retries"),
        get("duplicates"),
    )
}

/// Per-worker rendering of a snapshot's `workers` array — one line per
/// worker with completions, EWMA throughput and heartbeat age. Empty when
/// the snapshot carries no worker rows (e.g. a pre-telemetry `status.json`).
pub fn render_worker_lines(snapshot: &Value) -> Vec<String> {
    let Some(workers) = snapshot.get("workers").and_then(Value::as_array) else {
        return Vec::new();
    };
    workers
        .iter()
        .map(|worker| {
            let read_u64 = |key: &str| worker.get(key).and_then(Value::as_u64).unwrap_or(0);
            let id = read_u64("id");
            let completed = read_u64("completed");
            let ewma = worker
                .get("ewma_points_per_sec")
                .and_then(Value::as_f64)
                .unwrap_or(0.0);
            match worker.get("since_heartbeat_secs").and_then(Value::as_f64) {
                Some(age) => format!(
                    "  worker {id}: {completed} done, {ewma:.2} pts/s (ewma), \
                     heartbeat {age:.1}s ago"
                ),
                None => format!("  worker {id}: {completed} done"),
            }
        })
        .collect()
}

/// Everything a connection handler or local worker needs, borrowed for the
/// duration of one run.
struct RunContext<'a> {
    job: &'a dyn PointJob,
    store: &'a PointStore,
    scheduler: Mutex<Scheduler>,
    shutdown: AtomicBool,
    lease_timeout_ms: u64,
    /// Points already on disk when the run started (resume credit).
    resumed: usize,
    start: Instant,
    /// Unified telemetry for this run: stage timings plus point counters,
    /// exposed through `status.json` and the `status` command.
    telemetry: Registry,
    stage_lease: Stage,
    stage_eval: Stage,
    stage_persist: Stage,
    points_completed: Counter,
    eval_failures: Counter,
}

impl<'a> RunContext<'a> {
    fn new(
        job: &'a dyn PointJob,
        store: &'a PointStore,
        scheduler: Scheduler,
        lease_timeout_ms: u64,
        resumed: usize,
        start: Instant,
        telemetry: Registry,
    ) -> Self {
        RunContext {
            job,
            store,
            scheduler: Mutex::new(scheduler),
            shutdown: AtomicBool::new(false),
            lease_timeout_ms,
            resumed,
            start,
            stage_lease: telemetry.stage("sweep.stage.lease"),
            stage_eval: telemetry.stage("sweep.stage.eval"),
            stage_persist: telemetry.stage("sweep.stage.persist"),
            points_completed: telemetry.counter("sweep.points_completed"),
            eval_failures: telemetry.counter("sweep.eval_failures"),
            telemetry,
        }
    }

    /// Mirrors the progress split into registry gauges so the unified
    /// snapshot (JSON and text exposition) carries it.
    fn update_progress_gauges(&self, progress: &Progress) {
        self.telemetry
            .gauge("sweep.points_done")
            .set(progress.done as i64);
        self.telemetry
            .gauge("sweep.points_leased")
            .set(progress.leased as i64);
        self.telemetry
            .gauge("sweep.points_pending")
            .set(progress.pending as i64);
        self.telemetry
            .gauge("sweep.points_failed")
            .set(progress.failed as i64);
        self.telemetry
            .gauge("sweep.workers")
            .set(progress.workers.len() as i64);
    }

    fn record_eval_failure(&self, worker: u64, index: usize, error: &str) {
        self.eval_failures.inc();
        let (reply, attempts) = {
            let mut scheduler = self.scheduler.lock().unwrap();
            let reply = scheduler.fail(index, worker, Instant::now());
            (reply, scheduler.attempts(index))
        };
        if reply == FailReply::Exhausted {
            if let Err(e) = self.store.record_failure(index, error, attempts) {
                eprintln!("sweep: recording failure for point {index} failed: {e}");
            }
        }
    }

    /// A local in-process worker: lease → eval → persist → complete.
    fn local_worker(&self) {
        let worker = self
            .scheduler
            .lock()
            .unwrap()
            .register_worker(Instant::now());
        loop {
            if self.shutdown.load(Ordering::Relaxed) {
                return;
            }
            let span = self.stage_lease.start();
            let reply = self.scheduler.lock().unwrap().lease(worker, Instant::now());
            span.finish(1);
            match reply {
                LeaseReply::Point(index) => {
                    let seed = self.store.seed(index);
                    let span = self.stage_eval.start();
                    let evaluated = self.job.eval(index, seed);
                    span.finish(1);
                    match evaluated {
                        Ok(payload) => {
                            let span = self.stage_persist.start();
                            let stored = self.store.store_point(index, &payload);
                            span.finish(1);
                            match stored {
                                Ok(()) => {
                                    self.scheduler.lock().unwrap().complete(
                                        index,
                                        worker,
                                        Instant::now(),
                                    );
                                    self.points_completed.inc();
                                }
                                Err(e) => self.record_eval_failure(worker, index, &e),
                            }
                        }
                        Err(error) => self.record_eval_failure(worker, index, &error),
                    }
                }
                LeaseReply::Wait => std::thread::sleep(Duration::from_millis(20)),
                LeaseReply::Finished => return,
            }
        }
    }

    /// Serves one remote connection until EOF, error, or shutdown.
    fn serve_connection(&self, stream: std::net::TcpStream) {
        let mut lines = match JsonLines::new(stream) {
            Ok(lines) => lines,
            Err(e) => {
                eprintln!("sweep: connection setup failed: {e}");
                return;
            }
        };
        loop {
            let request = match lines.recv(&self.shutdown) {
                Ok(Some(request)) => request,
                Ok(None) => return,
                Err(e) => {
                    let _ = lines.send(&serde_json::json!({ "error": e }));
                    return;
                }
            };
            if lines.send(&self.handle_request(&request)).is_err() {
                return;
            }
        }
    }

    fn handle_request(&self, request: &Value) -> Value {
        let err = |message: String| serde_json::json!({ "error": message });
        let Some(cmd) = request.get("cmd").and_then(Value::as_str) else {
            return err("request needs a string `cmd`".to_string());
        };
        let worker_id = || -> Result<u64, Value> {
            request
                .get("worker_id")
                .and_then(Value::as_u64)
                .ok_or_else(|| err(format!("`{cmd}` needs a numeric `worker_id`")))
        };
        let point_index = || -> Result<usize, Value> {
            let index = request
                .get("index")
                .and_then(Value::as_u64)
                .ok_or_else(|| err(format!("`{cmd}` needs a numeric `index`")))?
                as usize;
            if index >= self.store.num_points() {
                return Err(err(format!(
                    "index {index} out of range for {} points",
                    self.store.num_points()
                )));
            }
            Ok(index)
        };
        match cmd {
            "hello" => {
                if request.get("proto").and_then(Value::as_u64) != Some(PROTOCOL_VERSION) {
                    return err(format!("unsupported protocol; want {PROTOCOL_VERSION}"));
                }
                let worker = self
                    .scheduler
                    .lock()
                    .unwrap()
                    .register_worker(Instant::now());
                serde_json::json!({
                    "ok": true,
                    "worker_id": worker,
                    "lease_timeout_ms": self.lease_timeout_ms,
                    "job": self.job.descriptor().to_json(),
                })
            }
            "lease" => {
                let worker = match worker_id() {
                    Ok(worker) => worker,
                    Err(response) => return response,
                };
                let span = self.stage_lease.start();
                let reply = self.scheduler.lock().unwrap().lease(worker, Instant::now());
                span.finish(1);
                match reply {
                    LeaseReply::Point(index) => serde_json::json!({
                        "point": {
                            "index": index as u64,
                            "seed": Value::from(self.store.seed(index)),
                        }
                    }),
                    LeaseReply::Wait => serde_json::json!({ "wait_ms": WAIT_MS }),
                    LeaseReply::Finished => serde_json::json!({ "finished": true }),
                }
            }
            "complete" => {
                let worker = match worker_id() {
                    Ok(worker) => worker,
                    Err(response) => return response,
                };
                let index = match point_index() {
                    Ok(index) => index,
                    Err(response) => return response,
                };
                let Some(payload) = request.get("payload") else {
                    return err("`complete` needs a `payload`".to_string());
                };
                // Persist before acknowledging; a redundant write of a
                // duplicate is byte-identical and therefore harmless.
                let span = self.stage_persist.start();
                let stored = self.store.store_point(index, payload);
                span.finish(1);
                if let Err(e) = stored {
                    return err(e);
                }
                let reply = self
                    .scheduler
                    .lock()
                    .unwrap()
                    .complete(index, worker, Instant::now());
                if reply == CompleteReply::Accepted {
                    self.points_completed.inc();
                }
                serde_json::json!({
                    "ok": true,
                    "duplicate": reply == CompleteReply::Duplicate,
                })
            }
            "fail" => {
                let worker = match worker_id() {
                    Ok(worker) => worker,
                    Err(response) => return response,
                };
                let index = match point_index() {
                    Ok(index) => index,
                    Err(response) => return response,
                };
                let error = request
                    .get("error")
                    .and_then(Value::as_str)
                    .unwrap_or("unspecified worker error");
                self.eval_failures.inc();
                let (reply, attempts) = {
                    let mut scheduler = self.scheduler.lock().unwrap();
                    let reply = scheduler.fail(index, worker, Instant::now());
                    (reply, scheduler.attempts(index))
                };
                if reply == FailReply::Exhausted {
                    if let Err(e) = self.store.record_failure(index, error, attempts) {
                        return err(e);
                    }
                }
                let disposition = match reply {
                    FailReply::Retry => "retry",
                    FailReply::Exhausted => "exhausted",
                    FailReply::Stale => "stale",
                };
                serde_json::json!({ "ok": true, "disposition": disposition })
            }
            "heartbeat" => {
                let worker = match worker_id() {
                    Ok(worker) => worker,
                    Err(response) => return response,
                };
                self.scheduler
                    .lock()
                    .unwrap()
                    .heartbeat(worker, Instant::now());
                serde_json::json!({ "ok": true })
            }
            "status" => {
                let progress = self.scheduler.lock().unwrap().progress(Instant::now());
                let computed = progress.done.saturating_sub(self.resumed);
                self.update_progress_gauges(&progress);
                if request.get("format").and_then(Value::as_str) == Some("text") {
                    // Prometheus-style text exposition of the unified
                    // registry, mirroring the service's `metrics` command.
                    let text = snapshot_to_text(&self.telemetry.snapshot(), "qccd_sweep");
                    return serde_json::json!({ "ok": true, "text": text });
                }
                let mut snapshot = snapshot_json(
                    &self.job.descriptor(),
                    &progress,
                    computed,
                    self.start.elapsed().as_secs_f64(),
                );
                snapshot["telemetry"] = snapshot_to_json(&self.telemetry.snapshot());
                snapshot
            }
            other => err(format!("unknown command `{other}`")),
        }
    }
}

/// Runs `job` to completion (or terminal failure) against `store`.
///
/// Missing points are taken from the store, so calling this on a partially
/// filled store *is* resume. Returns once every point is done or has
/// exhausted its retries.
///
/// # Errors
///
/// Fails on store I/O errors or a configuration that can make no progress
/// (work outstanding but no local workers and no listener).
pub fn run_job(
    job: &dyn PointJob,
    store: &PointStore,
    config: CoordinatorConfig,
) -> Result<RunSummary, String> {
    let start = Instant::now();
    let missing = store.missing_indices();
    let resumed = store.num_points() - missing.len();
    if missing.is_empty() {
        let mut scheduler = Scheduler::new(Vec::new(), resumed, config.scheduler);
        let progress = scheduler.progress(Instant::now());
        let mut snapshot = snapshot_json(&job.descriptor(), &progress, 0, 0.0);
        // Keep the status shape uniform: an already-complete run still
        // carries a (trivial) telemetry object.
        snapshot["telemetry"] = snapshot_to_json(&Registry::new(config.telemetry).snapshot());
        store.write_status(&snapshot)?;
        return Ok(RunSummary {
            computed: 0,
            resumed,
            progress,
            elapsed: start.elapsed(),
        });
    }
    if config.local_workers == 0 && config.listener.is_none() {
        return Err(format!(
            "{} points outstanding but no local workers and no listener",
            missing.len()
        ));
    }

    let context = RunContext::new(
        job,
        store,
        Scheduler::new(missing, resumed, config.scheduler),
        config.scheduler.lease_timeout.as_millis() as u64,
        resumed,
        start,
        Registry::new(config.telemetry),
    );
    let context = &context;

    let run = std::thread::scope(|scope| {
        let body = || -> Result<(), String> {
            for _ in 0..config.local_workers {
                scope.spawn(move || context.local_worker());
            }
            if let Some(listener) = &config.listener {
                listener
                    .set_nonblocking(true)
                    .map_err(|e| format!("listener nonblocking: {e}"))?;
                scope.spawn(move || {
                    while !context.shutdown.load(Ordering::Relaxed) {
                        match listener.accept() {
                            Ok((stream, _addr)) => {
                                scope.spawn(move || context.serve_connection(stream));
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(5));
                            }
                            Err(e) => {
                                eprintln!("sweep: accept failed: {e}");
                                std::thread::sleep(Duration::from_millis(50));
                            }
                        }
                    }
                });
            }

            // Progress loop doubles as the completion detector.
            let mut last_report: Option<Instant> = None;
            loop {
                let progress = context.scheduler.lock().unwrap().progress(Instant::now());
                let finished = progress.finished();
                if finished || last_report.is_none_or(|t| t.elapsed() >= config.progress_interval) {
                    context.update_progress_gauges(&progress);
                    let mut snapshot = snapshot_json(
                        &job.descriptor(),
                        &progress,
                        progress.done.saturating_sub(resumed),
                        start.elapsed().as_secs_f64(),
                    );
                    snapshot["telemetry"] = snapshot_to_json(&context.telemetry.snapshot());
                    store.write_status(&snapshot)?;
                    if !config.quiet {
                        eprintln!("{}", render_progress_line(&snapshot));
                    }
                    last_report = Some(Instant::now());
                }
                if finished {
                    return Ok(());
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        };
        let result = body();
        // Always release the worker/acceptor/handler threads, including on
        // the error paths, or the scope join would hang.
        context.shutdown.store(true, Ordering::Relaxed);
        result
    });
    run?;

    let progress = context.scheduler.lock().unwrap().progress(Instant::now());
    Ok(RunSummary {
        computed: progress.done.saturating_sub(resumed),
        resumed,
        progress,
        elapsed: start.elapsed(),
    })
}
