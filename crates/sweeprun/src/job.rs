//! The job abstraction the orchestration tier runs.
//!
//! A [`PointJob`] is a fixed grid of independently evaluable points with
//! deterministic per-point seeds. The orchestrator never looks inside a
//! point: it hands `(index, seed)` pairs to [`PointJob::eval`] and persists
//! the returned JSON payload under the point's key, so any domain (LER
//! sweeps, timing grids, calibration scans) plugs in by implementing the
//! trait and providing a [`JobFactory`] that rebuilds the job on a remote
//! worker from the wire descriptor.

use serde_json::Value;

/// The wire identity of a job: enough for a remote worker (or a resumed
/// coordinator) to rebuild the exact same [`PointJob`].
#[derive(Debug, Clone, PartialEq)]
pub struct JobDescriptor {
    /// Job family understood by the [`JobFactory`] (e.g.
    /// `"experiment_spec"`).
    pub kind: String,
    /// Human-readable job name (e.g. the spec's registry name).
    pub name: String,
    /// Content hash of the job definition. Two jobs with the same hash
    /// must evaluate every point bit-identically; the hash keys the
    /// [point store](crate::store::PointStore) directory and guards
    /// against version skew between coordinator and workers.
    pub hash: String,
    /// The job definition itself (e.g. the full experiment-spec JSON).
    pub payload: Value,
}

impl JobDescriptor {
    /// Serializes the descriptor for the wire / the store manifest.
    pub fn to_json(&self) -> Value {
        serde_json::json!({
            "kind": self.kind,
            "name": self.name,
            "hash": self.hash,
            "payload": self.payload,
        })
    }

    /// Parses a descriptor back from its JSON encoding.
    ///
    /// # Errors
    ///
    /// Returns a message on missing or ill-typed fields.
    pub fn from_json(value: &Value) -> Result<Self, String> {
        let text = |key: &str| -> Result<String, String> {
            value
                .get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("job descriptor needs a string `{key}`"))
        };
        Ok(JobDescriptor {
            kind: text("kind")?,
            name: text("name")?,
            hash: text("hash")?,
            payload: value
                .get("payload")
                .cloned()
                .ok_or("job descriptor needs a `payload`")?,
        })
    }
}

/// A grid of independently evaluable points (see the [module docs](self)).
///
/// # Contract
///
/// `eval(index, seed)` must be a pure function of `(descriptor, index,
/// seed)`: bit-identical on every host, any number of times. The
/// orchestrator relies on this for idempotent duplicate resolution (two
/// workers completing the same point must agree) and for resume
/// bit-identity (a recomputed point equals the one a killed run lost).
pub trait PointJob: Send + Sync {
    /// The job's wire identity.
    fn descriptor(&self) -> JobDescriptor;

    /// Number of points in the grid.
    fn num_points(&self) -> usize;

    /// Deterministic seed of the point at `index`.
    fn point_seed(&self, index: usize) -> u64;

    /// Evaluates one point into its JSON result payload.
    ///
    /// # Errors
    ///
    /// An `Err` marks the point *failed* (subject to the scheduler's
    /// bounded retry); domain-level soft failures that should surface in
    /// the merged output (e.g. a compile error rendered into a table row)
    /// belong *inside* an `Ok` payload instead.
    fn eval(&self, index: usize, seed: u64) -> Result<Value, String>;
}

/// Rebuilds a [`PointJob`] from a wire descriptor — how a remote worker
/// materializes the job its coordinator is running.
pub type JobFactory<'a> = dyn Fn(&JobDescriptor) -> Result<Box<dyn PointJob>, String> + Sync + 'a;

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// A deterministic toy job for orchestrator tests: point `i` evaluates
    /// to `{"index": i, "value": seed ^ i}`.
    #[derive(Debug, Clone)]
    pub struct MockJob {
        /// Grid size.
        pub points: usize,
        /// Indices whose evaluation fails (every attempt).
        pub poisoned: Vec<usize>,
    }

    impl MockJob {
        pub fn new(points: usize) -> Self {
            MockJob {
                points,
                poisoned: Vec::new(),
            }
        }

        pub fn descriptor_for(points: usize) -> JobDescriptor {
            JobDescriptor {
                kind: "mock".into(),
                name: "mock".into(),
                hash: format!("{points:016x}"),
                payload: serde_json::json!({ "points": points as u64 }),
            }
        }
    }

    impl PointJob for MockJob {
        fn descriptor(&self) -> JobDescriptor {
            MockJob::descriptor_for(self.points)
        }

        fn num_points(&self) -> usize {
            self.points
        }

        fn point_seed(&self, index: usize) -> u64 {
            (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5bd1_e995
        }

        fn eval(&self, index: usize, seed: u64) -> Result<Value, String> {
            if self.poisoned.contains(&index) {
                return Err(format!("point {index} is poisoned"));
            }
            Ok(serde_json::json!({
                "index": index as u64,
                "value": seed ^ index as u64,
            }))
        }
    }

    #[test]
    fn descriptor_round_trips() {
        let descriptor = MockJob::descriptor_for(4);
        let parsed = JobDescriptor::from_json(&descriptor.to_json()).unwrap();
        assert_eq!(parsed, descriptor);
        assert!(JobDescriptor::from_json(&serde_json::json!({"kind": "x"})).is_err());
    }
}
