//! # qccd-sweeprun
//!
//! Distributed, resumable sweep orchestration: the execution tier that
//! turns week-long below-threshold extrapolation sweeps into
//! interruptible, distributable jobs (ROADMAP item 3).
//!
//! Three layers, bottom up:
//!
//! - [`store::PointStore`] — a content-hash-keyed persistent store of
//!   per-point results (key = job hash × grid index × per-point seed) with
//!   atomic temp-then-rename writes. A killed run resumes by recomputing
//!   only the missing points; because every point payload is a pure
//!   function of `(job, index, seed)`, the merged artifact is bit-identical
//!   to an uninterrupted single-process run.
//! - [`scheduler::Scheduler`] — the coordinator's in-memory lease ledger:
//!   lease timeout → requeue, bounded retry with exponential backoff,
//!   idempotent duplicate-completion resolution by point key, and progress
//!   counters (`done/leased/pending/failed`, requeues, retries,
//!   duplicates, per-worker throughput).
//! - [`coordinator`] / [`worker`] — a TCP JSON-lines protocol (same
//!   patterns as the service crate's net layer) connecting one coordinator
//!   to any number of worker processes, plus in-process local workers for
//!   the single-host path.
//!
//! The crate is deliberately domain-agnostic: anything that can describe
//! itself as a [`job::PointJob`] — a fixed grid of points with
//! deterministic seeds and JSON-serializable results — can be stored,
//! scheduled, distributed, and resumed. The bench crate supplies the
//! experiment-spec flavored job on top.

#![warn(missing_docs)]

pub mod coordinator;
pub mod job;
mod net;
pub mod scheduler;
pub mod store;
pub mod worker;

pub use coordinator::{
    render_progress_line, render_worker_lines, run_job, snapshot_json, CoordinatorConfig,
    RunSummary, PROTOCOL_VERSION,
};
pub use job::{JobDescriptor, JobFactory, PointJob};
pub use scheduler::{Progress, Scheduler, SchedulerConfig, WorkerView};
pub use store::{write_atomic, PointStore, StoreState};
pub use worker::{query_status, run_worker, WorkerOptions, WorkerSummary};

#[cfg(test)]
mod e2e_tests {
    use std::net::TcpListener;
    use std::path::PathBuf;
    use std::time::Duration;

    use serde_json::Value;

    use crate::job::testutil::MockJob;
    use crate::job::{JobDescriptor, PointJob};
    use crate::{
        run_job, run_worker, CoordinatorConfig, PointStore, SchedulerConfig, WorkerOptions,
    };

    fn temp_base(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sweeprun-e2e-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn open_store(base: &std::path::Path, job: &MockJob) -> PointStore {
        let seeds = (0..job.num_points()).map(|i| job.point_seed(i)).collect();
        PointStore::open(base, &job.descriptor(), seeds).unwrap().0
    }

    fn mock_factory(descriptor: &JobDescriptor) -> Result<Box<dyn PointJob>, String> {
        if descriptor.kind != "mock" {
            return Err(format!("unknown job kind {}", descriptor.kind));
        }
        let points = descriptor
            .payload
            .get("points")
            .and_then(Value::as_u64)
            .ok_or("mock payload lacks points")? as usize;
        Ok(Box::new(MockJob::new(points)))
    }

    fn fast_scheduler() -> SchedulerConfig {
        SchedulerConfig {
            lease_timeout: Duration::from_millis(500),
            max_attempts: 3,
            backoff_base: Duration::from_millis(10),
        }
    }

    #[test]
    fn local_run_completes_and_resumes_with_identical_payloads() {
        let base = temp_base("local");
        let job = MockJob::new(12);

        let store = open_store(&base, &job);
        let summary = run_job(
            &job,
            &store,
            CoordinatorConfig {
                local_workers: 3,
                scheduler: fast_scheduler(),
                ..CoordinatorConfig::default()
            },
        )
        .unwrap();
        assert_eq!((summary.computed, summary.resumed), (12, 0));
        let first: Vec<Value> = (0..12)
            .map(|i| store.load_point(i).unwrap().unwrap())
            .collect();

        // Delete a few points, rerun: only those recompute, bit-identically.
        for index in [2usize, 7, 11] {
            std::fs::remove_file(
                store
                    .root()
                    .join("points")
                    .join(format!("point-{index:06}-{:016x}.json", store.seed(index))),
            )
            .unwrap();
        }
        let store = open_store(&base, &job);
        let summary = run_job(
            &job,
            &store,
            CoordinatorConfig {
                local_workers: 2,
                scheduler: fast_scheduler(),
                ..CoordinatorConfig::default()
            },
        )
        .unwrap();
        assert_eq!((summary.computed, summary.resumed), (3, 9));
        for (index, payload) in first.iter().enumerate() {
            assert_eq!(store.load_point(index).unwrap().as_ref(), Some(payload));
        }
        let status = store.read_status().unwrap();
        assert_eq!(status.get("done").and_then(Value::as_u64), Some(12));
        assert_eq!(status.get("pending").and_then(Value::as_u64), Some(0));
        // The status snapshot carries the unified telemetry object plus
        // per-worker liveness columns.
        assert!(status.get("uptime_secs").and_then(Value::as_f64).is_some());
        let telemetry = &status["telemetry"];
        assert_eq!(
            telemetry["counters"]["sweep.points_completed"].as_u64(),
            Some(3),
            "resume run computed 3 points"
        );
        assert!(telemetry["histograms"]["sweep.stage.eval_us"]["count"]
            .as_u64()
            .is_some());
        let workers = status.get("workers").and_then(Value::as_array).unwrap();
        assert_eq!(workers.len(), 2);
        for worker in workers {
            assert!(worker
                .get("ewma_points_per_sec")
                .and_then(Value::as_f64)
                .is_some());
            assert!(worker
                .get("since_heartbeat_secs")
                .and_then(Value::as_f64)
                .is_some());
        }
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn tcp_workers_complete_a_distributed_run() {
        let base = temp_base("tcp");
        let job = MockJob::new(10);
        let store = open_store(&base, &job);

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();

        std::thread::scope(|scope| {
            let store = &store;
            let job = &job;
            let coordinator = scope.spawn(move || {
                run_job(
                    job,
                    store,
                    CoordinatorConfig {
                        listener: Some(listener),
                        local_workers: 0,
                        scheduler: fast_scheduler(),
                        ..CoordinatorConfig::default()
                    },
                )
            });
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let addr = addr.clone();
                    scope.spawn(move || run_worker(&addr, &mock_factory, WorkerOptions::default()))
                })
                .collect();

            let summary = coordinator.join().unwrap().unwrap();
            assert_eq!((summary.computed, summary.resumed), (10, 0));
            let completed: usize = workers
                .into_iter()
                .map(|w| w.join().unwrap().unwrap().completed)
                .sum();
            assert_eq!(completed, 10);
        });

        // Distributed payloads match a pure local evaluation bit for bit.
        for index in 0..10 {
            let expected = job.eval(index, job.point_seed(index)).unwrap();
            assert_eq!(store.load_point(index).unwrap(), Some(expected));
        }
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn poisoned_points_retry_then_fail_terminally() {
        let base = temp_base("poison");
        let job = MockJob {
            points: 4,
            poisoned: vec![1],
        };
        let store = open_store(&base, &job);
        let summary = run_job(
            &job,
            &store,
            CoordinatorConfig {
                local_workers: 2,
                scheduler: fast_scheduler(),
                ..CoordinatorConfig::default()
            },
        )
        .unwrap();
        assert_eq!(summary.progress.failed, 1);
        assert_eq!(summary.progress.done, 3);
        assert_eq!(summary.progress.counters.retries, 2);
        let failures = store.failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].0, 1);
        assert!(failures[0].1.contains("poisoned"));
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn version_skew_is_rejected_by_the_worker() {
        let base = temp_base("skew");
        let job = MockJob::new(3);
        let store = open_store(&base, &job);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();

        std::thread::scope(|scope| {
            let store = &store;
            let job = &job;
            let coordinator = scope.spawn(move || {
                run_job(
                    job,
                    store,
                    CoordinatorConfig {
                        listener: Some(listener),
                        local_workers: 1, // keeps the run finishing regardless
                        scheduler: fast_scheduler(),
                        ..CoordinatorConfig::default()
                    },
                )
            });
            // A factory that rebuilds a *different* grid must be refused.
            let skewed = |_: &JobDescriptor| -> Result<Box<dyn PointJob>, String> {
                Ok(Box::new(MockJob::new(999)))
            };
            let err = run_worker(&addr, &skewed, WorkerOptions::default()).unwrap_err();
            assert!(err.contains("version skew"), "unexpected error: {err}");
            coordinator.join().unwrap().unwrap();
        });
        let _ = std::fs::remove_dir_all(&base);
    }
}
