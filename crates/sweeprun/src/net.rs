//! Minimal JSON-lines framing over TCP, shared by coordinator and worker.
//!
//! One request per line, one response per line, UTF-8 JSON. Reads poll a
//! shutdown flag (server side) or a hard deadline (client side) every
//! `READ_POLL`, the same pattern as the service crate's net layer, so
//! connection threads wind down promptly when the run finishes.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use serde_json::Value;

/// Granularity at which blocked reads re-check shutdown / the deadline.
pub(crate) const READ_POLL: Duration = Duration::from_millis(200);

/// Why a receive attempt produced no value.
enum Pause {
    /// The read timed out for one poll slice; caller decides whether to
    /// keep waiting.
    Slice,
    /// The peer closed the connection.
    Eof,
}

/// A TCP connection speaking line-delimited JSON.
#[derive(Debug)]
pub(crate) struct JsonLines {
    stream: TcpStream,
    buffer: Vec<u8>,
}

impl JsonLines {
    /// Wraps a connected stream, enabling `TCP_NODELAY` and the polling
    /// read timeout.
    pub(crate) fn new(stream: TcpStream) -> Result<Self, String> {
        stream
            .set_nodelay(true)
            .map_err(|e| format!("set_nodelay: {e}"))?;
        stream
            .set_read_timeout(Some(READ_POLL))
            .map_err(|e| format!("set_read_timeout: {e}"))?;
        Ok(JsonLines {
            stream,
            buffer: Vec::new(),
        })
    }

    /// Sends one JSON value as a single line.
    pub(crate) fn send(&mut self, value: &Value) -> Result<(), String> {
        let mut line = value.to_string();
        line.push('\n');
        self.stream
            .write_all(line.as_bytes())
            .map_err(|e| format!("send: {e}"))
    }

    /// Pulls the next complete line out of the buffer, if one is there.
    fn buffered_line(&mut self) -> Result<Option<Value>, String> {
        while let Some(pos) = self.buffer.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.buffer.drain(..=pos).collect();
            let text = String::from_utf8(line).map_err(|e| format!("non-UTF-8 line: {e}"))?;
            let text = text.trim();
            if text.is_empty() {
                continue;
            }
            return serde_json::from_str(text)
                .map(Some)
                .map_err(|e| format!("malformed line: {e}"));
        }
        Ok(None)
    }

    /// One poll slice: a value, or why there was none.
    fn poll(&mut self) -> Result<Result<Value, Pause>, String> {
        if let Some(value) = self.buffered_line()? {
            return Ok(Ok(value));
        }
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(0) => Ok(Err(Pause::Eof)),
            Ok(n) => {
                self.buffer.extend_from_slice(&chunk[..n]);
                match self.buffered_line()? {
                    Some(value) => Ok(Ok(value)),
                    None => Ok(Err(Pause::Slice)),
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(Err(Pause::Slice))
            }
            Err(e) => Err(format!("recv: {e}")),
        }
    }

    /// Receives the next JSON line, waiting until `shutdown` flips or the
    /// peer hangs up (both return `Ok(None)`). Malformed JSON is an error.
    pub(crate) fn recv(&mut self, shutdown: &AtomicBool) -> Result<Option<Value>, String> {
        loop {
            match self.poll()? {
                Ok(value) => return Ok(Some(value)),
                Err(Pause::Eof) => return Ok(None),
                Err(Pause::Slice) => {
                    if shutdown.load(Ordering::Relaxed) {
                        return Ok(None);
                    }
                }
            }
        }
    }

    /// Receives with a hard deadline — the client-side variant, where a
    /// silent coordinator is an error and EOF is `Ok(None)`.
    pub(crate) fn recv_timeout(&mut self, limit: Duration) -> Result<Option<Value>, String> {
        let start = Instant::now();
        loop {
            match self.poll()? {
                Ok(value) => return Ok(Some(value)),
                Err(Pause::Eof) => return Ok(None),
                Err(Pause::Slice) => {
                    if start.elapsed() >= limit {
                        return Err(format!("no response within {limit:?}"));
                    }
                }
            }
        }
    }
}
