//! Lease-based point scheduler: the coordinator's in-memory brain.
//!
//! Leases live only in coordinator memory — a killed coordinator loses them,
//! which is safe because on resume every point without a finished file in
//! the [store](crate::store::PointStore) simply starts over as pending.
//!
//! Failure semantics:
//! - a lease whose holder stops heartbeating past the timeout is *requeued*
//!   (counted, not charged against the point's retry budget);
//! - an evaluation error *retries* with exponential backoff until the
//!   bounded attempt budget is spent, then the point goes terminally
//!   `Failed`;
//! - completions are idempotent by point key — the first wins, later ones
//!   (e.g. from a worker that lost its lease but finished anyway) are
//!   counted as duplicates and discarded, which is sound because payloads
//!   are pure functions of `(job, index, seed)`.

use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Tuning knobs for lease and retry behaviour.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// A lease not refreshed (lease/complete/heartbeat) for this long is
    /// requeued.
    pub lease_timeout: Duration,
    /// Total evaluation attempts per point before it is terminally failed.
    pub max_attempts: u32,
    /// First retry delay; doubles per subsequent retry of the same point.
    pub backoff_base: Duration,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            lease_timeout: Duration::from_secs(60),
            max_attempts: 3,
            backoff_base: Duration::from_millis(250),
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum PointState {
    /// Eligible once `not_before` passes (backoff gate; `None` = now).
    Pending {
        not_before: Option<Instant>,
    },
    Leased {
        worker: u64,
        expires: Instant,
    },
    Done,
    Failed,
}

/// What the scheduler tells a worker asking for work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseReply {
    /// Evaluate this grid index.
    Point(usize),
    /// Nothing assignable right now (points leased out or backing off) —
    /// ask again shortly.
    Wait,
    /// Every point is done or terminally failed; the worker can exit.
    Finished,
}

/// Outcome of reporting a completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompleteReply {
    /// First completion for this point — the payload was kept.
    Accepted,
    /// The point was already done; the payload is redundant and discarded.
    Duplicate,
}

/// Outcome of reporting an evaluation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailReply {
    /// The point will be retried after backoff.
    Retry,
    /// The attempt budget is spent; the point is terminally failed.
    Exhausted,
    /// The point had already completed (e.g. via a duplicate lease); the
    /// failure report is moot.
    Stale,
}

/// Monotonic event counters surfaced in `artifacts sweep status`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerCounters {
    /// Leases reclaimed after their holder stopped heartbeating.
    pub requeues: u64,
    /// Evaluation failures that were handed back out for another attempt.
    pub retries: u64,
    /// Completions discarded because the point was already done.
    pub duplicates: u64,
}

/// Time constant of the per-worker completion-rate EWMA: contributions
/// decay with `exp(-age / 30 s)`, so the estimate tracks the last
/// half-minute of work instead of the whole run.
const EWMA_TAU_SECS: f64 = 30.0;

/// Live statistics of one registered worker.
#[derive(Debug, Clone, Copy)]
struct WorkerStats {
    completed: u64,
    /// Time-decayed completions/sec estimate (see [`EWMA_TAU_SECS`]).
    ewma_points_per_sec: f64,
    /// Previous completion instant (rate-sample baseline).
    last_complete: Option<Instant>,
    /// Last liveness signal: lease, completion, failure or heartbeat.
    last_seen: Instant,
}

impl WorkerStats {
    fn new(now: Instant) -> Self {
        WorkerStats {
            completed: 0,
            ewma_points_per_sec: 0.0,
            last_complete: None,
            last_seen: now,
        }
    }

    /// Folds one completion at `now` into the EWMA: the instantaneous rate
    /// `1/dt` since the previous completion, blended with a weight of
    /// `1 − exp(−dt/τ)` so irregular sample spacing decays correctly.
    fn note_complete(&mut self, now: Instant) {
        self.completed += 1;
        if let Some(last) = self.last_complete {
            let dt = now.saturating_duration_since(last).as_secs_f64().max(1e-9);
            let inst = 1.0 / dt;
            let alpha = 1.0 - (-dt / EWMA_TAU_SECS).exp();
            self.ewma_points_per_sec += alpha * (inst - self.ewma_points_per_sec);
        }
        self.last_complete = Some(now);
    }
}

/// One worker's row in a [`Progress`] snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerView {
    /// Coordinator-assigned worker id.
    pub worker: u64,
    /// Points this worker completed.
    pub completed: u64,
    /// Time-decayed completion rate (points/sec; 0 until the second
    /// completion).
    pub ewma_points_per_sec: f64,
    /// Seconds since the worker's last liveness signal (lease, completion,
    /// failure or heartbeat).
    pub since_last_seen_secs: f64,
}

/// Aggregate progress at one instant.
#[derive(Debug, Clone, Default)]
pub struct Progress {
    /// Finished points (includes those already on disk before this run).
    pub done: usize,
    /// Points currently leased to a worker.
    pub leased: usize,
    /// Points waiting for a worker (including backoff waits).
    pub pending: usize,
    /// Terminally failed points.
    pub failed: usize,
    /// Event counters.
    pub counters: SchedulerCounters,
    /// Completions per worker id, for per-worker throughput.
    pub per_worker: Vec<(u64, u64)>,
    /// Per-worker live statistics (EWMA throughput, heartbeat age), one row
    /// per registered worker in id order.
    pub workers: Vec<WorkerView>,
}

impl Progress {
    /// Grid size this progress describes.
    pub fn total(&self) -> usize {
        self.done + self.leased + self.pending + self.failed
    }

    /// True once no point can make further progress.
    pub fn finished(&self) -> bool {
        self.leased == 0 && self.pending == 0
    }
}

/// The coordinator's lease ledger over one job's missing points.
#[derive(Debug)]
pub struct Scheduler {
    config: SchedulerConfig,
    /// State per *missing* grid index; already-done points are only the
    /// `done_offset`.
    states: HashMap<usize, PointState>,
    /// Assignment order: ascending grid index for reproducible scheduling.
    order: Vec<usize>,
    attempts: HashMap<usize, u32>,
    counters: SchedulerCounters,
    workers: HashMap<u64, WorkerStats>,
    /// Points already finished before this run (resume credit).
    done_offset: usize,
    next_worker_id: u64,
}

impl Scheduler {
    /// Builds a scheduler over the still-missing grid indices; `done_offset`
    /// is how many points an earlier run already finished.
    pub fn new(missing: Vec<usize>, done_offset: usize, config: SchedulerConfig) -> Self {
        let mut order = missing;
        order.sort_unstable();
        let states = order
            .iter()
            .map(|&index| (index, PointState::Pending { not_before: None }))
            .collect();
        Scheduler {
            config,
            states,
            order,
            attempts: HashMap::new(),
            counters: SchedulerCounters::default(),
            workers: HashMap::new(),
            done_offset,
            next_worker_id: 0,
        }
    }

    /// Hands out a fresh worker id (used by the hello handshake).
    pub fn register_worker(&mut self, now: Instant) -> u64 {
        let id = self.next_worker_id;
        self.next_worker_id += 1;
        self.workers.insert(id, WorkerStats::new(now));
        id
    }

    /// Records a liveness signal from `worker` (any scheduler call counts).
    fn touch(&mut self, worker: u64, now: Instant) -> &mut WorkerStats {
        let stats = self
            .workers
            .entry(worker)
            .or_insert_with(|| WorkerStats::new(now));
        stats.last_seen = now;
        stats
    }

    /// Reclaims every lease whose deadline has passed.
    fn reap_expired(&mut self, now: Instant) {
        for state in self.states.values_mut() {
            if let PointState::Leased { expires, .. } = state {
                if *expires <= now {
                    *state = PointState::Pending { not_before: None };
                    self.counters.requeues += 1;
                }
            }
        }
    }

    /// Assigns the lowest eligible pending index to `worker`, refreshing the
    /// worker's other leases as a side effect (a lease request proves
    /// liveness just as well as a heartbeat).
    pub fn lease(&mut self, worker: u64, now: Instant) -> LeaseReply {
        self.reap_expired(now);
        self.heartbeat(worker, now);
        let mut saw_wait = false;
        for &index in &self.order {
            match &self.states[&index] {
                PointState::Pending { not_before } => {
                    if not_before.is_none_or(|t| t <= now) {
                        self.states.insert(
                            index,
                            PointState::Leased {
                                worker,
                                expires: now + self.config.lease_timeout,
                            },
                        );
                        return LeaseReply::Point(index);
                    }
                    saw_wait = true;
                }
                PointState::Leased { .. } => saw_wait = true,
                PointState::Done | PointState::Failed => {}
            }
        }
        if saw_wait {
            LeaseReply::Wait
        } else {
            LeaseReply::Finished
        }
    }

    /// Records a completion for `index` by `worker`; idempotent by point
    /// key.
    pub fn complete(&mut self, index: usize, worker: u64, now: Instant) -> CompleteReply {
        self.reap_expired(now);
        match self.states.get(&index) {
            None | Some(PointState::Done) => {
                self.counters.duplicates += 1;
                CompleteReply::Duplicate
            }
            Some(_) => {
                self.states.insert(index, PointState::Done);
                self.touch(worker, now).note_complete(now);
                CompleteReply::Accepted
            }
        }
    }

    /// Records an evaluation failure; retries with exponential backoff
    /// until `max_attempts` is spent.
    pub fn fail(&mut self, index: usize, worker: u64, now: Instant) -> FailReply {
        self.touch(worker, now);
        match self.states.get(&index) {
            None | Some(PointState::Done) | Some(PointState::Failed) => FailReply::Stale,
            Some(_) => {
                let attempts = self.attempts.entry(index).or_insert(0);
                *attempts += 1;
                if *attempts >= self.config.max_attempts {
                    self.states.insert(index, PointState::Failed);
                    FailReply::Exhausted
                } else {
                    let exponent = attempts.saturating_sub(1).min(16);
                    let delay = self.config.backoff_base * 2u32.pow(exponent);
                    self.states.insert(
                        index,
                        PointState::Pending {
                            not_before: Some(now + delay),
                        },
                    );
                    self.counters.retries += 1;
                    FailReply::Retry
                }
            }
        }
    }

    /// Attempts already charged to `index`.
    pub fn attempts(&self, index: usize) -> u32 {
        self.attempts.get(&index).copied().unwrap_or(0)
    }

    /// Extends every lease held by `worker` — the liveness signal that
    /// keeps long evaluations from being requeued under them.
    ///
    /// Expired leases are reaped *first*: a heartbeat arriving after the
    /// lease deadline (e.g. from a worker that was SIGSTOPped past the
    /// timeout) must not resurrect a lease the scheduler is entitled to hand
    /// to someone else — only leases that are still live get extended.
    pub fn heartbeat(&mut self, worker: u64, now: Instant) {
        self.reap_expired(now);
        self.touch(worker, now);
        for state in self.states.values_mut() {
            if let PointState::Leased {
                worker: holder,
                expires,
            } = state
            {
                if *holder == worker {
                    *expires = now + self.config.lease_timeout;
                }
            }
        }
    }

    /// Progress at `now` (after reaping expired leases).
    pub fn progress(&mut self, now: Instant) -> Progress {
        self.reap_expired(now);
        let mut progress = Progress {
            done: self.done_offset,
            ..Progress::default()
        };
        for state in self.states.values() {
            match state {
                PointState::Pending { .. } => progress.pending += 1,
                PointState::Leased { .. } => progress.leased += 1,
                PointState::Done => progress.done += 1,
                PointState::Failed => progress.failed += 1,
            }
        }
        progress.counters = self.counters;
        let mut workers: Vec<WorkerView> = self
            .workers
            .iter()
            .map(|(&worker, stats)| WorkerView {
                worker,
                completed: stats.completed,
                ewma_points_per_sec: stats.ewma_points_per_sec,
                since_last_seen_secs: now.saturating_duration_since(stats.last_seen).as_secs_f64(),
            })
            .collect();
        workers.sort_unstable_by_key(|view| view.worker);
        progress.per_worker = workers
            .iter()
            .map(|view| (view.worker, view.completed))
            .collect();
        progress.workers = workers;
        progress
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(lease_ms: u64, attempts: u32, backoff_ms: u64) -> SchedulerConfig {
        SchedulerConfig {
            lease_timeout: Duration::from_millis(lease_ms),
            max_attempts: attempts,
            backoff_base: Duration::from_millis(backoff_ms),
        }
    }

    #[test]
    fn leases_in_index_order_and_finishes() {
        let mut s = Scheduler::new(vec![2, 0, 7], 5, config(1000, 3, 10));
        let now = Instant::now();
        let w = s.register_worker(now);
        assert_eq!(s.lease(w, now), LeaseReply::Point(0));
        assert_eq!(s.lease(w, now), LeaseReply::Point(2));
        assert_eq!(s.lease(w, now), LeaseReply::Point(7));
        assert_eq!(s.lease(w, now), LeaseReply::Wait);
        for index in [0, 2, 7] {
            assert_eq!(s.complete(index, w, now), CompleteReply::Accepted);
        }
        assert_eq!(s.lease(w, now), LeaseReply::Finished);
        let progress = s.progress(now);
        assert_eq!((progress.done, progress.total()), (8, 8));
        assert!(progress.finished());
        assert_eq!(progress.per_worker, vec![(w, 3)]);
    }

    #[test]
    fn expired_leases_requeue_to_other_workers() {
        let mut s = Scheduler::new(vec![0], 0, config(100, 3, 10));
        let t0 = Instant::now();
        let w1 = s.register_worker(t0);
        let w2 = s.register_worker(t0);
        assert_eq!(s.lease(w1, t0), LeaseReply::Point(0));
        // Before the timeout the point is unavailable; heartbeats extend it.
        assert_eq!(
            s.lease(w2, t0 + Duration::from_millis(50)),
            LeaseReply::Wait
        );
        s.heartbeat(w1, t0 + Duration::from_millis(90));
        assert_eq!(
            s.lease(w2, t0 + Duration::from_millis(150)),
            LeaseReply::Wait
        );
        // Once w1 goes silent past the timeout, w2 inherits the point.
        assert_eq!(
            s.lease(w2, t0 + Duration::from_millis(200)),
            LeaseReply::Point(0)
        );
        assert_eq!(
            s.progress(t0 + Duration::from_millis(200))
                .counters
                .requeues,
            1
        );
    }

    #[test]
    fn late_heartbeat_does_not_resurrect_an_expired_lease() {
        // SIGSTOP-style regression: w1 takes a lease, goes silent past the
        // timeout (no intervening scheduler call reaps it), then its delayed
        // heartbeat arrives. The heartbeat must requeue the expired lease,
        // not extend it — otherwise a stopped worker can starve the point
        // indefinitely with heartbeats that always arrive just too late.
        let mut s = Scheduler::new(vec![0], 0, config(100, 3, 10));
        let t0 = Instant::now();
        let w1 = s.register_worker(t0);
        let w2 = s.register_worker(t0);
        assert_eq!(s.lease(w1, t0), LeaseReply::Point(0));
        // Well past the deadline, w1's heartbeat is the first call the
        // scheduler sees.
        s.heartbeat(w1, t0 + Duration::from_millis(250));
        // The point must be assignable to w2 immediately, and the requeue
        // must have been counted.
        assert_eq!(
            s.lease(w2, t0 + Duration::from_millis(260)),
            LeaseReply::Point(0)
        );
        let progress = s.progress(t0 + Duration::from_millis(260));
        assert_eq!(progress.counters.requeues, 1);
        assert_eq!(progress.leased, 1);
        // A still-live lease is extended as before: w2 heartbeats at 300ms,
        // pushing its deadline to 400ms, so the point is not reassignable at
        // 350ms.
        s.heartbeat(w2, t0 + Duration::from_millis(300));
        assert_eq!(
            s.lease(w1, t0 + Duration::from_millis(350)),
            LeaseReply::Wait
        );
    }

    #[test]
    fn duplicate_completion_is_idempotent() {
        let mut s = Scheduler::new(vec![0], 0, config(50, 3, 10));
        let t0 = Instant::now();
        let w1 = s.register_worker(t0);
        let w2 = s.register_worker(t0);
        assert_eq!(s.lease(w1, t0), LeaseReply::Point(0));
        // w1's lease expires; w2 picks the point up and finishes first.
        let t1 = t0 + Duration::from_millis(100);
        assert_eq!(s.lease(w2, t1), LeaseReply::Point(0));
        assert_eq!(s.complete(0, w2, t1), CompleteReply::Accepted);
        // w1 finishes anyway: discarded, counted, and credited to nobody new.
        assert_eq!(s.complete(0, w1, t1), CompleteReply::Duplicate);
        let progress = s.progress(t1);
        assert_eq!(progress.done, 1);
        assert_eq!(progress.counters.duplicates, 1);
        assert_eq!(progress.per_worker, vec![(w1, 0), (w2, 1)]);
    }

    #[test]
    fn bounded_retry_with_backoff_then_terminal_failure() {
        let mut s = Scheduler::new(vec![0], 0, config(1000, 3, 20));
        let t0 = Instant::now();
        let w = s.register_worker(t0);
        assert_eq!(s.lease(w, t0), LeaseReply::Point(0));
        assert_eq!(s.fail(0, w, t0), FailReply::Retry);
        // Backing off: not assignable immediately, assignable after the delay.
        assert_eq!(s.lease(w, t0), LeaseReply::Wait);
        let t1 = t0 + Duration::from_millis(25);
        assert_eq!(s.lease(w, t1), LeaseReply::Point(0));
        assert_eq!(s.fail(0, w, t1), FailReply::Retry);
        // Second backoff doubles: 40ms now.
        assert_eq!(s.lease(w, t1 + Duration::from_millis(25)), LeaseReply::Wait);
        let t2 = t1 + Duration::from_millis(50);
        assert_eq!(s.lease(w, t2), LeaseReply::Point(0));
        assert_eq!(s.fail(0, w, t2), FailReply::Exhausted);
        assert_eq!(s.lease(w, t2), LeaseReply::Finished);
        let progress = s.progress(t2);
        assert_eq!((progress.failed, progress.done), (1, 0));
        assert_eq!(progress.counters.retries, 2);
        assert_eq!(s.attempts(0), 3);
        // A stale failure report after the terminal state changes nothing.
        assert_eq!(s.fail(0, w, t2), FailReply::Stale);
    }

    #[test]
    fn worker_views_track_ewma_throughput_and_heartbeat_age() {
        let mut s = Scheduler::new((0..40).collect(), 0, config(60_000, 3, 10));
        let t0 = Instant::now();
        let w1 = s.register_worker(t0);
        let w2 = s.register_worker(t0);
        // w1 completes one point per second for 20 seconds; w2 goes silent
        // after registering.
        let mut last = t0;
        for i in 0..20u64 {
            let now = t0 + Duration::from_secs(i);
            let LeaseReply::Point(index) = s.lease(w1, now) else {
                panic!("expected a point");
            };
            last = now + Duration::from_secs(1);
            assert_eq!(s.complete(index, w1, last), CompleteReply::Accepted);
        }
        let progress = s.progress(last + Duration::from_secs(5));
        assert_eq!(progress.per_worker, vec![(w1, 20), (w2, 0)]);
        let [v1, v2] = progress.workers[..] else {
            panic!("expected two worker views");
        };
        assert_eq!((v1.worker, v1.completed), (w1, 20));
        // Steady 1 pt/s sampled 19 times with τ=30 s: the EWMA has converged
        // to 1 − exp(−19/30) ≈ 0.469 of the true rate and can never exceed
        // it.
        assert!(
            v1.ewma_points_per_sec > 0.4 && v1.ewma_points_per_sec < 1.0,
            "ewma {} out of range",
            v1.ewma_points_per_sec
        );
        // w1 was last seen at its final completion, 5 s before the snapshot;
        // w2 has been silent since registration (20 s of leases + 1 s of the
        // last completion + the 5 s gap).
        assert!((v1.since_last_seen_secs - 5.0).abs() < 1e-6);
        assert_eq!((v2.worker, v2.completed), (w2, 0));
        assert_eq!(v2.ewma_points_per_sec, 0.0);
        assert!((v2.since_last_seen_secs - 25.0).abs() < 1e-6);
    }
}
