//! Persistent, content-hash-keyed per-point result store.
//!
//! Layout under the store base directory, one subdirectory per job keyed by
//! the job's name and content hash:
//!
//! ```text
//! <base>/<name>-<hash>/
//!     manifest.json                     job descriptor + grid shape + seeds
//!     status.json                       latest progress snapshot (atomic)
//!     points/point-<index>-<seed>.json  one finished point payload each
//!     failed/point-<index>.json         terminal failure record
//! ```
//!
//! Every file is written via temp-file-then-rename in the same directory, so
//! a point file either exists complete or not at all — a `SIGKILL` mid-write
//! can cost at most the point being written, never corrupt one. A killed run
//! therefore resumes by scanning `points/` and recomputing only the missing
//! indices; because point payloads are pure functions of `(job, index,
//! seed)`, the merged artifact is bit-identical to an uninterrupted run.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use serde_json::Value;

use crate::job::JobDescriptor;

/// Store format version recorded in every manifest.
pub const STORE_VERSION: u64 = 1;

/// Handle to one job's on-disk point directory.
#[derive(Debug)]
pub struct PointStore {
    root: PathBuf,
    descriptor: JobDescriptor,
    seeds: Vec<u64>,
}

/// What [`PointStore::open`] found on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreState {
    /// The directory was created by this call.
    Created,
    /// A manifest for the same job already existed and matched.
    Resumed,
}

/// Writes `text` to `path` atomically: temp file in the same directory,
/// flushed, then renamed into place.
///
/// # Errors
///
/// Returns a message naming the path on any I/O failure.
pub fn write_atomic(path: &Path, text: &str) -> Result<(), String> {
    static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = path
        .parent()
        .ok_or_else(|| format!("{} has no parent directory", path.display()))?;
    let stamp = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    let tmp = dir.join(format!(".tmp-{}-{stamp}", std::process::id()));
    let write = |tmp: &Path| -> std::io::Result<()> {
        let mut file = fs::File::create(tmp)?;
        file.write_all(text.as_bytes())?;
        file.sync_all()?;
        fs::rename(tmp, path)
    };
    write(&tmp).map_err(|e| {
        let _ = fs::remove_file(&tmp);
        format!("writing {}: {e}", path.display())
    })
}

impl PointStore {
    /// Opens (creating if needed) the store directory for `descriptor`
    /// under `base`, with the full per-point seed table.
    ///
    /// # Errors
    ///
    /// Fails if the directory holds a manifest for a *different* job (hash,
    /// grid size, or seed table mismatch — resuming with skewed code would
    /// silently break bit-identity), or on I/O errors.
    pub fn open(
        base: &Path,
        descriptor: &JobDescriptor,
        seeds: Vec<u64>,
    ) -> Result<(Self, StoreState), String> {
        let root = base.join(format!(
            "{}-{}",
            sanitize(&descriptor.name),
            descriptor.hash
        ));
        fs::create_dir_all(root.join("points"))
            .map_err(|e| format!("creating {}: {e}", root.display()))?;
        fs::create_dir_all(root.join("failed"))
            .map_err(|e| format!("creating {}: {e}", root.display()))?;
        let store = PointStore {
            root,
            descriptor: descriptor.clone(),
            seeds,
        };
        let manifest_path = store.root.join("manifest.json");
        if manifest_path.exists() {
            store.check_manifest(&manifest_path)?;
            Ok((store, StoreState::Resumed))
        } else {
            let manifest = serde_json::json!({
                "store_version": STORE_VERSION,
                "job": store.descriptor.to_json(),
                "num_points": store.seeds.len() as u64,
                "seeds": store
                    .seeds
                    .iter()
                    .map(|s| Value::from(*s))
                    .collect::<Vec<Value>>(),
            });
            write_atomic(&manifest_path, &manifest.to_string())?;
            Ok((store, StoreState::Created))
        }
    }

    fn check_manifest(&self, path: &Path) -> Result<(), String> {
        let text =
            fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        let value: Value =
            serde_json::from_str(&text).map_err(|e| format!("parsing {}: {e}", path.display()))?;
        let job = value
            .get("job")
            .ok_or_else(|| format!("{} has no `job`", path.display()))?;
        let existing = JobDescriptor::from_json(job)?;
        if existing.hash != self.descriptor.hash || existing.kind != self.descriptor.kind {
            return Err(format!(
                "store {} belongs to job {}/{}, not {}/{}",
                self.root.display(),
                existing.kind,
                existing.hash,
                self.descriptor.kind,
                self.descriptor.hash
            ));
        }
        let num_points = value.get("num_points").and_then(Value::as_u64);
        if num_points != Some(self.seeds.len() as u64) {
            return Err(format!(
                "store {} has {num_points:?} points, job has {}",
                self.root.display(),
                self.seeds.len()
            ));
        }
        let seeds: Option<Vec<u64>> = value.get("seeds").and_then(Value::as_array).map(|list| {
            list.iter()
                .map(|v| v.as_u64().unwrap_or_default())
                .collect()
        });
        if seeds.as_deref() != Some(&self.seeds[..]) {
            return Err(format!(
                "store {} was built with a different seed table; refusing to mix results",
                self.root.display()
            ));
        }
        Ok(())
    }

    /// The job this store belongs to.
    pub fn descriptor(&self) -> &JobDescriptor {
        &self.descriptor
    }

    /// Grid size.
    pub fn num_points(&self) -> usize {
        self.seeds.len()
    }

    /// Seed of the point at `index`.
    pub fn seed(&self, index: usize) -> u64 {
        self.seeds[index]
    }

    /// The store's root directory (`<base>/<name>-<hash>`).
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn point_path(&self, index: usize) -> PathBuf {
        self.root
            .join("points")
            .join(format!("point-{index:06}-{:016x}.json", self.seeds[index]))
    }

    fn failed_path(&self, index: usize) -> PathBuf {
        self.root
            .join("failed")
            .join(format!("point-{index:06}.json"))
    }

    /// Persists one finished point atomically and clears any earlier
    /// terminal-failure record for it.
    ///
    /// # Errors
    ///
    /// Returns a message on I/O failure.
    pub fn store_point(&self, index: usize, payload: &Value) -> Result<(), String> {
        let envelope = serde_json::json!({
            "index": index as u64,
            "seed": Value::from(self.seeds[index]),
            "payload": payload,
        });
        write_atomic(&self.point_path(index), &envelope.to_string())?;
        let _ = fs::remove_file(self.failed_path(index));
        Ok(())
    }

    /// Loads a finished point's payload, or `None` if it is not done.
    ///
    /// # Errors
    ///
    /// Fails if the file exists but is unreadable or records a different
    /// `(index, seed)` than the manifest says it must.
    pub fn load_point(&self, index: usize) -> Result<Option<Value>, String> {
        let path = self.point_path(index);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("reading {}: {e}", path.display())),
        };
        let value: Value =
            serde_json::from_str(&text).map_err(|e| format!("parsing {}: {e}", path.display()))?;
        let stored_index = value.get("index").and_then(Value::as_u64);
        let stored_seed = value.get("seed").and_then(Value::as_u64);
        if stored_index != Some(index as u64) || stored_seed != Some(self.seeds[index]) {
            return Err(format!(
                "{} records point {stored_index:?}/seed {stored_seed:?}, expected {index}/{}",
                path.display(),
                self.seeds[index]
            ));
        }
        value
            .get("payload")
            .cloned()
            .map(Some)
            .ok_or_else(|| format!("{} has no payload", path.display()))
    }

    /// Records a terminal failure (retries exhausted) for `index`.
    ///
    /// # Errors
    ///
    /// Returns a message on I/O failure.
    pub fn record_failure(&self, index: usize, error: &str, attempts: u32) -> Result<(), String> {
        let record = serde_json::json!({
            "index": index as u64,
            "seed": Value::from(self.seeds[index]),
            "error": error,
            "attempts": attempts as u64,
        });
        write_atomic(&self.failed_path(index), &record.to_string())
    }

    /// Indices with no finished point on disk — the work a resumed run
    /// still owes.
    pub fn missing_indices(&self) -> Vec<usize> {
        (0..self.seeds.len())
            .filter(|&index| !self.point_path(index).exists())
            .collect()
    }

    /// Number of finished points on disk.
    pub fn done_count(&self) -> usize {
        self.seeds.len() - self.missing_indices().len()
    }

    /// Terminal-failure records currently on disk, as `(index, error)`.
    pub fn failures(&self) -> Vec<(usize, String)> {
        let mut out = Vec::new();
        for index in 0..self.seeds.len() {
            if let Ok(text) = fs::read_to_string(self.failed_path(index)) {
                let error = serde_json::from_str(&text)
                    .ok()
                    .and_then(|v| v.get("error").and_then(Value::as_str).map(str::to_string))
                    .unwrap_or_else(|| "unreadable failure record".to_string());
                out.push((index, error));
            }
        }
        out
    }

    /// Atomically replaces `status.json` with `snapshot`.
    ///
    /// # Errors
    ///
    /// Returns a message on I/O failure.
    pub fn write_status(&self, snapshot: &Value) -> Result<(), String> {
        write_atomic(&self.root.join("status.json"), &snapshot.to_string())
    }

    /// Reads the last progress snapshot, if any run has written one.
    pub fn read_status(&self) -> Option<Value> {
        let text = fs::read_to_string(self.root.join("status.json")).ok()?;
        serde_json::from_str(&text).ok()
    }
}

/// Keeps store directory names filesystem-safe.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::testutil::MockJob;
    use crate::job::PointJob;

    fn temp_base(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sweeprun-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn mock_store(base: &Path, points: usize) -> (PointStore, StoreState) {
        let job = MockJob::new(points);
        let seeds = (0..points).map(|i| job.point_seed(i)).collect();
        PointStore::open(base, &job.descriptor(), seeds).unwrap()
    }

    #[test]
    fn round_trips_points_and_tracks_missing() {
        let base = temp_base("roundtrip");
        let (store, state) = mock_store(&base, 4);
        assert_eq!(state, StoreState::Created);
        assert_eq!(store.missing_indices(), vec![0, 1, 2, 3]);

        let payload = serde_json::json!({"value": 42u64});
        store.store_point(1, &payload).unwrap();
        store.store_point(3, &payload).unwrap();
        assert_eq!(store.missing_indices(), vec![0, 2]);
        assert_eq!(store.done_count(), 2);
        assert_eq!(store.load_point(1).unwrap(), Some(payload.clone()));
        assert_eq!(store.load_point(0).unwrap(), None);

        // Reopening the same job resumes instead of starting over.
        let (reopened, state) = mock_store(&base, 4);
        assert_eq!(state, StoreState::Resumed);
        assert_eq!(reopened.missing_indices(), vec![0, 2]);
        let _ = fs::remove_dir_all(&base);
    }

    #[test]
    fn rejects_mismatched_manifest() {
        let base = temp_base("mismatch");
        let (_store, _) = mock_store(&base, 4);

        // Same name/hash directory but a different seed table must refuse.
        let job = MockJob::new(4);
        let bad_seeds: Vec<u64> = (0..4).map(|i| job.point_seed(i) ^ 1).collect();
        let err = PointStore::open(&base, &job.descriptor(), bad_seeds).unwrap_err();
        assert!(err.contains("seed table"), "unexpected error: {err}");
        let _ = fs::remove_file(base.join(".keep"));
        let _ = fs::remove_dir_all(&base);
    }

    #[test]
    fn failure_records_are_cleared_by_success() {
        let base = temp_base("failure");
        let (store, _) = mock_store(&base, 2);
        store.record_failure(0, "flaky", 3).unwrap();
        assert_eq!(store.failures(), vec![(0, "flaky".to_string())]);
        store
            .store_point(0, &serde_json::json!({"ok": true}))
            .unwrap();
        assert!(store.failures().is_empty());
        let _ = fs::remove_dir_all(&base);
    }

    #[test]
    fn status_snapshot_round_trips() {
        let base = temp_base("status");
        let (store, _) = mock_store(&base, 1);
        assert!(store.read_status().is_none());
        let snapshot = serde_json::json!({"done": 1u64, "pending": 0u64});
        store.write_status(&snapshot).unwrap();
        assert_eq!(store.read_status(), Some(snapshot));
        let _ = fs::remove_dir_all(&base);
    }
}
