//! The remote worker: connects to a coordinator, rebuilds the job from the
//! wire descriptor, and evaluates leased points until the run finishes.
//!
//! Liveness is kept by a dedicated heartbeat thread on a *second*
//! connection, so a long point evaluation never starves the signal and the
//! coordinator only requeues leases of workers that actually died. The
//! heartbeat period is a third of the coordinator's advertised lease
//! timeout.

use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use serde_json::Value;

use crate::coordinator::PROTOCOL_VERSION;
use crate::job::{JobDescriptor, JobFactory, PointJob};
use crate::net::JsonLines;

/// How long the worker waits for any single coordinator response.
const RESPONSE_TIMEOUT: Duration = Duration::from_secs(120);

/// Knobs for one worker process.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerOptions {
    /// Artificial delay before each evaluation — a test hook that makes
    /// kill-mid-lease scenarios deterministic. Zero in real use.
    pub throttle: Duration,
}

/// What a worker did before the run ended.
#[derive(Debug, Clone, Copy)]
pub struct WorkerSummary {
    /// Id the coordinator assigned in the hello handshake.
    pub worker_id: u64,
    /// Points this worker completed (excluding duplicates).
    pub completed: usize,
    /// Evaluation failures this worker reported.
    pub failed: usize,
}

/// Sends one request and awaits its response line.
fn request(lines: &mut JsonLines, body: &Value) -> Result<Value, String> {
    lines.send(body)?;
    match lines.recv_timeout(RESPONSE_TIMEOUT)? {
        Some(response) => {
            if let Some(message) = response.get("error").and_then(Value::as_str) {
                return Err(format!("coordinator error: {message}"));
            }
            Ok(response)
        }
        None => Err("coordinator closed the connection".to_string()),
    }
}

/// Connects to `addr`, rebuilds the job via `factory`, and works until the
/// coordinator reports the run finished.
///
/// # Errors
///
/// Fails on connection errors, protocol violations, a factory that cannot
/// rebuild the job, or a rebuilt job whose content hash disagrees with the
/// coordinator's (version skew).
pub fn run_worker(
    addr: &str,
    factory: &JobFactory<'_>,
    options: WorkerOptions,
) -> Result<WorkerSummary, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    let mut lines = JsonLines::new(stream)?;

    let hello = request(
        &mut lines,
        &serde_json::json!({ "cmd": "hello", "proto": PROTOCOL_VERSION }),
    )?;
    let worker_id = hello
        .get("worker_id")
        .and_then(Value::as_u64)
        .ok_or("hello response lacks worker_id")?;
    let lease_timeout_ms = hello
        .get("lease_timeout_ms")
        .and_then(Value::as_u64)
        .ok_or("hello response lacks lease_timeout_ms")?;
    let descriptor = JobDescriptor::from_json(
        hello
            .get("job")
            .ok_or("hello response lacks job descriptor")?,
    )?;
    let job: Box<dyn PointJob> = factory(&descriptor)?;
    let rebuilt = job.descriptor();
    if rebuilt.hash != descriptor.hash {
        return Err(format!(
            "rebuilt job hashes to {}, coordinator says {} — worker/coordinator version skew",
            rebuilt.hash, descriptor.hash
        ));
    }

    let stop_heartbeat = Arc::new(AtomicBool::new(false));
    let heartbeat_handle = spawn_heartbeat(
        addr.to_string(),
        worker_id,
        lease_timeout_ms,
        Arc::clone(&stop_heartbeat),
    );

    let worked = work_loop(&mut lines, job.as_ref(), worker_id, options);
    stop_heartbeat.store(true, Ordering::Relaxed);
    if let Some(handle) = heartbeat_handle {
        let _ = handle.join();
    }
    worked.map(|(completed, failed)| WorkerSummary {
        worker_id,
        completed,
        failed,
    })
}

fn work_loop(
    lines: &mut JsonLines,
    job: &dyn PointJob,
    worker_id: u64,
    options: WorkerOptions,
) -> Result<(usize, usize), String> {
    let mut completed = 0usize;
    let mut failed = 0usize;
    loop {
        let reply = match request(
            lines,
            &serde_json::json!({ "cmd": "lease", "worker_id": worker_id }),
        ) {
            Ok(reply) => reply,
            // The coordinator tears connections down when the run ends; an
            // EOF on a lease request is an orderly finish, not a fault.
            Err(e) if e.contains("closed the connection") => break,
            Err(e) => return Err(e),
        };
        if reply.get("finished").and_then(Value::as_bool) == Some(true) {
            break;
        }
        if let Some(wait_ms) = reply.get("wait_ms").and_then(Value::as_u64) {
            std::thread::sleep(Duration::from_millis(wait_ms));
            continue;
        }
        let point = reply.get("point").ok_or("lease reply lacks point")?;
        let index = point
            .get("index")
            .and_then(Value::as_u64)
            .ok_or("lease point lacks index")? as usize;
        let seed = point
            .get("seed")
            .and_then(Value::as_u64)
            .ok_or("lease point lacks seed")?;
        if index < job.num_points() && job.point_seed(index) != seed {
            return Err(format!(
                "coordinator seed {seed:#x} for point {index} disagrees with local {:#x}",
                job.point_seed(index)
            ));
        }
        if !options.throttle.is_zero() {
            std::thread::sleep(options.throttle);
        }
        match job.eval(index, seed) {
            Ok(payload) => {
                request(
                    lines,
                    &serde_json::json!({
                        "cmd": "complete",
                        "worker_id": worker_id,
                        "index": index as u64,
                        "payload": payload,
                    }),
                )?;
                completed += 1;
            }
            Err(error) => {
                request(
                    lines,
                    &serde_json::json!({
                        "cmd": "fail",
                        "worker_id": worker_id,
                        "index": index as u64,
                        "error": error,
                    }),
                )?;
                failed += 1;
            }
        }
    }
    Ok((completed, failed))
}

/// Second-connection heartbeat loop; exits silently when the coordinator
/// goes away (the main loop surfaces any real error).
fn spawn_heartbeat(
    addr: String,
    worker_id: u64,
    lease_timeout_ms: u64,
    stop: Arc<AtomicBool>,
) -> Option<std::thread::JoinHandle<()>> {
    let period = Duration::from_millis((lease_timeout_ms / 3).max(50));
    let handle = std::thread::Builder::new()
        .name("sweep-heartbeat".to_string())
        .spawn(move || {
            let Ok(stream) = TcpStream::connect(&addr) else {
                return;
            };
            let Ok(mut lines) = JsonLines::new(stream) else {
                return;
            };
            while !stop.load(Ordering::Relaxed) {
                let beat = serde_json::json!({ "cmd": "heartbeat", "worker_id": worker_id });
                if request(&mut lines, &beat).is_err() {
                    return;
                }
                // Sleep in small slices so stop is honoured promptly.
                let mut remaining = period;
                while !remaining.is_zero() && !stop.load(Ordering::Relaxed) {
                    let slice = remaining.min(Duration::from_millis(50));
                    std::thread::sleep(slice);
                    remaining = remaining.saturating_sub(slice);
                }
            }
        })
        .ok()?;
    Some(handle)
}

/// One-shot status query against a running coordinator.
///
/// # Errors
///
/// Fails on connection or protocol errors.
pub fn query_status(addr: &str) -> Result<Value, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    let mut lines = JsonLines::new(stream)?;
    request(&mut lines, &serde_json::json!({ "cmd": "status" }))
}
