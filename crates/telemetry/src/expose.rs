//! Exposition: a registry snapshot as JSON and as Prometheus-style text.
//!
//! Both formats render the same [`RegistrySnapshot`], so the service TCP
//! front-end, the sweep coordinator's status connection, and the CLI all
//! serve one unified view. The text format follows the Prometheus
//! text-exposition conventions: `# TYPE` lines, sanitized metric names,
//! cumulative `_bucket{le="…"}` lines plus `_sum`/`_count` per histogram.

use serde_json::Value;

use crate::histogram::{bucket_index, HistogramSnapshot, HISTOGRAM_BUCKETS};
use crate::registry::RegistrySnapshot;

/// Maps a dotted metric name onto the Prometheus name grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if ok && (i > 0 || !c.is_ascii_digit()) {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn histogram_json(hist: &HistogramSnapshot) -> Value {
    let buckets: Vec<Value> = hist
        .occupied_buckets()
        .into_iter()
        .map(|(low, high, count)| serde_json::json!([low, high, count]))
        .collect();
    serde_json::json!({
        "count": hist.count,
        "sum": hist.sum,
        "max": hist.max,
        "mean": hist.mean(),
        "p50": hist.quantile(0.50),
        "p90": hist.quantile(0.90),
        "p99": hist.quantile(0.99),
        "buckets": Value::from(buckets),
    })
}

/// The snapshot as a JSON object — the `telemetry` field of the service's
/// `metrics` response and the sweep coordinator's `status` response.
pub fn snapshot_to_json(snapshot: &RegistrySnapshot) -> Value {
    let mut counters = serde_json::json!({});
    for (name, value) in &snapshot.counters {
        counters[name.as_str()] = Value::from(*value);
    }
    let mut gauges = serde_json::json!({});
    for (name, value) in &snapshot.gauges {
        gauges[name.as_str()] = Value::from(*value);
    }
    let mut histograms = serde_json::json!({});
    for (name, hist) in &snapshot.histograms {
        histograms[name.as_str()] = histogram_json(hist);
    }
    serde_json::json!({
        "uptime_secs": snapshot.uptime_secs,
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
    })
}

/// Reconstructs a [`RegistrySnapshot`] from [`snapshot_to_json`] output —
/// the wire inverse remote tooling (the loadgen TCP path, the live `--top`
/// renderer) uses to run the local summarisation helpers on a served
/// snapshot. Malformed entries are skipped rather than failing the whole
/// snapshot.
pub fn snapshot_from_json(json: &Value) -> RegistrySnapshot {
    let mut snapshot = RegistrySnapshot {
        uptime_secs: json
            .get("uptime_secs")
            .and_then(Value::as_f64)
            .unwrap_or(0.0),
        ..RegistrySnapshot::default()
    };
    if let Some(counters) = json.get("counters").and_then(Value::as_object) {
        for (name, value) in counters {
            if let Some(value) = value.as_u64() {
                snapshot.counters.insert(name.clone(), value);
            }
        }
    }
    if let Some(gauges) = json.get("gauges").and_then(Value::as_object) {
        for (name, value) in gauges {
            if let Some(value) = value.as_i64() {
                snapshot.gauges.insert(name.clone(), value);
            }
        }
    }
    if let Some(histograms) = json.get("histograms").and_then(Value::as_object) {
        for (name, hist) in histograms {
            let read = |key: &str| hist.get(key).and_then(Value::as_u64).unwrap_or(0);
            let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
            if let Some(list) = hist.get("buckets").and_then(Value::as_array) {
                for entry in list {
                    let Some(triple) = entry.as_array() else {
                        continue;
                    };
                    // `[low, high, count]`: the low edge identifies the
                    // bucket, so occupied-bucket lists round-trip exactly.
                    let low = triple.first().and_then(Value::as_u64);
                    let count = triple.get(2).and_then(Value::as_u64);
                    if let (Some(low), Some(count)) = (low, count) {
                        buckets[bucket_index(low)] += count;
                    }
                }
            }
            snapshot.histograms.insert(
                name.clone(),
                HistogramSnapshot {
                    count: read("count"),
                    sum: read("sum"),
                    max: read("max"),
                    buckets,
                },
            );
        }
    }
    snapshot
}

/// The snapshot in the Prometheus text exposition format, with every
/// metric name prefixed by `prefix` (e.g. `qccd_service`).
pub fn snapshot_to_text(snapshot: &RegistrySnapshot, prefix: &str) -> String {
    let prefix = sanitize_metric_name(prefix);
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let name = format!("{prefix}_{}", sanitize_metric_name(name));
        out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
    }
    for (name, value) in &snapshot.gauges {
        let name = format!("{prefix}_{}", sanitize_metric_name(name));
        out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
    }
    for (name, hist) in &snapshot.histograms {
        let name = format!("{prefix}_{}", sanitize_metric_name(name));
        out.push_str(&format!("# TYPE {name} histogram\n"));
        let mut cumulative = 0u64;
        for (_, high, count) in hist.occupied_buckets() {
            cumulative += count;
            out.push_str(&format!("{name}_bucket{{le=\"{high}\"}} {cumulative}\n"));
        }
        out.push_str(&format!(
            "{name}_bucket{{le=\"+Inf\"}} {}\n{name}_sum {}\n{name}_count {}\n",
            hist.count, hist.sum, hist.count
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_registry() -> Registry {
        let registry = Registry::enabled();
        registry.counter("service.frames_submitted").add(128);
        registry.gauge("service.queue_depth").set(7);
        registry.histogram("service.latency_us").record_n(100, 10);
        registry
    }

    #[test]
    fn json_exposition_carries_all_metric_kinds() {
        let json = snapshot_to_json(&sample_registry().snapshot());
        assert_eq!(
            json["counters"]["service.frames_submitted"].as_u64(),
            Some(128)
        );
        assert_eq!(json["gauges"]["service.queue_depth"].as_i64(), Some(7));
        let hist = &json["histograms"]["service.latency_us"];
        assert_eq!(hist["count"].as_u64(), Some(10));
        assert!(hist["p50"].as_f64().expect("p50") >= 64.0);
        assert!(json["uptime_secs"].as_f64().is_some());
    }

    #[test]
    fn text_exposition_is_well_formed() {
        let text = snapshot_to_text(&sample_registry().snapshot(), "qccd.service");
        assert!(text.contains("# TYPE qccd_service_service_frames_submitted counter\n"));
        assert!(text.contains("qccd_service_service_frames_submitted 128\n"));
        assert!(text.contains("# TYPE qccd_service_service_queue_depth gauge\n"));
        assert!(text.contains("# TYPE qccd_service_service_latency_us histogram\n"));
        assert!(text.contains("service_latency_us_bucket{le=\"128\"} 10\n"));
        assert!(text.contains("service_latency_us_bucket{le=\"+Inf\"} 10\n"));
        assert!(text.contains("service_latency_us_sum 1000\n"));
        assert!(text.contains("service_latency_us_count 10\n"));
        // Every non-comment line is `name{optional labels} value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.split_once(' ').expect("name value");
            assert!(!name.is_empty() && value.parse::<f64>().is_ok(), "{line}");
            let bare = name.split('{').next().expect("metric name");
            assert!(
                bare.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "{line}"
            );
        }
    }

    #[test]
    fn json_exposition_round_trips_through_snapshot_from_json() {
        let snapshot = sample_registry().snapshot();
        let restored = snapshot_from_json(&snapshot_to_json(&snapshot));
        assert_eq!(restored.counters, snapshot.counters);
        assert_eq!(restored.gauges, snapshot.gauges);
        assert_eq!(restored.histograms, snapshot.histograms);
        // Malformed input degrades to an empty snapshot, not a panic.
        assert!(snapshot_from_json(&serde_json::json!({"counters": 3})).is_empty());
    }

    #[test]
    fn sanitize_replaces_forbidden_characters() {
        assert_eq!(
            sanitize_metric_name("service.stage.decode"),
            "service_stage_decode"
        );
        assert_eq!(sanitize_metric_name("9lives"), "_lives");
        assert_eq!(sanitize_metric_name("a-b c"), "a_b_c");
    }
}
