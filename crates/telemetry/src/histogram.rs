//! The shared log-bucketed histogram primitive.
//!
//! Values land in power-of-two buckets: bucket 0 covers `[0, 2)`, bucket
//! `i ≥ 1` covers `[2^i, 2^(i+1))`. Recording is two relaxed `fetch_add`s
//! (bucket + sum) plus a count; quantiles are estimated by **linear
//! interpolation of the rank within the covering bucket**, so a quantile
//! falling in bucket `[lo, hi)` reports `lo + frac·(hi − lo)` with `frac`
//! the rank's position among the bucket's samples — not the bucket edge,
//! and not a fixed midpoint. The service's `ServiceMetrics` p50/p99 are
//! views over exactly this estimator.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two buckets; covers the full `u64` value range.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// The bucket index holding `value`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < 2 {
        0
    } else {
        (63 - value.leading_zeros()) as usize
    }
}

/// The `[low, high)` value range of bucket `index` (saturating at the top).
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    if index == 0 {
        return (0, 2);
    }
    let low = 1u64 << index;
    let high = if index + 1 >= 64 {
        u64::MAX
    } else {
        1u64 << (index + 1)
    };
    (low, high)
}

/// The `q`-quantile (0 ≤ q ≤ 1) of a bucket-count vector, linearly
/// interpolated within the covering bucket; 0 when nothing was recorded.
pub fn quantile_from_counts(counts: &[u64], q: f64) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    // Continuous rank in (0, total]; the sample at rank r is the ⌈r⌉-th
    // smallest recorded value.
    let target = (q.clamp(0.0, 1.0) * total as f64).max(f64::MIN_POSITIVE);
    let rank = (target.ceil() as u64).clamp(1, total);
    let mut cumulative = 0u64;
    for (index, &count) in counts.iter().enumerate() {
        if count == 0 {
            continue;
        }
        cumulative += count;
        if cumulative >= rank {
            let (low, high) = bucket_bounds(index);
            let before = (cumulative - count) as f64;
            let frac = ((target - before) / count as f64).clamp(0.0, 1.0);
            return low as f64 + frac * (high as f64 - low as f64);
        }
    }
    unreachable!("rank is clamped to the total count")
}

/// The shared atomic cell behind a registered histogram.
#[derive(Debug)]
pub(crate) struct HistogramCell {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCell {
    fn default() -> Self {
        HistogramCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl HistogramCell {
    pub(crate) fn record_n(&self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(value)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum
            .fetch_add(value.saturating_mul(n), Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|bucket| bucket.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A point-in-time copy of one histogram's buckets and aggregates.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded values (saturating).
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Raw per-bucket counts, indexed by [`bucket_index`].
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Linearly interpolated `q`-quantile (see [`quantile_from_counts`]).
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_from_counts(&self.buckets, q)
    }

    /// The non-empty buckets as `(low, high, count)` triples.
    pub fn occupied_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(index, &count)| {
                let (low, high) = bucket_bounds(index);
                (low, high, count)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_covers_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
        for i in 0..HISTOGRAM_BUCKETS {
            let (low, high) = bucket_bounds(i);
            assert_eq!(bucket_index(low), i);
            if high != u64::MAX {
                assert_eq!(bucket_index(high - 1), i);
            }
        }
    }

    #[test]
    fn quantiles_interpolate_within_the_bucket() {
        // 100 samples of value 10 → bucket [8, 16). The p50 sample is the
        // 50th of 100, half way into the bucket: 8 + 0.5·8 = 12.
        let cell = HistogramCell::default();
        cell.record_n(10, 100);
        let snap = cell.snapshot();
        assert_eq!(snap.quantile(0.5), 12.0);
        // p100 reaches the bucket's upper edge, p→0 its lower edge.
        assert_eq!(snap.quantile(1.0), 16.0);
        assert!(snap.quantile(0.001) < 9.0);

        // Two buckets, 50 samples each: [8,16) then [64,128). p25 is half
        // way through the first (12), p75 half way through the second (96),
        // and p50 is the last sample of the first bucket (16).
        let cell = HistogramCell::default();
        cell.record_n(10, 50);
        cell.record_n(100, 50);
        let snap = cell.snapshot();
        assert_eq!(snap.quantile(0.25), 12.0);
        assert_eq!(snap.quantile(0.50), 16.0);
        assert_eq!(snap.quantile(0.75), 96.0);
        assert_eq!(snap.count, 100);
        assert_eq!(snap.max, 100);
        assert_eq!(snap.mean(), 55.0);
    }

    #[test]
    fn quantile_accuracy_is_bounded_by_the_covering_bucket() {
        // Whatever the distribution, a quantile estimate never leaves the
        // bucket of the true quantile sample: relative error ≤ 2×.
        let cell = HistogramCell::default();
        let values = [1u64, 3, 7, 9, 120, 5000, 5001, 5002, 640_000, 9];
        for &v in &values {
            cell.record_n(v, 1);
        }
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        let snap = cell.snapshot();
        for (q, index) in [(0.1, 0usize), (0.5, 4), (0.9, 8), (1.0, 9)] {
            let truth = sorted[index] as f64;
            let estimate = snap.quantile(q);
            let (low, high) = bucket_bounds(bucket_index(sorted[index]));
            assert!(
                estimate >= low as f64 && estimate <= high as f64,
                "q={q}: estimate {estimate} escaped bucket [{low}, {high}) of true {truth}"
            );
        }
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let snap = HistogramSnapshot::default();
        assert_eq!(snap.quantile(0.5), 0.0);
        assert_eq!(snap.mean(), 0.0);
        assert!(snap.occupied_buckets().is_empty());
    }
}
