//! # qccd-telemetry
//!
//! The workspace's unified observability layer: one dependency-light,
//! offline-friendly crate every tier (decoder, service, sweep
//! orchestration, bench harness) instruments itself through.
//!
//! Three pieces:
//!
//! - [`Registry`] — a process- or subsystem-wide registry of named
//!   [`Counter`]s, [`Gauge`]s and log-bucketed [`Histogram`]s. Handles are
//!   lock-free: a counter increment is one relaxed `fetch_add` on a
//!   per-thread shard ([`registry`] spreads threads round-robin over padded
//!   shards that are folded deterministically on snapshot), and a handle
//!   from a **disabled** registry carries no cell at all, so the disabled
//!   hot path is a single branch — the overhead gate in
//!   `benches/decoder.rs` pins this at <2% on the word-decode benchmark.
//! - [`Stage`] spans — per-pipeline-stage timing with exact call/item
//!   counters and sampled duration histograms, so bit-identity and
//!   steady-state throughput are untouched (spans time *around* stages,
//!   never inside the decoded data path). Sampled spans can stream to a
//!   JSON-lines [`TraceSink`] (`--trace-out`).
//! - Exposition — [`snapshot_to_json`] and Prometheus-style
//!   [`snapshot_to_text`] render the same [`RegistrySnapshot`] served by
//!   the service TCP front-end and the sweep coordinator's status
//!   connection, and [`render_dashboard`] is the `top`-style live panel the
//!   loadgen's `--top` mode draws.

#![warn(missing_docs)]

pub mod expose;
pub mod histogram;
pub mod registry;
pub mod render;
pub mod span;
pub mod trace;

pub use expose::{sanitize_metric_name, snapshot_from_json, snapshot_to_json, snapshot_to_text};
pub use histogram::{bucket_bounds, bucket_index, quantile_from_counts, HistogramSnapshot};
pub use registry::{Counter, Gauge, Histogram, Registry, RegistrySnapshot, TelemetryConfig};
pub use render::{cursor_home, render_dashboard};
pub use span::{Span, Stage};
pub use trace::TraceSink;
