//! The metrics registry: named counters, gauges and log-bucketed
//! histograms behind lock-free handles.
//!
//! Registration (looking a name up in the registry) takes a mutex — that is
//! the cold path, done once per metric at wiring time. The handles a
//! registration returns are `Arc`s onto shared atomic cells: incrementing a
//! counter is one relaxed `fetch_add` on a per-thread shard, recording a
//! histogram sample is two. A handle from a *disabled* registry carries no
//! cell at all, so the disabled hot path is a single branch on an enum
//! discriminant — no atomics, no loads from shared memory.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::histogram::{HistogramCell, HistogramSnapshot};
use crate::span::Stage;
use crate::trace::TraceSink;

/// Number of counter shards. Threads are spread round-robin over the
/// shards, so with a handful of worker threads each usually owns its shard
/// outright and a counter increment never bounces a contended cache line.
pub(crate) const COUNTER_SHARDS: usize = 16;

/// One cache line per shard so neighbouring shards never false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
pub(crate) struct PaddedAtomicU64(pub(crate) AtomicU64);

/// The sharded cell behind one named counter.
#[derive(Debug, Default)]
pub(crate) struct CounterCell {
    pub(crate) shards: [PaddedAtomicU64; COUNTER_SHARDS],
}

impl CounterCell {
    /// Folds the shards in fixed index order (deterministic for a quiesced
    /// counter, a consistent relaxed read otherwise).
    pub(crate) fn fold(&self) -> u64 {
        self.shards
            .iter()
            .map(|shard| shard.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// The shard this thread's counter increments land on, assigned round-robin
/// on first use so concurrent threads spread over distinct cache lines.
pub(crate) fn thread_shard() -> usize {
    static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SHARD.with(|cell| {
        let mut shard = cell.get();
        if shard == usize::MAX {
            shard = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
            cell.set(shard);
        }
        shard
    })
}

/// A monotonically increasing counter. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    pub(crate) cell: Option<Arc<CounterCell>>,
}

impl Counter {
    /// A no-op counter (what a disabled registry hands out).
    pub fn disabled() -> Self {
        Counter { cell: None }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. One relaxed `fetch_add` on this thread's shard when the
    /// counter is live; a single branch when it is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.shards[thread_shard()]
                .0
                .fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current folded value (0 for a disabled counter).
    pub fn value(&self) -> u64 {
        self.cell.as_ref().map_or(0, |cell| cell.fold())
    }
}

/// An instantaneous signed value (queue depths, open-stream counts).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    pub(crate) cell: Option<Arc<AtomicI64>>,
}

impl Gauge {
    /// A no-op gauge.
    pub fn disabled() -> Self {
        Gauge { cell: None }
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, value: i64) {
        if let Some(cell) = &self.cell {
            cell.store(value, Ordering::Relaxed);
        }
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// The current value (0 for a disabled gauge).
    pub fn value(&self) -> i64 {
        self.cell
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A log-bucketed histogram handle. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    pub(crate) cell: Option<Arc<HistogramCell>>,
}

impl Histogram {
    /// A no-op histogram.
    pub fn disabled() -> Self {
        Histogram { cell: None }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` samples sharing one value (e.g. frames of a batch
    /// sharing their submit timestamp).
    #[inline]
    pub fn record_n(&self, value: u64, n: u64) {
        if let Some(cell) = &self.cell {
            cell.record_n(value, n);
        }
    }

    /// A point-in-time snapshot (empty for a disabled histogram).
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.cell
            .as_ref()
            .map_or_else(HistogramSnapshot::default, |cell| cell.snapshot())
    }
}

/// Tuning knobs of a [`Registry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Master switch. A disabled registry hands out no-op handles, so every
    /// instrumentation site degenerates to one branch.
    pub enabled: bool,
    /// Span sampling period: a [`Stage`](crate::span::Stage) times one call
    /// in `sample_every` (1 = time every call). Item/call counters are
    /// always exact; sampling only thins the timing histogram so `Instant`
    /// reads stay off the steady-state hot path.
    pub sample_every: u32,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: true,
            sample_every: 16,
        }
    }
}

impl TelemetryConfig {
    /// Telemetry switched off.
    pub fn disabled() -> Self {
        TelemetryConfig {
            enabled: false,
            sample_every: 16,
        }
    }

    /// Full-sampling configuration: every span call is timed. Used by the
    /// bit-identity test batteries to maximise instrumentation pressure.
    pub fn full_sampling() -> Self {
        TelemetryConfig {
            enabled: true,
            sample_every: 1,
        }
    }

    /// Overrides the sampling period (clamped to ≥ 1).
    pub fn with_sample_every(mut self, sample_every: u32) -> Self {
        self.sample_every = sample_every.max(1);
        self
    }
}

/// What lives behind an enabled registry.
#[derive(Debug)]
pub(crate) struct RegistryInner {
    pub(crate) started: Instant,
    pub(crate) sample_every: u32,
    counters: Mutex<BTreeMap<String, Arc<CounterCell>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCell>>>,
    pub(crate) trace: Mutex<Option<Arc<TraceSink>>>,
}

/// A process- or subsystem-wide registry of named metrics.
///
/// Cheap to clone (an `Arc` internally); clones observe the same metrics.
/// `Registry::disabled()` carries no state at all and hands out no-op
/// handles.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    pub(crate) inner: Option<Arc<RegistryInner>>,
}

impl Registry {
    /// A registry following `config` (disabled config ⇒ no-op registry).
    pub fn new(config: TelemetryConfig) -> Self {
        if !config.enabled {
            return Registry { inner: None };
        }
        Registry {
            inner: Some(Arc::new(RegistryInner {
                started: Instant::now(),
                sample_every: config.sample_every.max(1),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                trace: Mutex::new(None),
            })),
        }
    }

    /// An enabled registry with default sampling.
    pub fn enabled() -> Self {
        Registry::new(TelemetryConfig::default())
    }

    /// A no-op registry: every handle it hands out is disabled.
    pub fn disabled() -> Self {
        Registry { inner: None }
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers (or looks up) the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter::disabled();
        };
        let mut counters = inner.counters.lock().expect("counter registry lock");
        let cell = counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(CounterCell::default()));
        Counter {
            cell: Some(Arc::clone(cell)),
        }
    }

    /// Registers (or looks up) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let Some(inner) = &self.inner else {
            return Gauge::disabled();
        };
        let mut gauges = inner.gauges.lock().expect("gauge registry lock");
        let cell = gauges
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicI64::new(0)));
        Gauge {
            cell: Some(Arc::clone(cell)),
        }
    }

    /// Registers (or looks up) the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let Some(inner) = &self.inner else {
            return Histogram::disabled();
        };
        let mut histograms = inner.histograms.lock().expect("histogram registry lock");
        let cell = histograms
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(HistogramCell::default()));
        Histogram {
            cell: Some(Arc::clone(cell)),
        }
    }

    /// Registers a pipeline stage: a `<name>_us` duration histogram plus
    /// exact `<name>_calls` / `<name>_items` counters, with span timing
    /// sampled at the registry's configured period.
    pub fn stage(&self, name: &str) -> Stage {
        Stage::new(self, name)
    }

    /// Attaches a JSON-lines trace sink; stages write one event per sampled
    /// span. Replaces any previous sink.
    pub fn set_trace_sink(&self, sink: Arc<TraceSink>) {
        if let Some(inner) = &self.inner {
            *inner.trace.lock().expect("trace sink lock") = Some(sink);
        }
    }

    /// A deterministic point-in-time snapshot: counter shards folded in
    /// fixed order, every map in name order. Disabled registries snapshot
    /// empty.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let Some(inner) = &self.inner else {
            return RegistrySnapshot::default();
        };
        let counters = inner
            .counters
            .lock()
            .expect("counter registry lock")
            .iter()
            .map(|(name, cell)| (name.clone(), cell.fold()))
            .collect();
        let gauges = inner
            .gauges
            .lock()
            .expect("gauge registry lock")
            .iter()
            .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
            .collect();
        let histograms = inner
            .histograms
            .lock()
            .expect("histogram registry lock")
            .iter()
            .map(|(name, cell)| (name.clone(), cell.snapshot()))
            .collect();
        RegistrySnapshot {
            uptime_secs: inner.started.elapsed().as_secs_f64(),
            counters,
            gauges,
            histograms,
        }
    }
}

/// A point-in-time, deterministic fold of every metric in a registry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RegistrySnapshot {
    /// Seconds since the registry was created.
    pub uptime_secs: f64,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// Whether nothing was registered (e.g. the registry is disabled).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// The counter `name`, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The histogram `name`, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }
}
