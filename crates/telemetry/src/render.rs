//! A `top`-style terminal renderer for live registry snapshots.
//!
//! [`render_dashboard`] formats one snapshot as a fixed-width panel —
//! counters with rates over the uptime window, histograms with
//! count/mean/p50/p99 — and [`cursor_home`] yields the ANSI prefix a
//! polling loop prints before each frame so the panel redraws in place.
//! The loadgen's `--top` mode polls the service's unified snapshot through
//! this renderer; plain strings in, plain strings out, so tests can pin the
//! layout without a terminal.

use crate::registry::RegistrySnapshot;

/// ANSI: cursor to top-left + clear to end of screen (redraw in place).
pub fn cursor_home() -> &'static str {
    "\x1b[H\x1b[J"
}

fn format_rate(value: u64, secs: f64) -> String {
    if secs <= 0.0 {
        return "-".to_string();
    }
    let rate = value as f64 / secs;
    if rate >= 1e6 {
        format!("{:.2}M/s", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.1}k/s", rate / 1e3)
    } else {
        format!("{rate:.1}/s")
    }
}

fn format_us(us: f64) -> String {
    if us >= 1e6 {
        format!("{:.2}s", us / 1e6)
    } else if us >= 1e3 {
        format!("{:.2}ms", us / 1e3)
    } else {
        format!("{us:.0}µs")
    }
}

/// Renders one snapshot as a multi-line dashboard panel titled `title`.
pub fn render_dashboard(snapshot: &RegistrySnapshot, title: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "=== {title} — up {:.1}s ===\n",
        snapshot.uptime_secs
    ));
    if snapshot.is_empty() {
        out.push_str("(telemetry disabled)\n");
        return out;
    }
    if !snapshot.counters.is_empty() {
        out.push_str(&format!(
            "{:<44} {:>14} {:>10}\n",
            "counter", "total", "rate"
        ));
        for (name, value) in &snapshot.counters {
            out.push_str(&format!(
                "{name:<44} {value:>14} {:>10}\n",
                format_rate(*value, snapshot.uptime_secs)
            ));
        }
    }
    if !snapshot.gauges.is_empty() {
        out.push_str(&format!("{:<44} {:>14}\n", "gauge", "value"));
        for (name, value) in &snapshot.gauges {
            out.push_str(&format!("{name:<44} {value:>14}\n"));
        }
    }
    if !snapshot.histograms.is_empty() {
        out.push_str(&format!(
            "{:<44} {:>10} {:>9} {:>9} {:>9}\n",
            "histogram", "count", "mean", "p50", "p99"
        ));
        for (name, hist) in &snapshot.histograms {
            out.push_str(&format!(
                "{name:<44} {:>10} {:>9} {:>9} {:>9}\n",
                hist.count,
                format_us(hist.mean()),
                format_us(hist.quantile(0.50)),
                format_us(hist.quantile(0.99)),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn dashboard_lists_every_metric_kind() {
        let registry = Registry::enabled();
        registry.counter("service.frames_completed").add(4096);
        registry.gauge("service.queue_depth").set(12);
        registry
            .histogram("service.stage.decode_us")
            .record_n(200, 64);
        let panel = render_dashboard(&registry.snapshot(), "loadgen");
        assert!(panel.contains("=== loadgen"));
        assert!(panel.contains("service.frames_completed"));
        assert!(panel.contains("4096"));
        assert!(panel.contains("service.queue_depth"));
        assert!(panel.contains("service.stage.decode_us"));
    }

    #[test]
    fn disabled_snapshot_renders_a_placeholder() {
        let panel = render_dashboard(&Registry::disabled().snapshot(), "x");
        assert!(panel.contains("telemetry disabled"));
    }
}
