//! Lightweight span tracing for pipeline stages.
//!
//! A [`Stage`] bundles the metrics one pipeline stage maintains: an exact
//! call counter, an exact item counter, and a **sampled** duration
//! histogram (`<name>_us`). Sampling keeps the two `Instant` reads off the
//! steady-state hot path — at the default period of 16 only every 16th call
//! is timed — while the counters stay exact, so throughput attribution
//! never lies. At `sample_every = 1` every call is timed (the configuration
//! the bit-identity batteries run under).
//!
//! Spans never touch decoded data: they time around a stage, not inside
//! it, which is how instrumentation stays bit-identity-preserving by
//! construction.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::registry::{Counter, Histogram, Registry, RegistryInner};

/// Decides which span calls get timed: a free-running ticket counter mod
/// the sampling period.
#[derive(Debug)]
struct Sampler {
    every: u32,
    tick: AtomicU32,
}

impl Sampler {
    #[inline]
    fn sample(&self) -> bool {
        self.every == 1
            || self
                .tick
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(self.every)
    }
}

/// One named pipeline stage. Cloning shares the underlying metrics.
#[derive(Debug, Clone, Default)]
pub struct Stage {
    name: Option<Arc<str>>,
    duration_us: Histogram,
    calls: Counter,
    items: Counter,
    sampler: Option<Arc<Sampler>>,
    registry: Option<Arc<RegistryInner>>,
}

impl Stage {
    /// Registers the stage's metrics in `registry` (no-op handles when the
    /// registry is disabled).
    pub(crate) fn new(registry: &Registry, name: &str) -> Self {
        if !registry.is_enabled() {
            return Stage::default();
        }
        let sample_every = registry
            .inner
            .as_ref()
            .map_or(1, |inner| inner.sample_every.max(1));
        Stage {
            name: Some(Arc::from(name)),
            duration_us: registry.histogram(&format!("{name}_us")),
            calls: registry.counter(&format!("{name}_calls")),
            items: registry.counter(&format!("{name}_items")),
            sampler: Some(Arc::new(Sampler {
                every: sample_every,
                tick: AtomicU32::new(0),
            })),
            registry: registry.inner.clone(),
        }
    }

    /// A stage that records nothing.
    pub fn disabled() -> Self {
        Stage::default()
    }

    /// Whether this stage records anything.
    pub fn is_enabled(&self) -> bool {
        self.name.is_some()
    }

    /// Opens a span over one call of this stage. When the call is sampled
    /// the span carries a start timestamp; otherwise (and always on a
    /// disabled stage) it is a no-op shell.
    #[inline]
    pub fn start(&self) -> Span<'_> {
        let start = match &self.sampler {
            Some(sampler) if sampler.sample() => Some(Instant::now()),
            _ => None,
        };
        Span { stage: self, start }
    }

    /// Books a pre-measured duration covering `items` items — for call
    /// sites that already hold a timestamp (e.g. the batcher records each
    /// run's submit→flush wait from the run's own submit instant). Counts
    /// are exact; the histogram update respects the sampling period.
    #[inline]
    pub fn record_duration(&self, duration: Duration, items: u64) {
        if self.name.is_none() {
            return;
        }
        self.calls.inc();
        self.items.add(items);
        if let Some(sampler) = &self.sampler {
            if sampler.sample() {
                self.book(duration, items);
            }
        }
    }

    fn book(&self, duration: Duration, items: u64) {
        let micros = duration.as_micros().min(u128::from(u64::MAX)) as u64;
        self.duration_us.record(micros);
        // The sink is looked up at booking time (under the sampling gate),
        // so a trace attached after wiring still sees every sampled span.
        if let (Some(registry), Some(name)) = (&self.registry, &self.name) {
            if let Some(trace) = registry.trace.lock().expect("trace sink lock").clone() {
                trace.write_event(name, micros, items);
            }
        }
    }
}

/// An open span; close it with [`Span::finish`].
#[derive(Debug)]
#[must_use = "a span measures nothing until finished"]
pub struct Span<'a> {
    stage: &'a Stage,
    start: Option<Instant>,
}

impl Span<'_> {
    /// Closes the span, booking `items` items into the stage's exact
    /// counters and — when the call was sampled — the elapsed time into
    /// its duration histogram (and the trace sink, if attached).
    #[inline]
    pub fn finish(self, items: u64) {
        if self.stage.name.is_none() {
            return;
        }
        self.stage.calls.inc();
        self.stage.items.add(items);
        if let Some(start) = self.start {
            self.stage.book(start.elapsed(), items);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::TelemetryConfig;

    #[test]
    fn sampled_stage_counts_exactly_but_times_sparsely() {
        let registry = Registry::new(TelemetryConfig::default().with_sample_every(4));
        let stage = registry.stage("test.stage");
        for _ in 0..16 {
            stage.start().finish(3);
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("test.stage_calls"), 16);
        assert_eq!(snap.counter("test.stage_items"), 48);
        let hist = snap.histogram("test.stage_us").expect("registered");
        assert_eq!(hist.count, 4, "one in four calls is timed");
    }

    #[test]
    fn full_sampling_times_every_call() {
        let registry = Registry::new(TelemetryConfig::full_sampling());
        let stage = registry.stage("full");
        for _ in 0..5 {
            stage.record_duration(Duration::from_micros(100), 1);
        }
        let hist = registry.snapshot();
        let hist = hist.histogram("full_us").expect("registered");
        assert_eq!(hist.count, 5);
        assert!(hist.quantile(0.5) >= 64.0 && hist.quantile(0.5) <= 128.0);
    }

    #[test]
    fn disabled_stage_is_inert() {
        let stage = Stage::disabled();
        assert!(!stage.is_enabled());
        stage.start().finish(10);
        stage.record_duration(Duration::from_secs(1), 10);
        let registry = Registry::disabled();
        let stage = registry.stage("anything");
        stage.start().finish(1);
        assert!(registry.snapshot().is_empty());
    }
}
