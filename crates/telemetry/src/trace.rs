//! JSON-lines trace export.
//!
//! A [`TraceSink`] appends one JSON object per sampled span to a file:
//!
//! ```json
//! {"ts_us":1234,"stage":"service.stage.decode","dur_us":210,"items":64}
//! ```
//!
//! `ts_us` is microseconds since the sink was created, `dur_us` the span
//! duration, `items` the item count the span covered. The format is
//! line-delimited so a partial file (a killed run) stays parseable line by
//! line. Writes go through one buffered writer behind a mutex — trace
//! export is for offline analysis of sampled spans, not a hot path.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

/// An append-only JSON-lines trace file.
#[derive(Debug)]
pub struct TraceSink {
    started: Instant,
    writer: Mutex<BufWriter<File>>,
}

impl TraceSink {
    /// Creates (truncating) the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Fails when the file cannot be created.
    pub fn create(path: &Path) -> std::io::Result<TraceSink> {
        let file = File::create(path)?;
        Ok(TraceSink {
            started: Instant::now(),
            writer: Mutex::new(BufWriter::new(file)),
        })
    }

    /// Appends one span event. Errors are swallowed: tracing must never
    /// take down the pipeline it observes.
    pub fn write_event(&self, stage: &str, dur_us: u64, items: u64) {
        let ts_us = self.started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        let line = serde_json::json!({
            "ts_us": ts_us,
            "stage": stage,
            "dur_us": dur_us,
            "items": items,
        });
        let Ok(text) = serde_json::to_string(&line) else {
            return;
        };
        if let Ok(mut writer) = self.writer.lock() {
            let _ = writeln!(writer, "{text}");
        }
    }

    /// Flushes buffered events to disk.
    pub fn flush(&self) {
        if let Ok(mut writer) = self.writer.lock() {
            let _ = writer.flush();
        }
    }
}

impl Drop for TraceSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_as_json_lines() {
        let path = std::env::temp_dir().join(format!(
            "qccd-trace-test-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let sink = TraceSink::create(&path).expect("create trace file");
        sink.write_event("stage.a", 42, 64);
        sink.write_event("stage.b", 7, 1);
        sink.flush();
        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = serde_json::from_str(lines[0]).expect("valid json");
        assert_eq!(first.get("stage").and_then(|v| v.as_str()), Some("stage.a"));
        assert_eq!(first.get("dur_us").and_then(|v| v.as_u64()), Some(42));
        assert_eq!(first.get("items").and_then(|v| v.as_u64()), Some(64));
        assert!(first.get("ts_us").and_then(|v| v.as_u64()).is_some());
        let _ = std::fs::remove_file(&path);
    }
}
