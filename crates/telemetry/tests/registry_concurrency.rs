//! Registry test battery: concurrent-increment correctness, snapshot-fold
//! determinism, histogram quantile accuracy bounds, and the near-zero-cost
//! contract of the disabled mode. (The <2% overhead gate on the word-decode
//! benchmark lives in `qccd-bench/benches/decoder.rs`, where the decode
//! path is available.)

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use qccd_telemetry::{
    bucket_bounds, bucket_index, quantile_from_counts, Registry, TelemetryConfig,
};

#[test]
fn concurrent_increments_never_lose_a_count() {
    let registry = Registry::enabled();
    let counter = registry.counter("concurrent.hits");
    let histogram = registry.histogram("concurrent.latency_us");
    let gauge = registry.gauge("concurrent.depth");
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 50_000;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let counter = counter.clone();
            let histogram = histogram.clone();
            let gauge = gauge.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    counter.inc();
                    histogram.record((t as u64) * 100 + (i % 7));
                    gauge.add(1);
                    gauge.add(-1);
                }
            });
        }
    });
    let snapshot = registry.snapshot();
    assert_eq!(
        snapshot.counter("concurrent.hits"),
        THREADS as u64 * PER_THREAD
    );
    let hist = snapshot
        .histogram("concurrent.latency_us")
        .expect("registered");
    assert_eq!(hist.count, THREADS as u64 * PER_THREAD);
    assert_eq!(snapshot.gauges["concurrent.depth"], 0);
}

#[test]
fn handles_to_the_same_name_share_one_cell() {
    let registry = Registry::enabled();
    registry.counter("shared.total").add(3);
    registry.counter("shared.total").add(4);
    assert_eq!(registry.snapshot().counter("shared.total"), 7);
    // A clone of the registry observes the same metrics.
    let clone = registry.clone();
    clone.counter("shared.total").inc();
    assert_eq!(registry.snapshot().counter("shared.total"), 8);
}

#[test]
fn snapshot_fold_is_deterministic() {
    // Two registries fed the same values from different thread interleavings
    // fold to identical snapshots (modulo uptime), and snapshotting twice
    // with no writes in between is a fixed point.
    let build = || {
        let registry = Registry::new(TelemetryConfig::full_sampling());
        let counter = registry.counter("det.count");
        let histogram = registry.histogram("det.hist_us");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let counter = counter.clone();
                let histogram = histogram.clone();
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        counter.add(2);
                        histogram.record(i % 1000);
                    }
                });
            }
        });
        registry
    };
    let (a, b) = (build().snapshot(), build().snapshot());
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.gauges, b.gauges);
    assert_eq!(a.histograms, b.histograms);
    let registry = build();
    let first = registry.snapshot();
    let second = registry.snapshot();
    assert_eq!(first.counters, second.counters);
    assert_eq!(first.histograms, second.histograms);
}

#[test]
fn histogram_quantiles_stay_within_the_covering_bucket() {
    // For random-ish multimodal data, every quantile estimate must stay
    // inside the bucket of the true quantile sample — the accuracy bound
    // the log-bucketed scheme promises.
    let registry = Registry::enabled();
    let histogram = registry.histogram("bounds.hist");
    let mut values: Vec<u64> = Vec::new();
    let mut x = 0x243F_6A88_85A3_08D3u64; // deterministic xorshift
    for _ in 0..10_000 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let v = x % 1_000_000;
        values.push(v);
        histogram.record(v);
    }
    values.sort_unstable();
    let snap = registry.snapshot();
    let hist = snap.histogram("bounds.hist").expect("registered");
    for q in [0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 1.0] {
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let truth = values[rank - 1];
        let (low, high) = bucket_bounds(bucket_index(truth));
        let estimate = hist.quantile(q);
        assert!(
            estimate >= low as f64 && estimate <= high as f64,
            "q={q}: estimate {estimate} outside [{low}, {high}] of true {truth}"
        );
        // The bucket bound implies a ≤2× relative error for values ≥ 2.
        if truth >= 2 {
            assert!(estimate <= 2.0 * truth as f64 && estimate >= truth as f64 / 2.0);
        }
    }
}

#[test]
fn quantile_from_counts_handles_edge_shapes() {
    assert_eq!(quantile_from_counts(&[], 0.5), 0.0);
    assert_eq!(quantile_from_counts(&[0, 0, 0], 0.5), 0.0);
    // A single sample reports from within its bucket at every quantile.
    let mut counts = vec![0u64; 64];
    counts[bucket_index(1000)] = 1;
    let (low, high) = bucket_bounds(bucket_index(1000));
    for q in [0.0, 0.5, 1.0] {
        let estimate = quantile_from_counts(&counts, q);
        assert!(estimate >= low as f64 && estimate <= high as f64);
    }
}

#[test]
fn disabled_registry_hands_out_inert_handles() {
    let registry = Registry::disabled();
    assert!(!registry.is_enabled());
    let counter = registry.counter("ghost");
    let histogram = registry.histogram("ghost_us");
    let gauge = registry.gauge("ghost_depth");
    counter.add(1_000_000);
    histogram.record_n(42, 1_000_000);
    gauge.set(9);
    assert_eq!(counter.value(), 0);
    assert_eq!(histogram.snapshot().count, 0);
    assert_eq!(gauge.value(), 0);
    assert!(registry.snapshot().is_empty());
    let stage = registry.stage("ghost.stage");
    stage.start().finish(64);
    assert!(registry.snapshot().is_empty());
}

#[test]
fn disabled_mode_is_near_zero_cost() {
    // The micro-contract behind the criterion gate: a disabled counter's
    // `add` must cost no more than a handful of nanoseconds — i.e. be
    // within noise of an empty loop over an `AtomicBool` check, the
    // cheapest conceivable "is telemetry on?" test. This is a smoke bound
    // (20×), not a benchmark; the <2% end-to-end gate lives in
    // `benches/decoder.rs`.
    let disabled = Registry::disabled().counter("off");
    let flag = AtomicBool::new(false);
    const ITERS: u64 = 2_000_000;
    let t0 = std::time::Instant::now();
    for _ in 0..ITERS {
        if flag.load(Ordering::Relaxed) {
            unreachable!();
        }
        std::hint::black_box(&flag);
    }
    let baseline = t0.elapsed();
    let t1 = std::time::Instant::now();
    for _ in 0..ITERS {
        disabled.add(1);
        std::hint::black_box(&disabled);
    }
    let measured = t1.elapsed();
    assert!(
        measured < baseline.saturating_mul(20) + std::time::Duration::from_millis(20),
        "disabled counter add too slow: {measured:?} vs baseline {baseline:?}"
    );
}

#[test]
fn trace_sink_receives_sampled_spans() {
    let path =
        std::env::temp_dir().join(format!("qccd-telemetry-trace-{}.jsonl", std::process::id()));
    let registry = Registry::new(TelemetryConfig::full_sampling());
    let sink = Arc::new(qccd_telemetry::TraceSink::create(&path).expect("create sink"));
    registry.set_trace_sink(Arc::clone(&sink));
    let stage = registry.stage("traced.stage");
    for _ in 0..3 {
        stage.start().finish(8);
    }
    sink.flush();
    let text = std::fs::read_to_string(&path).expect("trace file");
    assert_eq!(text.lines().count(), 3);
    for line in text.lines() {
        let event = serde_json::from_str(line).expect("valid json");
        assert_eq!(
            event.get("stage").and_then(|v| v.as_str()),
            Some("traced.stage")
        );
        assert_eq!(event.get("items").and_then(|v| v.as_u64()), Some(8));
    }
    let _ = std::fs::remove_file(&path);
}
