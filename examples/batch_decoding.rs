//! The batched, chunked, parallel decode pipeline end-to-end.
//!
//! Builds a noisy repetition-code memory experiment, then shows the three
//! layers the batch engine adds:
//!
//! 1. chunked sampling (`sample_detector_chunks`) with memory bounded by the
//!    chunk size;
//! 2. batch decoding (`decode_batch`) with a reusable `DecodeScratch`;
//! 3. the parallel estimator (`estimate_logical_error_rate_with`) with
//!    deterministic results and optional early stopping.
//!
//! Run with `cargo run --release --example batch_decoding`.

use qccd_circuit::{Instruction, QubitId};
use qccd_decoder::{
    estimate_logical_error_rate_with, DecodeScratch, Decoder, DecoderKind, DecodingGraph,
    EstimatorConfig, UnionFindDecoder,
};
use qccd_qec::{memory_experiment, repetition_code, MemoryBasis};
use qccd_sim::{
    sample_detector_chunks, DetectorErrorModel, NoiseChannel, NoisyCircuit, CANONICAL_BLOCK_SHOTS,
};

fn noisy_memory(distance: usize, rounds: usize, p: f64) -> NoisyCircuit {
    let code = repetition_code(distance);
    let exp = memory_experiment(&code, rounds, MemoryBasis::Z);
    let data: Vec<QubitId> = code.data_qubits();
    let mut noisy = NoisyCircuit::new();
    noisy.pad_qubits(exp.circuit.num_qubits());
    let first_ancilla = code.ancilla_qubits()[0];
    for instruction in exp.circuit.iter() {
        if let Instruction::Reset(q) = instruction {
            if *q == first_ancilla {
                for &d in &data {
                    noisy.push_noise(NoiseChannel::Depolarize1 { qubit: d, p });
                }
            }
        }
        noisy.push_gate(*instruction);
    }
    for detector in exp.circuit.detectors() {
        noisy.add_detector(detector.clone());
    }
    for observable in exp.circuit.observables() {
        noisy.add_observable(observable.clone());
    }
    noisy
}

fn main() {
    let circuit = noisy_memory(5, 3, 0.02);
    let shots = 6 * CANONICAL_BLOCK_SHOTS;

    // 1. Chunked sampling: peak memory is one chunk, not the whole run.
    let sampler =
        sample_detector_chunks(&circuit, shots, 7, CANONICAL_BLOCK_SHOTS).expect("valid circuit");
    println!(
        "sampling {} shots as {} chunks of ≤{} shots ({} detectors / shot)",
        sampler.total_shots(),
        sampler.num_chunks(),
        sampler.chunk_shots(),
        sampler.num_detectors(),
    );

    // 2. Batch decoding with one reusable scratch across all chunks.
    let dem = DetectorErrorModel::from_circuit(&circuit).expect("valid circuit");
    let decoder = UnionFindDecoder::new(DecodingGraph::from_dem(&dem));
    let mut scratch = DecodeScratch::new();
    let mut failures = 0usize;
    for chunk in sampler.chunks() {
        let predictions = decoder.decode_batch(&chunk, &mut scratch);
        for shot in 0..chunk.num_shots() {
            if (0..chunk.num_observables())
                .any(|o| chunk.observable_flipped(shot, o) != predictions.predicted(shot, o))
            {
                failures += 1;
            }
        }
    }
    println!(
        "manual chunk loop: {failures} failures / {shots} shots = {:.3e}",
        failures as f64 / shots as f64
    );

    // 3. The parallel estimator gives the same answer, bit for bit, for any
    //    chunk size or thread count...
    let estimate = estimate_logical_error_rate_with(
        &circuit,
        shots,
        7,
        DecoderKind::UnionFind,
        &EstimatorConfig::default(),
    )
    .expect("valid circuit");
    println!(
        "parallel estimator:  {} failures / {} shots = {:.3e} ± {:.1e}",
        estimate.failures, estimate.shots, estimate.logical_error_rate, estimate.std_error
    );
    assert_eq!(
        estimate.failures, failures,
        "pipeline must be deterministic"
    );

    // ...and can stop early once the estimate is good enough.
    let early = estimate_logical_error_rate_with(
        &circuit,
        100 * CANONICAL_BLOCK_SHOTS,
        7,
        DecoderKind::UnionFind,
        &EstimatorConfig::default()
            .with_chunk_shots(CANONICAL_BLOCK_SHOTS)
            .with_max_failures(10),
    )
    .expect("valid circuit");
    println!(
        "early stop at ≥10 failures: decoded {} of {} shots (LER {:.3e})",
        early.shots,
        100 * CANONICAL_BLOCK_SHOTS,
        early.logical_error_rate
    );
}
