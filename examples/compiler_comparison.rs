//! Our QEC-aware compiler versus the QCCDSim-style and Muzzle-the-Shuttle
//! style baselines (the Table-3 comparison, on a few configurations).
//!
//! Run with `cargo run --release --example compiler_comparison`.

use qccd_baselines::{MuzzleShuttleCompiler, QccdSimCompiler};
use qccd_core::{ArchitectureConfig, Compiler};
use qccd_hardware::{TopologyKind, WiringMethod};
use qccd_qec::{repetition_code, rotated_surface_code, CodeLayout};

fn main() {
    let rounds = 5;
    let cases: Vec<(&str, CodeLayout, TopologyKind, usize)> = vec![
        (
            "repetition d=5",
            repetition_code(5),
            TopologyKind::Linear,
            3,
        ),
        (
            "rotated surface d=3",
            rotated_surface_code(3),
            TopologyKind::Grid,
            3,
        ),
        (
            "rotated surface d=4",
            rotated_surface_code(4),
            TopologyKind::Grid,
            5,
        ),
    ];

    println!(
        "{:<22}{:>22}{:>22}{:>22}",
        "workload", "ours (ops / us)", "QCCDSim (ops / us)", "Muzzle (ops / us)"
    );
    for (name, layout, topology, capacity) in cases {
        let arch = ArchitectureConfig::new(topology, capacity, WiringMethod::Standard, 1.0);
        let format =
            |result: Result<qccd_core::CompiledProgram, qccd_core::CompileError>| match result {
                Ok(p) => format!("{} / {:.0}", p.movement_ops(), p.movement_time_us()),
                Err(_) => "NaN".to_string(),
            };
        let ours = format(Compiler::new(arch.clone()).compile_rounds(&layout, rounds));
        let qccdsim = format(QccdSimCompiler::new(arch.clone()).compile_rounds(&layout, rounds));
        let muzzle = format(MuzzleShuttleCompiler::new(arch).compile_rounds(&layout, rounds));
        println!("{name:<22}{ours:>22}{qccdsim:>22}{muzzle:>22}");
    }
    println!(
        "\nExpected shape: the QEC-aware compiler needs fewer movement operations and\n\
         less movement time than either baseline; the baselines may fail (NaN) on\n\
         configurations they cannot route, as the paper reports."
    );
}
