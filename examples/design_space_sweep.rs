//! Design-space sweep: evaluate trap capacities and communication topologies
//! for the rotated surface code, reproducing the qualitative conclusions of
//! §7.2 and §7.3 of the paper (grid ≈ switch ≫ linear; capacity 2 gives the
//! lowest, distance-independent round time).
//!
//! Run with `cargo run --release --example design_space_sweep`.

use qccd_core::{ArchitectureConfig, Toolflow};
use qccd_hardware::{TopologyKind, WiringMethod};

fn main() {
    let distances = [3usize, 5];
    let capacities = [2usize, 5, 12];
    let topologies = [
        TopologyKind::Grid,
        TopologyKind::Switch,
        TopologyKind::Linear,
    ];

    println!("QEC round time (us) for the rotated surface code\n");
    print!("{:<18}", "configuration");
    for d in distances {
        print!("{:>12}", format!("d={d}"));
    }
    println!();
    for topology in topologies {
        for capacity in capacities {
            let arch = ArchitectureConfig::new(topology, capacity, WiringMethod::Standard, 1.0);
            let toolflow = Toolflow::new(arch.clone());
            print!("{:<18}", arch.label());
            for d in distances {
                match toolflow.evaluate(d, false) {
                    Ok(metrics) => print!("{:>12.0}", metrics.qec_round_time_us),
                    Err(_) => print!("{:>12}", "unroutable"),
                }
            }
            println!();
        }
    }
    println!(
        "\nExpected shape: the grid and switch topologies track each other closely,\n\
         the linear topology is far slower, and capacity 2 gives the lowest round\n\
         time, nearly independent of code distance."
    );
}
