//! Lattice surgery on the recommended QCCD architecture.
//!
//! The paper's evaluation maintains a single logical qubit; its §8 argues the
//! conclusions extend to logical *operations* because lattice-surgery
//! circuits share the single-patch parity-check structure. This example
//! walks that argument with the compiler: it builds the merged patch of a
//! ZZ lattice surgery between two distance-3 patches, compiles it onto the
//! recommended capacity-2 grid, and compares the merged-phase round time and
//! logical error rate against the isolated patch.
//!
//! Run with `cargo run --release --example lattice_surgery`.

use qccd_core::{ArchitectureConfig, Toolflow};
use qccd_qec::{seam_data_qubits, surgery_workload, MergeKind};

fn main() {
    let distance = 3;
    let workload = surgery_workload(distance, MergeKind::ZZ);
    let seam = seam_data_qubits(&workload.merged, MergeKind::ZZ);
    println!(
        "ZZ lattice surgery at distance {distance}: two {}-qubit patches merge into one \
         {}-qubit patch through a {}-qubit seam",
        workload.patch.num_qubits(),
        workload.merged.num_qubits(),
        seam.len(),
    );

    // The paper's recommended design point: capacity-2 traps, grid topology,
    // standard wiring, 5X gate improvement.
    let toolflow = Toolflow::new(ArchitectureConfig::recommended(5.0)).with_shots(4_096);

    let patch = toolflow
        .evaluate_layout(&workload.patch, distance, true)
        .expect("the single patch compiles on the recommended architecture");
    let merged = toolflow
        .evaluate_layout(&workload.merged, distance, true)
        .expect("the merged patch compiles on the recommended architecture");

    println!("\nisolated patch ({} qubits):", workload.patch.num_qubits());
    println!(
        "  QEC round {:.0} us, {} movement ops/round, logical error rate {:.2e}",
        patch.qec_round_time_us,
        patch.movement_ops_per_round,
        patch.logical_error_rate().unwrap_or(f64::NAN),
    );
    println!("merged patch ({} qubits):", workload.merged.num_qubits());
    println!(
        "  QEC round {:.0} us, {} movement ops/round, logical error rate {:.2e}",
        merged.qec_round_time_us,
        merged.movement_ops_per_round,
        merged.logical_error_rate().unwrap_or(f64::NAN),
    );
    println!(
        "\nmerged/patch round-time ratio: {:.2} (≈1.0 means the capacity-2 grid keeps its \
         constant logical clock during surgery, which is the §8 claim)",
        merged.qec_round_time_us / patch.qec_round_time_us,
    );
    println!(
        "electrode overhead of the merged phase: {} -> {} electrodes",
        patch.resources.total_electrodes, merged.resources.total_electrodes,
    );
}
