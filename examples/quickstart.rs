//! Quickstart: compile a distance-3 rotated surface code onto the paper's
//! recommended architecture (capacity-2 traps, grid topology, standard
//! wiring), print the schedule statistics and estimate the logical error
//! rate.
//!
//! Run with `cargo run --release --example quickstart`.

use qccd_core::{ArchitectureConfig, Compiler};
use qccd_decoder::{estimate_logical_error_rate, DecoderKind};
use qccd_qec::{rotated_surface_code, MemoryBasis};

fn main() {
    // 1. The QEC code: a distance-3 rotated surface code (17 physical qubits).
    let code = rotated_surface_code(3);
    println!(
        "code: {} ({} data + {} ancilla qubits)",
        code.name(),
        code.data_qubits().len(),
        code.ancilla_qubits().len()
    );

    // 2. The candidate architecture: trap capacity 2, grid topology, direct
    //    DAC wiring, 5X gate improvement.
    let arch = ArchitectureConfig::recommended(5.0);
    println!("architecture: {}", arch.label());

    // 3. Compile one round of parity checks.
    let compiler = Compiler::new(arch);
    let round = compiler
        .compile_rounds(&code, 1)
        .expect("the recommended architecture hosts the code");
    println!(
        "one QEC round: {:.0} us elapsed, {} movement ops ({:.0} us of transport), {} traps / {} junctions",
        round.elapsed_time_us(),
        round.movement_ops(),
        round.movement_time_us(),
        round.device.num_traps(),
        round.device.num_junctions(),
    );

    // 4. Compile the full logical-identity experiment (d rounds) and estimate
    //    the logical error rate with the union-find decoder.
    let experiment = compiler
        .compile_memory_experiment(&code, code.distance(), MemoryBasis::Z)
        .expect("memory experiment compiles");
    let noisy = experiment.to_noisy_circuit();
    let estimate = estimate_logical_error_rate(&noisy, 20_000, 7, DecoderKind::UnionFind)
        .expect("annotations are consistent");
    println!(
        "logical identity ({} rounds): {:.0} us per shot, logical error rate {:.2e} ± {:.1e}",
        code.distance(),
        experiment.elapsed_time_us(),
        estimate.logical_error_rate,
        estimate.std_error,
    );
}
