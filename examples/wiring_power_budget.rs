//! Control-wiring comparison: standard (one DAC per electrode) versus WISE
//! (switch-network) wiring, reproducing the power/data-rate versus clock-speed
//! trade-off of §7.4 of the paper.
//!
//! Run with `cargo run --release --example wiring_power_budget`.

use qccd_core::{ArchitectureConfig, Toolflow};
use qccd_hardware::{estimate_resources, TopologyKind, WiringMethod};
use qccd_qec::rotated_surface_code;

fn main() {
    let distance = 5;
    let code = rotated_surface_code(distance);
    println!(
        "distance-{distance} rotated surface code ({} physical qubits)\n",
        code.num_qubits()
    );
    println!(
        "{:<18}{:>14}{:>14}{:>14}{:>16}",
        "configuration", "electrodes", "DACs", "power (W)", "round time (us)"
    );
    for (capacity, wiring) in [
        (2usize, WiringMethod::Standard),
        (2, WiringMethod::Wise),
        (5, WiringMethod::Wise),
    ] {
        let arch = ArchitectureConfig::new(TopologyKind::Grid, capacity, wiring, 5.0);
        let device = arch.device_for(code.num_qubits());
        let resources = estimate_resources(&device, wiring);
        let round = Toolflow::new(arch.clone())
            .evaluate(distance, false)
            .map(|m| m.qec_round_time_us)
            .unwrap_or(f64::NAN);
        println!(
            "{:<18}{:>14}{:>14}{:>14.1}{:>16.0}",
            arch.label(),
            resources.total_electrodes,
            resources.dacs,
            resources.power_w,
            round
        );
    }
    println!(
        "\nExpected shape: WISE needs orders of magnitude fewer DACs (and watts),\n\
         but its serialised transport makes every QEC round much slower — the\n\
         power versus cycle-time trade-off the paper identifies."
    );
}
