//! Workspace-level integration tests: the QEC-aware compiler outperforms the
//! baseline compilers on movement metrics (the Table-3 comparison).

use qccd_baselines::{MuzzleShuttleCompiler, QccdSimCompiler};
use qccd_core::{ArchitectureConfig, Compiler};
use qccd_hardware::{TopologyKind, WiringMethod};
use qccd_qec::{repetition_code, rotated_surface_code};

#[test]
fn ours_never_moves_more_than_qccdsim_on_grid_configs() {
    for (layout, capacity) in [
        (rotated_surface_code(2), 3usize),
        (rotated_surface_code(3), 3),
        (rotated_surface_code(3), 5),
    ] {
        let arch =
            ArchitectureConfig::new(TopologyKind::Grid, capacity, WiringMethod::Standard, 1.0);
        let ours = Compiler::new(arch.clone())
            .compile_rounds(&layout, 5)
            .unwrap();
        if let Ok(baseline) = QccdSimCompiler::new(arch).compile_rounds(&layout, 5) {
            assert!(
                ours.movement_ops() <= baseline.movement_ops(),
                "{} c{capacity}: ours {} vs baseline {}",
                layout.name(),
                ours.movement_ops(),
                baseline.movement_ops()
            );
        }
    }
}

#[test]
fn ours_beats_muzzle_on_movement_time_for_the_repetition_code() {
    let layout = repetition_code(5);
    let arch = ArchitectureConfig::new(TopologyKind::Linear, 3, WiringMethod::Standard, 1.0);
    let ours = Compiler::new(arch.clone())
        .compile_rounds(&layout, 5)
        .unwrap();
    let muzzle = MuzzleShuttleCompiler::new(arch)
        .compile_rounds(&layout, 5)
        .unwrap();
    assert!(ours.elapsed_time_us() <= muzzle.elapsed_time_us());
}

#[test]
fn baselines_report_failures_rather_than_panicking() {
    // Structure-unaware placement on a linear chain may be unroutable; the
    // harness expects an error, not a panic (these become the NaN entries of
    // Table 3).
    let layout = rotated_surface_code(4);
    let arch = ArchitectureConfig::new(TopologyKind::Linear, 2, WiringMethod::Standard, 1.0);
    let _ = QccdSimCompiler::new(arch.clone()).compile_rounds(&layout, 5);
    let _ = MuzzleShuttleCompiler::new(arch).compile_rounds(&layout, 5);
}
