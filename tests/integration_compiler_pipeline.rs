//! Workspace-level integration tests: the full compile pipeline
//! (map → route → schedule) across codes, topologies and capacities.

use qccd_core::{check_resource_exclusivity, ArchitectureConfig, Compiler, RoutedOp};
use qccd_hardware::{TopologyKind, WiringMethod};
use qccd_qec::{parity_check_round, repetition_code, rotated_surface_code, unrotated_surface_code};

#[test]
fn every_code_compiles_on_the_recommended_architecture() {
    let compiler = Compiler::new(ArchitectureConfig::recommended(1.0));
    for layout in [
        repetition_code(4),
        rotated_surface_code(3),
        rotated_surface_code(5),
        unrotated_surface_code(3),
    ] {
        let program = compiler
            .compile_rounds(&layout, 1)
            .unwrap_or_else(|e| panic!("{}: {e}", layout.name()));
        assert_eq!(
            program.routed.num_gate_ops(),
            parity_check_round(&layout).len(),
            "{}: every instruction must appear exactly once",
            layout.name()
        );
        assert!(check_resource_exclusivity(&program.schedule, WiringMethod::Standard).is_ok());
    }
}

#[test]
fn schedules_are_resource_exclusive_across_capacities_and_topologies() {
    let layout = rotated_surface_code(3);
    for topology in [TopologyKind::Grid, TopologyKind::Switch] {
        for capacity in [2usize, 3, 6, 17] {
            let arch = ArchitectureConfig::new(topology, capacity, WiringMethod::Standard, 1.0);
            let program = Compiler::new(arch)
                .compile_rounds(&layout, 1)
                .unwrap_or_else(|e| panic!("{topology:?} c{capacity}: {e}"));
            check_resource_exclusivity(&program.schedule, WiringMethod::Standard)
                .unwrap_or_else(|e| panic!("{topology:?} c{capacity}: {e}"));
        }
    }
}

#[test]
fn movement_decreases_as_capacity_grows() {
    let layout = rotated_surface_code(3);
    let movement = |capacity: usize| {
        Compiler::new(ArchitectureConfig::new(
            TopologyKind::Grid,
            capacity,
            WiringMethod::Standard,
            1.0,
        ))
        .compile_rounds(&layout, 1)
        .unwrap()
        .movement_ops()
    };
    let m2 = movement(2);
    let m6 = movement(6);
    let m17 = movement(17);
    assert!(
        m2 > m6,
        "capacity 2 ({m2}) must move more than capacity 6 ({m6})"
    );
    assert_eq!(m17, 0, "a single-chain device needs no movement");
}

#[test]
fn wise_wiring_serialises_transport_in_the_schedule() {
    let layout = rotated_surface_code(3);
    let arch = ArchitectureConfig::new(TopologyKind::Grid, 2, WiringMethod::Wise, 1.0);
    let program = Compiler::new(arch).compile_rounds(&layout, 1).unwrap();
    check_resource_exclusivity(&program.schedule, WiringMethod::Wise).unwrap();
    // No two movement primitives overlap in time anywhere on the device.
    let mut intervals: Vec<(f64, f64)> = program
        .schedule
        .ops
        .iter()
        .filter(|s| matches!(s.op, RoutedOp::Movement { .. }))
        .map(|s| (s.start_us, s.end_us))
        .collect();
    intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    for pair in intervals.windows(2) {
        assert!(
            pair[1].0 >= pair[0].1 - 1e-9,
            "WISE transport must not overlap: {pair:?}"
        );
    }
}
