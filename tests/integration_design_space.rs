//! Workspace-level integration tests: the design-space exploration toolflow
//! reproduces the paper's qualitative architecture conclusions.

use qccd_core::{ArchitectureConfig, Toolflow};
use qccd_hardware::{TopologyKind, WiringMethod};

#[test]
fn capacity_two_grid_has_nearly_constant_round_time() {
    let toolflow = Toolflow::new(ArchitectureConfig::recommended(1.0));
    let t3 = toolflow.evaluate(3, false).unwrap().qec_round_time_us;
    let t5 = toolflow.evaluate(5, false).unwrap().qec_round_time_us;
    let t7 = toolflow.evaluate(7, false).unwrap().qec_round_time_us;
    let max = t3.max(t5).max(t7);
    let min = t3.min(t5).min(t7);
    assert!(
        max / min < 1.4,
        "round times should be nearly constant: {t3:.0}, {t5:.0}, {t7:.0}"
    );
}

#[test]
fn grid_and_switch_topologies_track_each_other() {
    let grid = Toolflow::new(ArchitectureConfig::new(
        TopologyKind::Grid,
        2,
        WiringMethod::Standard,
        1.0,
    ))
    .evaluate(3, false)
    .unwrap()
    .qec_round_time_us;
    let switch = Toolflow::new(ArchitectureConfig::new(
        TopologyKind::Switch,
        2,
        WiringMethod::Standard,
        1.0,
    ))
    .evaluate(3, false)
    .unwrap()
    .qec_round_time_us;
    let ratio = (grid / switch).max(switch / grid);
    assert!(ratio < 2.0, "grid {grid:.0} vs switch {switch:.0}");
}

#[test]
fn capacity_two_beats_larger_traps_on_round_time() {
    let round_time = |capacity: usize| {
        Toolflow::new(ArchitectureConfig::new(
            TopologyKind::Grid,
            capacity,
            WiringMethod::Standard,
            1.0,
        ))
        .evaluate(5, false)
        .unwrap()
        .qec_round_time_us
    };
    let c2 = round_time(2);
    let c12 = round_time(12);
    assert!(
        c2 < c12,
        "capacity 2 ({c2:.0}) should beat capacity 12 ({c12:.0})"
    );
}

#[test]
fn wise_cuts_data_rate_but_slows_the_clock() {
    let standard = Toolflow::new(ArchitectureConfig::new(
        TopologyKind::Grid,
        2,
        WiringMethod::Standard,
        5.0,
    ))
    .evaluate(3, false)
    .unwrap();
    let wise = Toolflow::new(ArchitectureConfig::new(
        TopologyKind::Grid,
        2,
        WiringMethod::Wise,
        5.0,
    ))
    .evaluate(3, false)
    .unwrap();
    // At distance 3 the standard architecture already needs ~10x the DACs of
    // WISE; the gap widens by orders of magnitude at larger distances
    // (Figure 13a), but the integration test keeps the workload small.
    assert!(wise.resources.data_rate_gbit_s * 5.0 < standard.resources.data_rate_gbit_s);
    assert!(wise.qec_round_time_us > 2.0 * standard.qec_round_time_us);
}
