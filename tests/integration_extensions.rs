//! Integration tests for the extension experiments (lattice surgery,
//! clustering ablation, decoder ablation).
//!
//! These cross-crate tests pin the qualitative conclusions the extension
//! benches report: the capacity-2 grid keeps its constant round time under
//! lattice surgery, the geometric clustering is what buys the compiler its
//! movement advantage, and the decoder substitution documented in DESIGN.md
//! does not change which configurations are viable.

use qccd_core::{ArchitectureConfig, ClusteringStrategy, Compiler, Toolflow};
use qccd_decoder::{estimate_logical_error_rate, DecoderKind};
use qccd_hardware::{TopologyKind, WiringMethod};
use qccd_qec::{rotated_surface_code, surgery_workload, MemoryBasis, MergeKind};

#[test]
fn lattice_surgery_keeps_the_capacity_two_round_time_constant() {
    // §8: the merged patch of a ZZ surgery has the same local structure as a
    // single patch, so the capacity-2 grid should run it at (almost) the
    // same round time even though it has ~2.4x the qubits.
    let toolflow = Toolflow::new(ArchitectureConfig::recommended(1.0));
    let workload = surgery_workload(3, MergeKind::ZZ);
    let patch = toolflow
        .evaluate_layout(&workload.patch, 1, false)
        .expect("patch compiles");
    let merged = toolflow
        .evaluate_layout(&workload.merged, 1, false)
        .expect("merged patch compiles");
    let ratio = merged.qec_round_time_us / patch.qec_round_time_us;
    assert!(
        ratio < 1.35,
        "merged-patch round time should stay near the single-patch constant, got ratio {ratio:.2}"
    );
    // The merged patch still needs more movement in absolute terms — it is
    // the *time* that stays flat, thanks to parallelism.
    assert!(merged.movement_ops_per_round > patch.movement_ops_per_round);
}

#[test]
fn lattice_surgery_slows_down_on_large_traps() {
    // The same merged patch on a capacity-6 grid serialises within traps,
    // so the merged phase costs noticeably more than an isolated patch.
    let toolflow = Toolflow::new(ArchitectureConfig::new(
        TopologyKind::Grid,
        6,
        WiringMethod::Standard,
        1.0,
    ));
    let workload = surgery_workload(3, MergeKind::ZZ);
    let patch = toolflow
        .evaluate_layout(&workload.patch, 1, false)
        .expect("patch compiles");
    let merged = toolflow
        .evaluate_layout(&workload.merged, 1, false)
        .expect("merged patch compiles");
    assert!(
        merged.qec_round_time_us > 1.5 * patch.qec_round_time_us,
        "large traps should not keep the surgery round time constant: {:.0} vs {:.0}",
        merged.qec_round_time_us,
        patch.qec_round_time_us
    );
}

#[test]
fn round_robin_ablation_compiles_but_costs_more_movement() {
    let layout = rotated_surface_code(3);
    let arch = ArchitectureConfig::new(TopologyKind::Grid, 6, WiringMethod::Standard, 1.0);
    let geometric = Compiler::new(arch.clone())
        .compile_rounds(&layout, 2)
        .expect("geometric mapping compiles");
    let blind = Compiler::new(arch)
        .with_mapping_strategy(ClusteringStrategy::RoundRobin)
        .compile_rounds(&layout, 2)
        .expect("round-robin mapping compiles");
    assert!(
        geometric.movement_ops() < blind.movement_ops(),
        "round-robin should need more movement: {} vs {}",
        geometric.movement_ops(),
        blind.movement_ops()
    );
    assert!(geometric.elapsed_time_us() <= blind.elapsed_time_us());
}

#[test]
fn decoder_choice_shifts_but_does_not_reorder_logical_error_rates() {
    // Compile one memory experiment and decode the same circuit with all
    // three decoders. The exact matcher is the reference: union-find must be
    // within a modest factor, and no decoder may turn a clearly
    // below-threshold configuration into an above-threshold one.
    let layout = rotated_surface_code(3);
    let compiler = Compiler::new(ArchitectureConfig::recommended(10.0));
    let program = compiler
        .compile_memory_experiment(&layout, 3, MemoryBasis::Z)
        .expect("memory experiment compiles");
    let noisy = program.to_noisy_circuit();

    let shots = 3_000;
    let union_find = estimate_logical_error_rate(&noisy, shots, 11, DecoderKind::UnionFind)
        .unwrap()
        .logical_error_rate;
    let exact = estimate_logical_error_rate(&noisy, shots, 11, DecoderKind::ExactMatching)
        .unwrap()
        .logical_error_rate;
    let greedy = estimate_logical_error_rate(&noisy, shots, 11, DecoderKind::GreedyMatching)
        .unwrap()
        .logical_error_rate;

    // All three must be in a sane range for a 10X-improved capacity-2 grid.
    for (name, ler) in [
        ("union-find", union_find),
        ("exact", exact),
        ("greedy", greedy),
    ] {
        assert!(
            ler < 0.35,
            "{name} logical error rate implausibly high: {ler}"
        );
    }
    // The exact matcher never does worse than greedy by more than noise, and
    // union-find sits within a small factor of the exact reference.
    let tolerance = 6.0 * (exact.max(1e-4) / shots as f64).sqrt();
    assert!(
        exact <= greedy + tolerance,
        "exact ({exact}) should not be beaten by greedy ({greedy})"
    );
    assert!(
        union_find <= 5.0 * exact + tolerance + 5.0 / shots as f64,
        "union-find ({union_find}) too far from the exact reference ({exact})"
    );
}
