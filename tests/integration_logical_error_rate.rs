//! Workspace-level integration tests: end-to-end logical error rate
//! estimation through compile → noise lowering → sampling → decoding.

use qccd_core::{ArchitectureConfig, Compiler, Toolflow};
use qccd_decoder::{estimate_logical_error_rate, DecoderKind};
use qccd_qec::{rotated_surface_code, MemoryBasis};
use qccd_sim::verify_detectors;

#[test]
fn compiled_memory_experiments_have_valid_detectors() {
    let compiler = Compiler::new(ArchitectureConfig::recommended(5.0));
    for d in [2usize, 3] {
        let layout = rotated_surface_code(d);
        let program = compiler
            .compile_memory_experiment(&layout, d, MemoryBasis::Z)
            .unwrap();
        let mut quiet = program.arch.noise;
        quiet.t2_seconds = f64::INFINITY;
        quiet.background_heating_per_us = 0.0;
        quiet.laser_instability_a0 = 0.0;
        quiet.reset_error = 0.0;
        quiet.measurement_error = 0.0;
        let noiseless = program.to_noisy_circuit_with(&quiet);
        verify_detectors(&noiseless, &[0, 3]).expect("detectors stay deterministic");
    }
}

#[test]
fn logical_error_rate_improves_with_gate_improvement() {
    let evaluate = |improvement: f64| {
        Toolflow::new(ArchitectureConfig::recommended(improvement))
            .with_shots(4_000)
            .evaluate(3, true)
            .unwrap()
            .logical_error_rate()
            .unwrap()
    };
    let coarse = evaluate(1.0);
    let fine = evaluate(10.0);
    assert!(
        fine < coarse,
        "10X gates ({fine}) must beat 1X gates ({coarse})"
    );
}

#[test]
fn union_find_and_greedy_decoders_agree_on_magnitude() {
    let compiler = Compiler::new(ArchitectureConfig::recommended(5.0));
    let layout = rotated_surface_code(3);
    let noisy = compiler
        .compile_memory_experiment(&layout, 3, MemoryBasis::Z)
        .unwrap()
        .to_noisy_circuit();
    let uf = estimate_logical_error_rate(&noisy, 4_000, 5, DecoderKind::UnionFind).unwrap();
    let greedy =
        estimate_logical_error_rate(&noisy, 4_000, 5, DecoderKind::GreedyMatching).unwrap();
    assert!(uf.logical_error_rate <= greedy.logical_error_rate * 5.0 + 0.02);
    assert!(greedy.logical_error_rate <= uf.logical_error_rate * 5.0 + 0.02);
}
