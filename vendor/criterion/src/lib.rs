//! API-subset shim for `criterion` (see `vendor/README.md`).
//!
//! Implements benchmark groups, `bench_function` / `bench_with_input` and a
//! simple warmup + sampled-timing loop, reporting mean, min and max time per
//! iteration on stdout. Like upstream criterion, passing `--test` on the
//! command line (`cargo bench ... -- --test`) runs every benchmark routine
//! exactly once without timing — the CI smoke mode — and a positional
//! argument (`cargo bench ... -- word_decode`) restricts the run to
//! benchmarks whose `group/function` label contains it (upstream accepts a
//! regex; this shim matches substrings). Statistical analysis, plots and
//! baselines are out of scope.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) {
        run_benchmark(&id.to_string(), 20, &mut f);
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples collected per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, &mut f);
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the routine.
#[derive(Debug)]
pub struct Bencher {
    /// Iterations to run in this sample.
    iterations: u64,
    /// Measured wall time of the sample.
    elapsed: Duration,
}

impl Bencher {
    /// Times `iterations` runs of the routine.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_sample(f: &mut dyn FnMut(&mut Bencher), iterations: u64) -> Duration {
    let mut bencher = Bencher {
        iterations,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    bencher.elapsed
}

fn format_time(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos / 1_000_000_000.0)
    }
}

/// Whether `--test` was passed to the bench binary (smoke mode: run each
/// routine once, skip timing).
fn test_mode() -> bool {
    std::env::args().any(|arg| arg == "--test")
}

/// The first positional (non-flag) argument, if any: a substring filter on
/// the `group/function` benchmark label, mirroring upstream criterion's
/// positional FILTER.
fn label_filter() -> Option<String> {
    std::env::args().skip(1).find(|arg| !arg.starts_with('-'))
}

fn matches_filter(label: &str) -> bool {
    label_filter().is_none_or(|filter| label.contains(&filter))
}

fn run_benchmark(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    if !matches_filter(label) {
        return;
    }
    if test_mode() {
        run_sample(f, 1);
        println!("Testing {label} ... ok");
        return;
    }
    // Warmup: find an iteration count that makes one sample take ≥ ~20 ms,
    // warming caches along the way. Cap the calibration effort so very slow
    // routines still terminate quickly.
    let mut iterations: u64 = 1;
    let target_sample = Duration::from_millis(20);
    loop {
        let elapsed = run_sample(f, iterations);
        if elapsed >= target_sample || iterations >= 1 << 20 {
            break;
        }
        if elapsed >= Duration::from_millis(250) {
            break;
        }
        iterations = if elapsed.is_zero() {
            iterations * 8
        } else {
            let scale = target_sample.as_secs_f64() / elapsed.as_secs_f64();
            ((iterations as f64 * scale.clamp(1.1, 8.0)).ceil()) as u64
        };
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let elapsed = run_sample(f, iterations);
        per_iter.push(elapsed.as_secs_f64() * 1e9 / iterations as f64);
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.first().copied().unwrap_or(0.0);
    let max = per_iter.last().copied().unwrap_or(0.0);
    println!(
        "{label:<50} time: [{} {} {}]  ({} samples x {} iters)",
        format_time(min),
        format_time(mean),
        format_time(max),
        sample_size,
        iterations,
    );
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
