//! Collection strategies (`prop::collection::{vec, btree_set}`).

use std::collections::BTreeSet;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A size specification: a fixed size or a half-open range of sizes.
#[derive(Debug, Clone)]
pub struct SizeRange {
    start: usize,
    end: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            start: n,
            end: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            start: r.start,
            end: r.end.max(r.start + 1),
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        let width = self.end - self.start;
        self.start + rng.next_index(width.max(1))
    }
}

/// Strategy for `Vec<T>` with sizes drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors of `element` values with lengths in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy for `BTreeSet<T>` with target sizes drawn from `size`.
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut out = BTreeSet::new();
        // Duplicates collapse, so allow a few extra draws to approach the
        // target size before giving up.
        for _ in 0..target * 4 {
            if out.len() >= target {
                break;
            }
            out.insert(self.element.generate(rng));
        }
        out
    }
}

/// Generates ordered sets of `element` values with sizes in `size`.
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}
