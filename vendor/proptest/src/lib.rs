//! API-subset shim for `proptest` (see `vendor/README.md`).
//!
//! Supports the strategy combinators the workspace's property tests use:
//! range strategies, tuples, `Just`, `any::<bool>()`, `prop_oneof!`,
//! `prop::collection::{vec, btree_set}` and `.prop_map`, driven by the
//! [`proptest!`] macro with a per-test deterministic RNG. Failing cases are
//! reported with their generated inputs via `Debug`, but are not shrunk.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The usual `use proptest::prelude::*;` surface.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn it_holds(x in 0usize..10, flag in any::<bool>()) {
///         prop_assert!(x < 10 || flag);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_tests {
    ( ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block
    )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let mut __proptest_rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __proptest_case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &$strategy,
                            &mut __proptest_rng,
                        );
                    )+
                    let __proptest_inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let __proptest_outcome: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = __proptest_outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}",
                            __proptest_case + 1,
                            config.cases,
                            e,
                            __proptest_inputs,
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left == *right,
                    "assertion failed: `{:?}` == `{:?}`",
                    left,
                    right
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(*left == *right, $($fmt)+);
            }
        }
    };
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left != *right,
                    "assertion failed: `{:?}` != `{:?}`",
                    left,
                    right
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(*left != *right, $($fmt)+);
            }
        }
    };
}

/// Skips the current case when its inputs do not satisfy a precondition.
/// (The shim simply treats the case as passing.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Picks uniformly among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new()$(.or($strategy))+
    };
}
