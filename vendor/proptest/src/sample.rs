//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.next_index(self.options.len())].clone()
    }
}

/// Picks one of the given options uniformly at random.
///
/// # Panics
///
/// Panics at generation time if `options` is empty.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select needs at least one option");
    Select { options }
}
