//! Value-generation strategies.

use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A generator of random values of one type.
///
/// Unlike upstream proptest there is no shrinking: a strategy is just a
/// deterministic function of the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { base: self, f }
    }

    /// Filters generated values, retrying until the predicate holds (up to
    /// an internal retry bound, after which the last value is returned).
    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { base: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.base.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    base: S,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let mut value = self.base.generate(rng);
        for _ in 0..100 {
            if (self.f)(&value) {
                break;
            }
            value = self.base.generate(rng);
        }
        value
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                let draw = (u128::from(rng.next_u64()) * width) >> 64;
                (self.start as i128 + draw as i128) as $t
            }
        })*
    };
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*
    };
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Types with a canonical strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy of a type: `any::<bool>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Uniform choice among strategies with a common value type (built by
/// `prop_oneof!`).
pub struct Union<V> {
    options: Vec<Rc<dyn Strategy<Value = V>>>,
}

impl<V> Default for Union<V> {
    fn default() -> Self {
        Union::new()
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<V> std::fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} options)", self.options.len())
    }
}

impl<V> Union<V> {
    /// An empty union; populate with [`Union::or`].
    pub fn new() -> Self {
        Union {
            options: Vec::new(),
        }
    }

    /// Adds one alternative.
    pub fn or(mut self, strategy: impl Strategy<Value = V> + 'static) -> Self {
        self.options.push(Rc::new(strategy));
        self
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        assert!(!self.options.is_empty(), "empty prop_oneof!");
        let pick = rng.next_index(self.options.len());
        self.options[pick].generate(rng)
    }
}
