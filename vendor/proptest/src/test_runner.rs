//! Test-runner types: configuration, RNG and failure reporting.

use std::fmt;

/// Per-test configuration (only `cases` is honoured by the shim).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property-test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic per-test RNG (SplitMix64 seeded from the test's path).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the RNG for a test, seeded from its fully-qualified name so
    /// every run regenerates the same cases.
    pub fn for_test(test_path: &str) -> Self {
        // FNV-1a over the path.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_path.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform index in `[0, bound)`.
    pub fn next_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "next_index bound must be positive");
        ((u128::from(self.next_u64()) * bound as u128) >> 64) as usize
    }
}
