//! API-subset shim for `rand` 0.8 (see `vendor/README.md`).
//!
//! Provides [`RngCore`], the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`) and [`SeedableRng`]. Integer ranges are sampled with the
//! widening-multiply method; floats use the standard 53-bit mantissa fill.
//! Streams are deterministic but not bit-compatible with upstream `rand`.

use std::ops::Range;

/// Core random-number generation: a source of `u64` words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (high half of [`RngCore::next_u64`] by
    /// default).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from an [`RngCore`] (the `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {
        $(impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let draw = (u128::from(rng.next_u64()) * width) >> 64;
                (self.start as i128 + draw as i128) as $t
            }
        })*
    };
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience methods on every [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// SplitMix64: used to expand seeds and as a lightweight generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator with the given state.
    pub fn new(state: u64) -> Self {
        SplitMix64 { state }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(state: u64) -> Self {
        SplitMix64::new(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix64::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u8 = rng.gen_range(1..16u8);
            assert!((1..16).contains(&v));
            let w = rng.gen_range(0..3);
            assert!((0..3).contains(&w));
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn floats_are_uniformish() {
        let mut rng = SplitMix64::seed_from_u64(1);
        let mean: f64 = (0..100_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bools_are_balanced() {
        let mut rng = SplitMix64::seed_from_u64(3);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_500..5_500).contains(&trues), "{trues} trues");
    }
}
