//! `ChaCha8Rng` shim over a real 8-round ChaCha core (see
//! `vendor/README.md`).
//!
//! The keystream is genuine ChaCha with 8 double-rounds; only the seeding
//! convention differs from upstream `rand_chacha` (the 256-bit key is
//! expanded from the `u64` seed with SplitMix64), so streams are
//! deterministic but not bit-compatible with the real crate.

use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha random number generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14).
    counter: u64,
    /// Stream id (state words 14..16).
    stream: u64,
    /// Buffered keystream block.
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means "refill".
    index: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;
        let input = state;
        // 8 rounds = 4 double-rounds of column + diagonal quarter-rounds.
        for _ in 0..4 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buffer[i] = state[i].wrapping_add(input[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    /// Selects an independent keystream (mirrors `set_stream`).
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.counter = 0;
        self.index = 16;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        let mut expander = rand::SplitMix64::new(state);
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let word = expander.next_u64();
            pair[0] = word as u32;
            if pair.len() > 1 {
                pair[1] = (word >> 32) as u32;
            }
        }
        ChaCha8Rng {
            key,
            counter: 0,
            stream: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn streams_are_independent() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        b.set_stream(9);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn word_bits_are_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let ones: u32 = (0..1000).map(|_| rng.gen::<u64>().count_ones()).sum();
        let rate = ones as f64 / 64_000.0;
        assert!((rate - 0.5).abs() < 0.01, "bit rate {rate}");
    }
}
