//! API-subset shim for `rayon` (see `vendor/README.md`).
//!
//! Provides order-preserving `into_par_iter().map(..).collect()` over ranges
//! and vectors, plus [`ThreadPoolBuilder`] / [`ThreadPool::install`] for
//! scoping the worker count. Work is split eagerly into one contiguous block
//! per worker (no work stealing) and executed on `std::thread::scope`
//! threads, so borrowed captures work exactly like with upstream rayon.

use std::cell::Cell;

thread_local! {
    /// Worker-count override installed by [`ThreadPool::install`].
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of worker threads parallel iterators will use in this
/// context: an installed pool's size, else `RAYON_NUM_THREADS`, else the
/// machine's available parallelism.
pub fn current_num_threads() -> usize {
    if let Some(n) = INSTALLED_THREADS.with(Cell::get) {
        return n.max(1);
    }
    if let Ok(value) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Error building a thread pool (the shim never fails).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rayon shim thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with the default worker count.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the worker count (`0` means the environment default).
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    ///
    /// Mirrors the upstream signature; the shim never fails.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            current_num_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// A scope with a fixed worker count. The shim spawns scoped threads per
/// parallel call rather than keeping a persistent pool.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Worker count of this pool.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Runs `op` with this pool's worker count governing parallel iterators.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let previous = INSTALLED_THREADS.with(|cell| cell.replace(Some(self.threads)));
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|cell| cell.set(self.0));
            }
        }
        let _restore = Restore(previous);
        op()
    }
}

/// The usual `use rayon::prelude::*;` surface.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParallelIterator};
}

pub mod iter {
    //! Parallel iterator traits and adaptors.

    use super::current_num_threads;

    /// Conversion into a [`ParallelIterator`].
    pub trait IntoParallelIterator {
        /// Element type.
        type Item: Send;
        /// Iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;

        /// Converts `self` into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    /// An order-preserving parallel iterator.
    ///
    /// Implementors provide eager splitting into same-typed parts plus
    /// sequential execution of one part; the provided adaptors handle
    /// threading.
    pub trait ParallelIterator: Sized + Send {
        /// Element type.
        type Item: Send;

        /// Number of elements.
        fn len(&self) -> usize;

        /// Whether the iterator is empty.
        fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Splits into at most `parts` contiguous same-typed pieces,
        /// preserving order.
        fn split(self, parts: usize) -> Vec<Self>;

        /// Runs one piece sequentially.
        fn run_seq(self) -> Vec<Self::Item>;

        /// Maps every element through `f`.
        fn map<T, F>(self, f: F) -> Map<Self, F>
        where
            T: Send,
            F: Fn(Self::Item) -> T + Sync + Send + Clone,
        {
            Map { base: self, f }
        }

        /// Executes in parallel, preserving input order in the output.
        fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
            C::from_ordered_vec(materialize(self))
        }

        /// Runs `f` on every element (in parallel, order unspecified).
        fn for_each<F>(self, f: F)
        where
            F: Fn(Self::Item) + Sync + Send + Clone,
        {
            let _: Vec<()> = self.map(f).collect();
        }
    }

    /// Collection types buildable from an ordered parallel result.
    pub trait FromParallelIterator<T: Send> {
        /// Builds the collection from the already-ordered elements.
        fn from_ordered_vec(items: Vec<T>) -> Self;
    }

    impl<T: Send> FromParallelIterator<T> for Vec<T> {
        fn from_ordered_vec(items: Vec<T>) -> Self {
            items
        }
    }

    fn materialize<P: ParallelIterator>(iter: P) -> Vec<P::Item> {
        let workers = current_num_threads().min(iter.len()).max(1);
        if workers <= 1 {
            return iter.run_seq();
        }
        let parts = iter.split(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = parts
                .into_iter()
                .map(|part| scope.spawn(move || part.run_seq()))
                .collect();
            let mut out = Vec::new();
            for handle in handles {
                out.extend(handle.join().expect("rayon shim worker panicked"));
            }
            out
        })
    }

    /// Parallel iterator returned by [`ParallelIterator::map`].
    #[derive(Debug, Clone)]
    pub struct Map<P, F> {
        base: P,
        f: F,
    }

    impl<P, F, T> ParallelIterator for Map<P, F>
    where
        P: ParallelIterator,
        T: Send,
        F: Fn(P::Item) -> T + Sync + Send + Clone,
    {
        type Item = T;

        fn len(&self) -> usize {
            self.base.len()
        }

        fn split(self, parts: usize) -> Vec<Self> {
            let f = self.f;
            self.base
                .split(parts)
                .into_iter()
                .map(|base| Map { base, f: f.clone() })
                .collect()
        }

        fn run_seq(self) -> Vec<T> {
            let f = self.f;
            self.base.run_seq().into_iter().map(f).collect()
        }
    }

    /// Parallel iterator over a `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct RangeIter {
        range: std::ops::Range<usize>,
    }

    impl ParallelIterator for RangeIter {
        type Item = usize;

        fn len(&self) -> usize {
            self.range.len()
        }

        fn split(self, parts: usize) -> Vec<Self> {
            let len = self.range.len();
            let parts = parts.min(len).max(1);
            let chunk = len.div_ceil(parts);
            (0..parts)
                .map(|i| {
                    let start = self.range.start + i * chunk;
                    let end = (start + chunk).min(self.range.end);
                    RangeIter { range: start..end }
                })
                .filter(|part| !part.range.is_empty())
                .collect()
        }

        fn run_seq(self) -> Vec<usize> {
            self.range.collect()
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        type Iter = RangeIter;

        fn into_par_iter(self) -> RangeIter {
            RangeIter { range: self }
        }
    }

    /// Parallel iterator over an owned `Vec<T>`.
    #[derive(Debug, Clone)]
    pub struct VecIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> ParallelIterator for VecIter<T> {
        type Item = T;

        fn len(&self) -> usize {
            self.items.len()
        }

        fn split(mut self, parts: usize) -> Vec<Self> {
            let len = self.items.len();
            let parts = parts.min(len).max(1);
            let chunk = len.div_ceil(parts);
            let mut out = Vec::with_capacity(parts);
            while self.items.len() > chunk {
                let tail = self.items.split_off(self.items.len() - chunk);
                out.push(VecIter { items: tail });
            }
            out.push(self);
            out.reverse();
            out
        }

        fn run_seq(self) -> Vec<T> {
            self.items
        }
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = VecIter<T>;

        fn into_par_iter(self) -> VecIter<T> {
            VecIter { items: self }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn par_map_preserves_order() {
        let doubled: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(doubled.len(), 1000);
        assert!(doubled.iter().enumerate().all(|(i, &v)| v == 2 * i));
    }

    #[test]
    fn pool_install_controls_thread_count() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let inside = pool.install(crate::current_num_threads);
        assert_eq!(inside, 2);
        // Results identical across pool sizes.
        let one = crate::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let a: Vec<usize> = one.install(|| (0..257).into_par_iter().map(|i| i * i).collect());
        let b: Vec<usize> = pool.install(|| (0..257).into_par_iter().map(|i| i * i).collect());
        assert_eq!(a, b);
    }

    #[test]
    fn vec_split_preserves_order() {
        let items: Vec<i32> = (0..10).collect();
        let back: Vec<i32> = items.clone().into_par_iter().map(|x| x).collect();
        assert_eq!(items, back);
    }
}
