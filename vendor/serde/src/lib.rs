//! API-subset shim for `serde` (see `vendor/README.md`).
//!
//! Exposes the `Serialize` / `Deserialize` trait names plus the derive
//! macros of the same names, which is the full extent of the workspace's
//! serde usage. The derives are no-ops, so derived types do not actually
//! implement the traits — nothing in the workspace relies on that.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
