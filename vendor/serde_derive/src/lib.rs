//! No-op shim for `serde_derive` (see `vendor/README.md`).
//!
//! The derives accept the `#[serde(...)]` helper attribute and expand to
//! nothing: the workspace only needs the derive *names* to resolve, it never
//! serializes the derived types through serde itself.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
