//! API-subset shim for `serde_json` (see `vendor/README.md`).
//!
//! Provides the [`Value`] tree, the [`json!`] macro, pretty printing and
//! `Index`/`IndexMut` by string keys — the subset used by the `qccd-bench`
//! artefact dumping. Object keys are stored in a `BTreeMap`, so output is
//! deterministic.

use std::collections::BTreeMap;
use std::fmt;

/// Object map type (`serde_json::Map` equivalent).
pub type Map = BTreeMap<String, Value>;

/// A JSON number: integers are preserved exactly, everything else is `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::Int(v) => write!(f, "{v}"),
            Number::UInt(v) => write!(f, "{v}"),
            Number::Float(v) => {
                if v.is_finite() {
                    if v == v.trunc() && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // JSON has no Inf/NaN; serde_json emits null.
                    write!(f, "null")
                }
            }
        }
    }
}

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with string keys.
    Object(Map),
}

macro_rules! from_int {
    ($($t:ty),*) => {
        $(impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::Int(v as i64)) }
        })*
    };
}
from_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        match i64::try_from(v) {
            Ok(i) => Value::Number(Number::Int(i)),
            Err(_) => Value::Number(Number::UInt(v)),
        }
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::from(v as u64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::Float(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::Float(v as f64))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Copy + Into<Value>> From<&T> for Value {
    fn from(v: &T) -> Value {
        (*v).into()
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        match v {
            Some(inner) => inner.into(),
            None => Value::Null,
        }
    }
}

/// By-reference conversion used by the [`json!`] macro, mirroring the way
/// upstream serde_json serializes macro values without consuming them.
pub trait ToJson {
    /// Converts a borrowed value into a [`Value`].
    fn to_json(&self) -> Value;
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

macro_rules! to_json_via_copy {
    ($($t:ty),*) => {
        $(impl ToJson for $t {
            fn to_json(&self) -> Value { Value::from(*self) }
        })*
    };
}
to_json_via_copy!(bool, i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(inner) => inner.to_json(),
            None => Value::Null,
        }
    }
}

impl Value {
    /// Member access on objects; `Null` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::Int(v)) => u64::try_from(*v).ok(),
            Value::Number(Number::UInt(v)) => Some(*v),
            _ => None,
        }
    }

    /// The value as a signed integer, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::Int(v)) => Some(*v),
            Value::Number(Number::UInt(v)) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as a float (integers convert losslessly when possible).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::Int(v)) => Some(*v as f64),
            Value::Number(Number::UInt(v)) => Some(*v as f64),
            Value::Number(Number::Float(v)) => Some(*v),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if !matches!(self, Value::Object(_)) {
            *self = Value::Object(Map::new());
        }
        match self {
            Value::Object(map) => map.entry(key.to_string()).or_insert(Value::Null),
            _ => unreachable!("coerced to object above"),
        }
    }
}

impl std::ops::Index<String> for Value {
    type Output = Value;
    fn index(&self, key: String) -> &Value {
        &self[key.as_str()]
    }
}

impl std::ops::IndexMut<String> for Value {
    fn index_mut(&mut self, key: String) -> &mut Value {
        self.index_mut(key.as_str())
    }
}

/// Serialization error (the shim never actually fails).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim error")
    }
}

impl std::error::Error for Error {}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_pretty(out: &mut String, value: &Value, indent: usize) {
    let pad = "  ".repeat(indent);
    let pad_inner = "  ".repeat(indent + 1);
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_inner);
                write_pretty(out, item, indent + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (key, item)) in map.iter().enumerate() {
                out.push_str(&pad_inner);
                escape_into(out, key);
                out.push_str(": ");
                write_pretty(out, item, indent + 1);
                if i + 1 < map.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Pretty-prints a [`Value`] with two-space indentation.
///
/// # Errors
///
/// Never fails; the `Result` mirrors the upstream signature.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, value, 0);
    Ok(out)
}

/// Compact printing, mirroring `serde_json::to_string`.
///
/// # Errors
///
/// Never fails; the `Result` mirrors the upstream signature.
pub fn to_string(value: &Value) -> Result<String, Error> {
    fn write_compact(out: &mut String, value: &Value) {
        match value {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => escape_into(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_compact(out, item);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (key, item)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, key);
                    out.push(':');
                    write_compact(out, item);
                }
                out.push('}');
            }
        }
    }
    let mut out = String::new();
    write_compact(&mut out, value);
    Ok(out)
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", to_string(self).map_err(|_| fmt::Error)?)
    }
}

/// A recursive-descent JSON parser over the input bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn fail<T>(&self, message: &str) -> Result<T, Error> {
        let _ = message;
        Err(Error)
    }

    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_whitespace();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            self.fail("unexpected byte")
        }
    }

    fn consume_literal(&mut self, literal: &str) -> bool {
        self.skip_whitespace();
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.consume_literal("null") => Ok(Value::Null),
            Some(b't') if self.consume_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.consume_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => self.fail("expected a JSON value"),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return self.fail("expected ',' or ']'"),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            if self.peek() != Some(b'"') {
                return self.fail("expected an object key");
            }
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return self.fail("expected ',' or '}'"),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return self.fail("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&escape) = self.bytes.get(self.pos) else {
                        return self.fail("unterminated escape");
                    };
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            let Some(code) = hex else {
                                return self.fail("bad \\u escape");
                            };
                            self.pos += 4;
                            // Surrogate pairs: combine a high surrogate with
                            // the following \uXXXX low surrogate.
                            let c = if (0xd800..0xdc00).contains(&code) {
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return self.fail("lone high surrogate");
                                }
                                self.pos += 2;
                                let low = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .and_then(|h| u32::from_str_radix(h, 16).ok());
                                let Some(low) = low else {
                                    return self.fail("bad low surrogate");
                                };
                                self.pos += 4;
                                0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00)
                            } else {
                                code
                            };
                            match char::from_u32(c) {
                                Some(c) => out.push(c),
                                None => return self.fail("invalid code point"),
                            }
                        }
                        _ => return self.fail("unknown escape"),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the whole sequence through.
                    let len = match b {
                        b if b < 0x80 => 1,
                        b if b >= 0xf0 => 4,
                        b if b >= 0xe0 => 3,
                        b if b >= 0xc0 => 2,
                        _ => return self.fail("stray continuation byte"),
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    let Some(slice) = self.bytes.get(start..end) else {
                        return self.fail("truncated UTF-8");
                    };
                    let Ok(s) = std::str::from_utf8(slice) else {
                        return self.fail("invalid UTF-8");
                    };
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| Error)?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::Int(v)));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::UInt(v)));
            }
        }
        match text.parse::<f64>() {
            Ok(v) => Ok(Value::Number(Number::Float(v))),
            Err(_) => self.fail("malformed number"),
        }
    }
}

/// Parses a JSON document into a [`Value`] (upstream's
/// `serde_json::from_str::<Value>`).
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or trailing non-whitespace input.
pub fn from_str(text: &str) -> Result<Value, Error> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error);
    }
    Ok(value)
}

/// Builds a [`Value`] from JSON-like syntax, mirroring `serde_json::json!`.
#[macro_export]
macro_rules! json {
    ($($json:tt)+) => {
        $crate::json_internal!($($json)+)
    };
}

/// Implementation detail of [`json!`]; a trimmed-down port of the upstream
/// token muncher.
#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => { $crate::Value::Array($crate::json_internal!(@array [] $($tt)+)) };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => { $crate::ToJson::to_json(&$other) };

    // ----- array munching -----
    (@array [$($elems:expr,)*]) => { <[_]>::into_vec(::std::boxed::Box::new([$($elems,)*])) };
    (@array [$($elems:expr),*]) => { <[_]>::into_vec(::std::boxed::Box::new([$($elems),*])) };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // ----- object munching -----
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).into(), $value);
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_values() {
        let d = 3usize;
        let p = 0.5f64;
        let v = json!({"d": d, "ler": p, "none": null, "nested": {"ok": true}});
        assert_eq!(v["d"], Value::Number(Number::Int(3)));
        assert_eq!(v["none"], Value::Null);
        assert_eq!(v["nested"]["ok"], Value::Bool(true));
    }

    #[test]
    fn index_mut_inserts() {
        let mut v = json!({"a": 1});
        v[format!("k_{}", 2)] = json!({"x": [1, 2, 3]});
        assert_eq!(
            v["k_2"]["x"],
            Value::Array(vec![1.into(), 2.into(), 3.into()])
        );
    }

    #[test]
    fn pretty_printing_is_stable() {
        let v = json!({"b": 2, "a": [true, null]});
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\"a\": ["));
        assert!(text.starts_with('{') && text.ends_with('}'));
    }

    #[test]
    fn bare_expression_values() {
        let values: Vec<Value> = (0..3).map(|i| json!({"i": i})).collect();
        let v = json!(values);
        assert!(matches!(v, Value::Array(ref a) if a.len() == 3));
        assert_eq!(json!(1.5), Value::Number(Number::Float(1.5)));
    }

    #[test]
    fn parse_round_trips_scalars_and_containers() {
        let v = json!({
            "s": "a \"quoted\" line\nwith tab\t",
            "i": -42,
            "u": u64::MAX,
            "f": 0.125,
            "big": 1.5e300,
            "b": true,
            "none": null,
            "arr": [1, 2.5, "x", [], {}],
            "obj": {"nested": {"deep": [false]}}
        });
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(from_str(&text).unwrap(), v);
        }
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        let v = from_str(r#"{"k": "Aé😀 café ✓"}"#).unwrap();
        assert_eq!(v["k"].as_str().unwrap(), "Aé😀 café ✓");
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(from_str(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn float_formatting_round_trips_exactly() {
        for f in [0.1, 1.0 / 3.0, 2e-9, 123456.75, -0.0625] {
            let text = to_string(&json!({ "f": f })).unwrap();
            assert_eq!(from_str(&text).unwrap()["f"].as_f64().unwrap(), f);
        }
    }

    #[test]
    fn accessors_expose_payloads() {
        let v = json!({"a": [1], "s": "x", "n": 3, "f": 1.5, "b": false});
        assert_eq!(v["a"].as_array().unwrap().len(), 1);
        assert_eq!(v["s"].as_str(), Some("x"));
        assert_eq!(v["n"].as_u64(), Some(3));
        assert_eq!(v["n"].as_i64(), Some(3));
        assert_eq!(v["n"].as_f64(), Some(3.0));
        assert_eq!(v["f"].as_f64(), Some(1.5));
        assert_eq!(v["b"].as_bool(), Some(false));
        assert!(v["missing"].is_null());
        assert!(v.as_object().unwrap().contains_key("a"));
    }
}
