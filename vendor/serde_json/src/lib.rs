//! API-subset shim for `serde_json` (see `vendor/README.md`).
//!
//! Provides the [`Value`] tree, the [`json!`] macro, pretty printing and
//! `Index`/`IndexMut` by string keys — the subset used by the `qccd-bench`
//! artefact dumping. Object keys are stored in a `BTreeMap`, so output is
//! deterministic.

use std::collections::BTreeMap;
use std::fmt;

/// Object map type (`serde_json::Map` equivalent).
pub type Map = BTreeMap<String, Value>;

/// A JSON number: integers are preserved exactly, everything else is `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::Int(v) => write!(f, "{v}"),
            Number::UInt(v) => write!(f, "{v}"),
            Number::Float(v) => {
                if v.is_finite() {
                    if v == v.trunc() && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // JSON has no Inf/NaN; serde_json emits null.
                    write!(f, "null")
                }
            }
        }
    }
}

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with string keys.
    Object(Map),
}

macro_rules! from_int {
    ($($t:ty),*) => {
        $(impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::Int(v as i64)) }
        })*
    };
}
from_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        match i64::try_from(v) {
            Ok(i) => Value::Number(Number::Int(i)),
            Err(_) => Value::Number(Number::UInt(v)),
        }
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::from(v as u64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::Float(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::Float(v as f64))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Copy + Into<Value>> From<&T> for Value {
    fn from(v: &T) -> Value {
        (*v).into()
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        match v {
            Some(inner) => inner.into(),
            None => Value::Null,
        }
    }
}

/// By-reference conversion used by the [`json!`] macro, mirroring the way
/// upstream serde_json serializes macro values without consuming them.
pub trait ToJson {
    /// Converts a borrowed value into a [`Value`].
    fn to_json(&self) -> Value;
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

macro_rules! to_json_via_copy {
    ($($t:ty),*) => {
        $(impl ToJson for $t {
            fn to_json(&self) -> Value { Value::from(*self) }
        })*
    };
}
to_json_via_copy!(bool, i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(inner) => inner.to_json(),
            None => Value::Null,
        }
    }
}

impl Value {
    /// Member access on objects; `Null` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if !matches!(self, Value::Object(_)) {
            *self = Value::Object(Map::new());
        }
        match self {
            Value::Object(map) => map.entry(key.to_string()).or_insert(Value::Null),
            _ => unreachable!("coerced to object above"),
        }
    }
}

impl std::ops::Index<String> for Value {
    type Output = Value;
    fn index(&self, key: String) -> &Value {
        &self[key.as_str()]
    }
}

impl std::ops::IndexMut<String> for Value {
    fn index_mut(&mut self, key: String) -> &mut Value {
        self.index_mut(key.as_str())
    }
}

/// Serialization error (the shim never actually fails).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim error")
    }
}

impl std::error::Error for Error {}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_pretty(out: &mut String, value: &Value, indent: usize) {
    let pad = "  ".repeat(indent);
    let pad_inner = "  ".repeat(indent + 1);
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_inner);
                write_pretty(out, item, indent + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (key, item)) in map.iter().enumerate() {
                out.push_str(&pad_inner);
                escape_into(out, key);
                out.push_str(": ");
                write_pretty(out, item, indent + 1);
                if i + 1 < map.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Pretty-prints a [`Value`] with two-space indentation.
///
/// # Errors
///
/// Never fails; the `Result` mirrors the upstream signature.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, value, 0);
    Ok(out)
}

/// Compact printing, mirroring `serde_json::to_string`.
///
/// # Errors
///
/// Never fails; the `Result` mirrors the upstream signature.
pub fn to_string(value: &Value) -> Result<String, Error> {
    fn write_compact(out: &mut String, value: &Value) {
        match value {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => escape_into(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_compact(out, item);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (key, item)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, key);
                    out.push(':');
                    write_compact(out, item);
                }
                out.push('}');
            }
        }
    }
    let mut out = String::new();
    write_compact(&mut out, value);
    Ok(out)
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", to_string(self).map_err(|_| fmt::Error)?)
    }
}

/// Builds a [`Value`] from JSON-like syntax, mirroring `serde_json::json!`.
#[macro_export]
macro_rules! json {
    ($($json:tt)+) => {
        $crate::json_internal!($($json)+)
    };
}

/// Implementation detail of [`json!`]; a trimmed-down port of the upstream
/// token muncher.
#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => { $crate::Value::Array($crate::json_internal!(@array [] $($tt)+)) };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => { $crate::ToJson::to_json(&$other) };

    // ----- array munching -----
    (@array [$($elems:expr,)*]) => { <[_]>::into_vec(::std::boxed::Box::new([$($elems,)*])) };
    (@array [$($elems:expr),*]) => { <[_]>::into_vec(::std::boxed::Box::new([$($elems),*])) };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // ----- object munching -----
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).into(), $value);
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_values() {
        let d = 3usize;
        let p = 0.5f64;
        let v = json!({"d": d, "ler": p, "none": null, "nested": {"ok": true}});
        assert_eq!(v["d"], Value::Number(Number::Int(3)));
        assert_eq!(v["none"], Value::Null);
        assert_eq!(v["nested"]["ok"], Value::Bool(true));
    }

    #[test]
    fn index_mut_inserts() {
        let mut v = json!({"a": 1});
        v[format!("k_{}", 2)] = json!({"x": [1, 2, 3]});
        assert_eq!(
            v["k_2"]["x"],
            Value::Array(vec![1.into(), 2.into(), 3.into()])
        );
    }

    #[test]
    fn pretty_printing_is_stable() {
        let v = json!({"b": 2, "a": [true, null]});
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\"a\": ["));
        assert!(text.starts_with('{') && text.ends_with('}'));
    }

    #[test]
    fn bare_expression_values() {
        let values: Vec<Value> = (0..3).map(|i| json!({"i": i})).collect();
        let v = json!(values);
        assert!(matches!(v, Value::Array(ref a) if a.len() == 3));
        assert_eq!(json!(1.5), Value::Number(Number::Float(1.5)));
    }
}
